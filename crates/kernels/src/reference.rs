//! Unblocked reference implementations (test oracles).
//!
//! These compute the same co-occurrence counts as the GEMM drivers with the
//! obvious pairwise loop — the "highly inefficient" vector-operation
//! formulation of the paper's §II-B pseudocode. They are the correctness
//! oracle for every blocked kernel and also serve as the zero-blocking
//! baseline in the ablation benchmark.

use ld_bitmat::BitMatrixView;
use ld_popcount::and_popcount;

/// All `m × n` co-occurrence counts between the SNPs of `a` and `b`,
/// row-major. Oracle for [`crate::gemm_counts`].
pub fn gemm_counts_naive(a: &BitMatrixView<'_>, b: &BitMatrixView<'_>) -> Vec<u32> {
    assert_eq!(a.n_samples(), b.n_samples(), "sample counts must match");
    let m = a.n_snps();
    let n = b.n_snps();
    let mut c = vec![0u32; m * n];
    for i in 0..m {
        let ai = a.snp_words(i);
        for j in 0..n {
            c[i * n + j] = and_popcount(ai, b.snp_words(j)) as u32;
        }
    }
    c
}

/// The full symmetric `n × n` co-occurrence matrix of one SNP set,
/// row-major. Oracle for [`crate::syrk_counts`].
pub fn syrk_counts_naive(g: &BitMatrixView<'_>) -> Vec<u32> {
    let n = g.n_snps();
    let mut c = vec![0u32; n * n];
    for i in 0..n {
        let gi = g.snp_words(i);
        for j in i..n {
            let v = and_popcount(gi, g.snp_words(j)) as u32;
            c[i * n + j] = v;
            c[j * n + i] = v;
        }
    }
    c
}

#[cfg(test)]
mod tests {
    // explicit `row * stride + col` index arithmetic reads better than
    // pre-folded literals in these layout tests
    #![allow(clippy::identity_op, clippy::erasing_op)]
    use super::*;
    use ld_bitmat::BitMatrix;

    #[test]
    fn diagonal_is_allele_count() {
        let g = BitMatrix::from_rows(4, 3, [[1u8, 0, 1], [1, 1, 1], [0, 0, 1], [1, 0, 0]]).unwrap();
        let c = syrk_counts_naive(&g.full_view());
        assert_eq!(c[0 * 3 + 0], 3);
        assert_eq!(c[1 * 3 + 1], 1);
        assert_eq!(c[2 * 3 + 2], 3);
    }

    #[test]
    fn syrk_is_symmetric_and_matches_gemm_with_self() {
        let g = BitMatrix::from_rows(
            5,
            4,
            [
                [1u8, 0, 1, 1],
                [1, 1, 1, 0],
                [0, 0, 1, 0],
                [1, 0, 0, 1],
                [0, 1, 1, 1],
            ],
        )
        .unwrap();
        let v = g.full_view();
        let s = syrk_counts_naive(&v);
        let gm = gemm_counts_naive(&v, &v);
        assert_eq!(s, gm);
        for i in 0..4 {
            for j in 0..4 {
                assert_eq!(s[i * 4 + j], s[j * 4 + i]);
            }
        }
    }

    #[test]
    fn cross_counts_small_example() {
        let a = BitMatrix::from_rows(3, 2, [[1u8, 0], [1, 1], [0, 1]]).unwrap();
        let b = BitMatrix::from_rows(3, 1, [[1u8], [0], [1]]).unwrap();
        let c = gemm_counts_naive(&a.full_view(), &b.full_view());
        // SNP a0 = {s0,s1}, b0 = {s0,s2} -> overlap 1
        // SNP a1 = {s1,s2}, b0 = {s0,s2} -> overlap 1
        assert_eq!(c, vec![1, 1]);
    }

    #[test]
    #[should_panic(expected = "sample counts must match")]
    fn mismatched_samples_panic() {
        let a = BitMatrix::zeros(3, 1);
        let b = BitMatrix::zeros(4, 1);
        gemm_counts_naive(&a.full_view(), &b.full_view());
    }
}
