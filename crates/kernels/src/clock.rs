//! Cycle accounting for the paper's %-of-theoretical-peak metric.
//!
//! §IV-B: the theoretical peak of the scalar LD kernel is 3 ops/cycle
//! (AND ∥ POPCNT ∥ ADD issued together), i.e. **one packed 64-bit word pair
//! per cycle**. A kernel processing `v` lanes per popcount has peak `v`
//! word-pairs per cycle. Measuring "% of peak" therefore needs *cycles*,
//! which we obtain from the TSC (`RDTSC`), calibrated once against the
//! monotonic clock (modern x86 TSCs are constant-rate, so the calibration
//! converts wall time to reference cycles reliably).

use std::sync::OnceLock;
use std::time::Instant;

/// Reads the time-stamp counter (0 on non-x86 targets).
#[inline]
pub fn rdtsc() -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: RDTSC is always available on x86-64.
        unsafe { std::arch::x86_64::_rdtsc() }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        0
    }
}

/// TSC frequency in Hz, measured once over a ~20 ms window.
/// Returns `None` when no TSC is available.
pub fn tsc_hz() -> Option<f64> {
    static HZ: OnceLock<Option<f64>> = OnceLock::new();
    *HZ.get_or_init(|| {
        let t0 = rdtsc();
        if t0 == 0 && rdtsc() == 0 {
            return None;
        }
        let w0 = Instant::now();
        // Busy-ish wait: sleep is fine, the TSC keeps ticking.
        std::thread::sleep(std::time::Duration::from_millis(20));
        let t1 = rdtsc();
        let dt = w0.elapsed().as_secs_f64();
        if t1 <= t0 || dt <= 0.0 {
            None
        } else {
            Some((t1 - t0) as f64 / dt)
        }
    })
}

/// A running (seconds, cycles) measurement.
#[derive(Debug, Clone, Copy)]
pub struct CycleTimer {
    start_tsc: u64,
    start: Instant,
}

impl CycleTimer {
    /// Starts the timer.
    pub fn start() -> Self {
        Self {
            start_tsc: rdtsc(),
            start: Instant::now(),
        }
    }

    /// Elapsed wall time in seconds.
    pub fn seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Elapsed reference cycles: TSC delta when available, else wall time
    /// times the provided nominal frequency.
    pub fn cycles(&self, fallback_hz: f64) -> f64 {
        let now = rdtsc();
        if now > self.start_tsc {
            (now - self.start_tsc) as f64
        } else {
            self.seconds() * fallback_hz
        }
    }
}

/// Measures `f`, returning `(result, seconds, cycles)`.
pub fn measure<T>(f: impl FnOnce() -> T) -> (T, f64, f64) {
    let t = CycleTimer::start();
    let out = f();
    let secs = t.seconds();
    let cycles = t.cycles(tsc_hz().unwrap_or(1.0e9));
    (out, secs, cycles)
}

/// The %-of-peak metric of §IV-B: `word_pairs / (cycles · lanes)`, where
/// `word_pairs` is `m·n·k_words` of useful work and `lanes` is the kernel's
/// popcount width (1 for the scalar kernel).
pub fn percent_of_peak(word_pairs: f64, cycles: f64, lanes: usize) -> f64 {
    if cycles <= 0.0 {
        return 0.0;
    }
    100.0 * word_pairs / (cycles * lanes as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tsc_is_monotonic_when_present() {
        let a = rdtsc();
        let b = rdtsc();
        if a != 0 {
            assert!(b >= a);
        }
    }

    #[test]
    fn calibration_is_plausible() {
        if let Some(hz) = tsc_hz() {
            // Any real machine is between 100 MHz and 10 GHz.
            assert!((1.0e8..1.0e10).contains(&hz), "tsc_hz={hz}");
        }
    }

    #[test]
    fn timer_measures_positive_durations() {
        let t = CycleTimer::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(t.seconds() >= 0.002);
        assert!(t.cycles(1.0e9) > 0.0);
    }

    #[test]
    fn measure_returns_result() {
        let (x, secs, cycles) = measure(|| 21 * 2);
        assert_eq!(x, 42);
        assert!(secs >= 0.0);
        assert!(cycles >= 0.0);
    }

    #[test]
    fn peak_metric() {
        assert_eq!(percent_of_peak(100.0, 100.0, 1), 100.0);
        assert_eq!(percent_of_peak(100.0, 200.0, 1), 50.0);
        assert_eq!(percent_of_peak(800.0, 100.0, 8), 100.0);
        assert_eq!(percent_of_peak(1.0, 0.0, 1), 0.0);
    }
}
