//! Cache-blocking parameters (the `kc`, `mc`, `nc` of GotoBLAS).

use std::fmt;

/// Error returned by [`BlockSizes::validate_for`]: the block sizes cannot
/// drive the layered loops for the given register tile.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InvalidBlockSizes {
    /// What is wrong, in user-facing terms.
    pub message: &'static str,
}

impl fmt::Display for InvalidBlockSizes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid block sizes: {}", self.message)
    }
}
impl std::error::Error for InvalidBlockSizes {}

/// Blocking parameters for the layered GEMM.
///
/// Subscripts follow the paper and the BLIS literature: `r` register,
/// `c` cache. `MR`/`NR` are fixed per micro-kernel (register tile shape);
/// the three cache block sizes live here.
///
/// Sizing rationale (defaults, in 8-byte words):
///
/// * `kc = 256` — one Ã micro-panel (`MR·kc` words) plus one B̃ micro-panel
///   (`NR·kc` words) must fit L1 with room for the C tile: with
///   `MR=NR=8` that is 2 × 16 KiB = 32 KiB, a full L1D; halved shapes use
///   half. 256 words = 16 384 samples per pass, so small cohorts pack in a
///   single `pc` iteration.
/// * `mc = 512` — the packed Ã block (`mc·kc` words = 1 MiB) targets L2.
/// * `nc = 4096` — the packed B̃ block (`kc·nc` words = 8 MiB) targets L3.
///
/// The ablation benchmark sweeps these to show the plateau the paper
/// attributes to the GotoBLAS analysis ("No attempt was made to tune the
/// parameters", §IV — we keep that spirit: defaults are analytical, not
/// auto-tuned).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockSizes {
    /// Words of the packed (`k`) dimension per rank-k pass.
    pub kc: usize,
    /// SNP rows of `C` per packed Ã block (L2 target).
    pub mc: usize,
    /// SNP columns of `C` per packed B̃ block (L3 target).
    pub nc: usize,
}

impl Default for BlockSizes {
    fn default() -> Self {
        Self {
            kc: 256,
            mc: 512,
            nc: 4096,
        }
    }
}

impl BlockSizes {
    /// Defaults (see type-level docs).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style override of `kc`.
    pub fn with_kc(mut self, kc: usize) -> Self {
        self.kc = kc;
        self
    }

    /// Builder-style override of `mc`.
    pub fn with_mc(mut self, mc: usize) -> Self {
        self.mc = mc;
        self
    }

    /// Builder-style override of `nc`.
    pub fn with_nc(mut self, nc: usize) -> Self {
        self.nc = nc;
        self
    }

    /// Clamps every block size to at least 1 and at most the problem
    /// dimensions — keeps the drivers' loop arithmetic trivially in-range.
    pub fn clamped(&self, m: usize, n: usize, k_words: usize) -> Self {
        Self {
            kc: self.kc.max(1).min(k_words.max(1)),
            mc: self.mc.max(1).min(m.max(1)),
            nc: self.nc.max(1).min(n.max(1)),
        }
    }

    /// Validates the block sizes against a resolved kernel's register
    /// tile. Zero blocks can never drive the loops; `mc`/`nc` that are
    /// not multiples of `MR`/`NR` put a zero-padded fringe micro-tile
    /// *inside every cache block* rather than only at the matrix edge —
    /// numerically harmless but it defeats the blocking analysis the
    /// sizes exist for, so configurable entry points reject it as a
    /// typed configuration error instead of silently wasting the pad.
    /// Blocks at or below the tile (ablation configs) stay legal.
    pub fn validate_for(&self, mr: usize, nr: usize) -> Result<(), InvalidBlockSizes> {
        if self.kc == 0 {
            return Err(InvalidBlockSizes {
                message: "kc must be at least 1 word",
            });
        }
        if self.mc == 0 {
            return Err(InvalidBlockSizes {
                message: "mc must be at least 1 row",
            });
        }
        if self.nc == 0 {
            return Err(InvalidBlockSizes {
                message: "nc must be at least 1 column",
            });
        }
        if mr > 0 && !self.mc.is_multiple_of(mr) && self.mc > mr {
            return Err(InvalidBlockSizes {
                message: "mc must be a multiple of the kernel's MR (or at most MR)",
            });
        }
        if nr > 0 && !self.nc.is_multiple_of(nr) && self.nc > nr {
            return Err(InvalidBlockSizes {
                message: "nc must be a multiple of the kernel's NR (or at most NR)",
            });
        }
        Ok(())
    }

    /// Approximate bytes of the packed Ã block (`mc × kc` words).
    pub fn a_block_bytes(&self) -> usize {
        self.mc * self.kc * 8
    }

    /// Approximate bytes of the packed B̃ block (`kc × nc` words).
    pub fn b_block_bytes(&self) -> usize {
        self.kc * self.nc * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_target_cache_sizes() {
        let b = BlockSizes::default();
        assert_eq!(b.a_block_bytes(), 1 << 20); // 1 MiB -> L2
        assert_eq!(b.b_block_bytes(), 8 << 20); // 8 MiB -> L3
    }

    #[test]
    fn builders_override() {
        let b = BlockSizes::new().with_kc(64).with_mc(128).with_nc(256);
        assert_eq!(
            b,
            BlockSizes {
                kc: 64,
                mc: 128,
                nc: 256
            }
        );
    }

    #[test]
    fn validate_rejects_zero_blocks() {
        for b in [
            BlockSizes::default().with_kc(0),
            BlockSizes::default().with_mc(0),
            BlockSizes::default().with_nc(0),
        ] {
            let e = b.validate_for(4, 4).unwrap_err();
            assert!(e.to_string().contains("at least 1"), "{e}");
        }
    }

    #[test]
    fn validate_rejects_tile_incompatible_blocks() {
        // mc=6 with MR=4: a 2-row fringe inside every cache block.
        assert!(BlockSizes::default().with_mc(6).validate_for(4, 4).is_err());
        // nc=20 with NR=16: same on the column side.
        assert!(BlockSizes::default()
            .with_nc(20)
            .validate_for(4, 16)
            .is_err());
    }

    #[test]
    fn validate_accepts_defaults_and_small_blocks() {
        // Defaults divide evenly for every register tile in the workspace.
        for (mr, nr) in [(4, 4), (2, 4), (8, 4), (4, 8), (4, 16)] {
            BlockSizes::default().validate_for(mr, nr).unwrap();
        }
        // Blocks at or below the tile are legal: the driver clamps the
        // micro-tile to the block (single-fringe case).
        BlockSizes {
            kc: 1,
            mc: 2,
            nc: 3,
        }
        .validate_for(4, 4)
        .unwrap();
    }

    #[test]
    fn clamped_respects_problem_shape() {
        let b = BlockSizes::default().clamped(10, 20, 3);
        assert_eq!(
            b,
            BlockSizes {
                kc: 3,
                mc: 10,
                nc: 20
            }
        );
        // degenerate dims never produce zero blocks
        let b = BlockSizes::default().clamped(0, 0, 0);
        assert_eq!(
            b,
            BlockSizes {
                kc: 1,
                mc: 1,
                nc: 1
            }
        );
    }
}
