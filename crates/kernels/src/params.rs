//! Cache-blocking parameters (the `kc`, `mc`, `nc` of GotoBLAS).

/// Blocking parameters for the layered GEMM.
///
/// Subscripts follow the paper and the BLIS literature: `r` register,
/// `c` cache. `MR`/`NR` are fixed per micro-kernel (register tile shape);
/// the three cache block sizes live here.
///
/// Sizing rationale (defaults, in 8-byte words):
///
/// * `kc = 256` — one Ã micro-panel (`MR·kc` words) plus one B̃ micro-panel
///   (`NR·kc` words) must fit L1 with room for the C tile: with
///   `MR=NR=8` that is 2 × 16 KiB = 32 KiB, a full L1D; halved shapes use
///   half. 256 words = 16 384 samples per pass, so small cohorts pack in a
///   single `pc` iteration.
/// * `mc = 512` — the packed Ã block (`mc·kc` words = 1 MiB) targets L2.
/// * `nc = 4096` — the packed B̃ block (`kc·nc` words = 8 MiB) targets L3.
///
/// The ablation benchmark sweeps these to show the plateau the paper
/// attributes to the GotoBLAS analysis ("No attempt was made to tune the
/// parameters", §IV — we keep that spirit: defaults are analytical, not
/// auto-tuned).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct BlockSizes {
    /// Words of the packed (`k`) dimension per rank-k pass.
    pub kc: usize,
    /// SNP rows of `C` per packed Ã block (L2 target).
    pub mc: usize,
    /// SNP columns of `C` per packed B̃ block (L3 target).
    pub nc: usize,
}

impl Default for BlockSizes {
    fn default() -> Self {
        Self {
            kc: 256,
            mc: 512,
            nc: 4096,
        }
    }
}

impl BlockSizes {
    /// Defaults (see type-level docs).
    pub fn new() -> Self {
        Self::default()
    }

    /// Builder-style override of `kc`.
    pub fn with_kc(mut self, kc: usize) -> Self {
        self.kc = kc;
        self
    }

    /// Builder-style override of `mc`.
    pub fn with_mc(mut self, mc: usize) -> Self {
        self.mc = mc;
        self
    }

    /// Builder-style override of `nc`.
    pub fn with_nc(mut self, nc: usize) -> Self {
        self.nc = nc;
        self
    }

    /// Clamps every block size to at least 1 and at most the problem
    /// dimensions — keeps the drivers' loop arithmetic trivially in-range.
    pub fn clamped(&self, m: usize, n: usize, k_words: usize) -> Self {
        Self {
            kc: self.kc.max(1).min(k_words.max(1)),
            mc: self.mc.max(1).min(m.max(1)),
            nc: self.nc.max(1).min(n.max(1)),
        }
    }

    /// Approximate bytes of the packed Ã block (`mc × kc` words).
    pub fn a_block_bytes(&self) -> usize {
        self.mc * self.kc * 8
    }

    /// Approximate bytes of the packed B̃ block (`kc × nc` words).
    pub fn b_block_bytes(&self) -> usize {
        self.kc * self.nc * 8
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_target_cache_sizes() {
        let b = BlockSizes::default();
        assert_eq!(b.a_block_bytes(), 1 << 20); // 1 MiB -> L2
        assert_eq!(b.b_block_bytes(), 8 << 20); // 8 MiB -> L3
    }

    #[test]
    fn builders_override() {
        let b = BlockSizes::new().with_kc(64).with_mc(128).with_nc(256);
        assert_eq!(
            b,
            BlockSizes {
                kc: 64,
                mc: 128,
                nc: 256
            }
        );
    }

    #[test]
    fn clamped_respects_problem_shape() {
        let b = BlockSizes::default().clamped(10, 20, 3);
        assert_eq!(
            b,
            BlockSizes {
                kc: 3,
                mc: 10,
                nc: 20
            }
        );
        // degenerate dims never produce zero blocks
        let b = BlockSizes::default().clamped(0, 0, 0);
        assert_eq!(
            b,
            BlockSizes {
                kc: 1,
                mc: 1,
                nc: 1
            }
        );
    }
}
