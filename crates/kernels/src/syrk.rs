//! The symmetric rank-k driver: `C = GᵀG` counts, upper triangle computed,
//! lower mirrored — the paper's headline configuration (Fig. 3), where only
//! `N(N+1)/2` LD values are distinct.

use crate::gemm::gemm_blocked;
use crate::micro::Kernel;
use crate::{BlockSizes, KernelKind};
use ld_bitmat::BitMatrixView;
use ld_parallel::triangle_row_ranges;
use ld_trace::{Counter, Stopwatch};
use std::ops::Range;

/// Computes the row slab `rows` of the **upper triangle** of `C = GᵀG`
/// counts into `c` (row 0 of `c` = global row `rows.start`, leading
/// dimension `ldc ≥ n`). Entries with `j < i` in crossing tiles also end up
/// correct; entries in fully-skipped tiles stay zero — call
/// [`mirror_upper_to_lower`] on the assembled matrix to finish.
pub(crate) fn syrk_rows(
    kernel: &Kernel,
    blocks: BlockSizes,
    g: &BitMatrixView<'_>,
    rows: Range<usize>,
    c: &mut [u32],
    ldc: usize,
) {
    let n = g.n_snps();
    debug_assert!(rows.end <= n && ldc >= n);
    // Columns strictly left of rows.start are entirely below the diagonal
    // for this slab; start the jc loop there.
    gemm_blocked(
        kernel,
        blocks,
        g,
        g,
        rows.clone(),
        rows.start..n,
        c,
        ldc,
        0,
        true,
    );
}

/// Computes the upper-triangle co-occurrence counts of the row slab `rows`
/// of `C = GᵀG` into the **slab-local** buffer `c`:
///
/// ```text
/// c[(i − rows.start) · ldc + (j − rows.start)] = s_iᵀ s_j
/// ```
///
/// for `i ∈ rows`, `j ∈ i..n`, with `ldc ≥ n − rows.start`. The buffer only
/// spans the columns `rows.start..n`, so a slab of `h` rows costs
/// `h × (n − rows.start)` u32 — the bounded per-worker scratch of the fused
/// counts→statistic pipeline, independent of how many slabs the full
/// triangle is cut into.
///
/// Entries below the diagonal (`j < i` within the slab's column window) are
/// zero-filled and may receive partial sums from diagonal-crossing
/// micro-tiles; only read `j ≥ i`.
///
/// # Panics
/// If `rows` exceeds the SNP count, `ldc` is too small, or `c` cannot hold
/// the slab.
pub fn syrk_slab_counts(
    g: &BitMatrixView<'_>,
    rows: Range<usize>,
    c: &mut [u32],
    ldc: usize,
    kind: KernelKind,
    blocks: BlockSizes,
) {
    let n = g.n_snps();
    assert!(rows.end <= n, "row slab {rows:?} exceeds SNP count {n}");
    assert!(
        g.n_samples() < u32::MAX as usize,
        "co-occurrence counts are stored as u32; sample count must fit"
    );
    let width = n - rows.start;
    let h = rows.len();
    assert!(ldc >= width, "ldc {ldc} must cover the slab width {width}");
    assert!(
        h == 0 || c.len() >= (h - 1) * ldc + width,
        "slab buffer too small for {h} x {width} output with ldc {ldc}"
    );
    if h == 0 {
        return;
    }
    let kernel = Kernel::resolve(kind).expect("requested kernel not supported on this CPU");
    // The scratch zero-fill is part of producing the counts layer; charge
    // it to `kernel_ns` so the profile's layer sum covers the whole SYRK.
    let sw = Stopwatch::start();
    for row in c.chunks_mut(ldc).take(h) {
        row[..width].fill(0);
    }
    ld_trace::add(Counter::KernelNs, sw.elapsed_ns());
    gemm_blocked(
        &kernel,
        blocks,
        g,
        g,
        rows.clone(),
        rows.start..n,
        c,
        ldc,
        rows.start,
        true,
    );
}

/// Copies the upper triangle of the `n × n` row-major matrix `c` onto the
/// lower triangle.
///
/// Processed in `64 × 64` blocks: a row-wise mirror is a transposed copy,
/// and the naive double loop strides `ldc` words per read, thrashing the
/// TLB/caches on large matrices (it measurably dominated the SYRK time at
/// `n = 4096` before blocking). Each block's source and destination both
/// fit in L1.
pub fn mirror_upper_to_lower(c: &mut [u32], n: usize, ldc: usize) {
    assert!(ldc >= n && c.len() >= n.saturating_sub(1) * ldc + n.min(1) * n.min(ldc));
    const TB: usize = 64;
    let mut bi = 0;
    while bi < n {
        let iend = (bi + TB).min(n);
        // diagonal block: triangular copy in place
        for i in bi + 1..iend {
            for j in bi..i {
                c[i * ldc + j] = c[j * ldc + i];
            }
        }
        // off-diagonal blocks of this block-row, fully below the diagonal
        let mut bj = 0;
        while bj < bi {
            let jend = bj + TB; // bj + TB <= bi <= n, full block
            for i in bi..iend {
                for j in bj..jend {
                    c[i * ldc + j] = c[j * ldc + i];
                }
            }
            bj += TB;
        }
        bi += TB;
    }
}

/// Computes the full symmetric co-occurrence counts matrix `C = GᵀG`
/// (row-major `n × n`, `ldc = n`), doing only the triangle's worth of
/// kernel work and mirroring.
pub fn syrk_counts(g: &BitMatrixView<'_>, kind: KernelKind) -> Vec<u32> {
    let n = g.n_snps();
    let mut c = vec![0u32; n * n];
    syrk_counts_buf(g, &mut c, n, kind, BlockSizes::default(), 1);
    c
}

/// In-buffer symmetric counts with explicit blocking and thread count.
///
/// Rows are partitioned with a *triangle-aware* splitter: row `i` of the
/// upper triangle costs `n − i` inner products, so even row slabs would
/// starve the late threads. We reuse [`triangle_ranges`] on the flipped
/// axis to give every worker an equal share of pairs.
pub fn syrk_counts_buf(
    g: &BitMatrixView<'_>,
    c: &mut [u32],
    ldc: usize,
    kind: KernelKind,
    blocks: BlockSizes,
    threads: usize,
) {
    let n = g.n_snps();
    assert!(
        g.n_samples() < u32::MAX as usize,
        "co-occurrence counts are stored as u32; sample count must fit"
    );
    assert!(ldc >= n, "ldc must be at least n");
    assert!(
        c.len() >= n.saturating_sub(1) * ldc + n,
        "C buffer too small"
    );
    if n == 0 {
        return;
    }
    let kernel = Kernel::resolve(kind).expect("requested kernel not supported on this CPU");
    let sw = Stopwatch::start();
    for row in c.chunks_mut(ldc).take(n) {
        row[..n].fill(0);
    }
    ld_trace::add(Counter::KernelNs, sw.elapsed_ns());
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 {
        syrk_rows(&kernel, blocks, g, 0..n, c, ldc);
    } else {
        // Row i of the upper triangle costs n − i inner products; the
        // triangle-aware row splitter gives each worker an equal pair share.
        let row_ranges = triangle_row_ranges(n, threads);

        let mut slabs: Vec<(&mut [u32], Range<usize>)> = Vec::with_capacity(threads);
        let mut rest = &mut *c;
        let mut offset = 0usize;
        for r in &row_ranges {
            debug_assert_eq!(r.start, offset);
            let take = ((r.end - offset) * ldc).min(rest.len());
            let (slab, tail) = rest.split_at_mut(take);
            slabs.push((slab, r.clone()));
            rest = tail;
            offset = r.end;
        }
        std::thread::scope(|s| {
            for (slab, rows) in slabs {
                if rows.is_empty() {
                    continue;
                }
                let kernel = &kernel;
                s.spawn(move || {
                    syrk_rows(kernel, blocks, g, rows, slab, ldc);
                });
            }
        });
    }
    let sw = Stopwatch::start();
    mirror_upper_to_lower(c, n, ldc);
    ld_trace::add(Counter::KernelNs, sw.elapsed_ns());
}

/// Multithreaded convenience wrapper returning the full mirrored matrix.
pub fn syrk_counts_mt(g: &BitMatrixView<'_>, kind: KernelKind, threads: usize) -> Vec<u32> {
    let n = g.n_snps();
    let mut c = vec![0u32; n * n];
    syrk_counts_buf(g, &mut c, n, kind, BlockSizes::default(), threads);
    c
}

#[cfg(test)]
mod tests {
    // explicit `row * stride + col` index arithmetic reads better than
    // pre-folded literals in these layout tests
    #![allow(clippy::identity_op, clippy::erasing_op)]
    use super::*;
    use crate::micro::supported_kernels;
    use crate::reference::syrk_counts_naive;
    use ld_bitmat::BitMatrix;

    fn pseudo(n_samples: usize, n_snps: usize, seed: u64) -> BitMatrix {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut g = BitMatrix::zeros(n_samples, n_snps);
        for j in 0..n_snps {
            for smp in 0..n_samples {
                if next() % 4 == 0 {
                    g.set(smp, j, true);
                }
            }
        }
        g
    }

    #[test]
    fn syrk_matches_naive_all_kernels() {
        let g = pseudo(130, 21, 3);
        let expect = syrk_counts_naive(&g.full_view());
        for k in supported_kernels() {
            let got = syrk_counts(&g.full_view(), k.kind());
            assert_eq!(got, expect, "kernel {}", k.kind());
        }
    }

    #[test]
    fn syrk_matches_naive_odd_shapes() {
        for (ns, n) in [(1usize, 1usize), (64, 2), (65, 9), (100, 16), (33, 40)] {
            let g = pseudo(ns, n, ns as u64 * 7 + n as u64);
            let expect = syrk_counts_naive(&g.full_view());
            let got = syrk_counts(&g.full_view(), KernelKind::Auto);
            assert_eq!(got, expect, "shape ({ns},{n})");
        }
    }

    #[test]
    fn syrk_with_tiny_blocks() {
        let g = pseudo(200, 17, 8);
        let expect = syrk_counts_naive(&g.full_view());
        let mut c = vec![0u32; 17 * 17];
        syrk_counts_buf(
            &g.full_view(),
            &mut c,
            17,
            KernelKind::Auto,
            BlockSizes {
                kc: 1,
                mc: 2,
                nc: 3,
            },
            1,
        );
        assert_eq!(c, expect);
    }

    #[test]
    fn syrk_multithreaded_matches() {
        let g = pseudo(96, 33, 4);
        let expect = syrk_counts_naive(&g.full_view());
        for threads in [1usize, 2, 3, 5, 16, 100] {
            let got = syrk_counts_mt(&g.full_view(), KernelKind::Auto, threads);
            assert_eq!(got, expect, "threads={threads}");
        }
    }

    #[test]
    fn diagonal_holds_allele_counts() {
        let g = pseudo(70, 12, 5);
        let c = syrk_counts(&g.full_view(), KernelKind::Auto);
        for j in 0..12 {
            assert_eq!(c[j * 12 + j] as u64, g.ones_in_snp(j));
        }
    }

    #[test]
    fn result_is_symmetric() {
        let g = pseudo(88, 15, 6);
        let c = syrk_counts_mt(&g.full_view(), KernelKind::Auto, 4);
        for i in 0..15 {
            for j in 0..15 {
                assert_eq!(c[i * 15 + j], c[j * 15 + i]);
            }
        }
    }

    #[test]
    fn mirror_helper() {
        let n = 3;
        let mut c = vec![0u32; 9];
        c[0 * 3 + 1] = 5;
        c[0 * 3 + 2] = 7;
        c[1 * 3 + 2] = 9;
        mirror_upper_to_lower(&mut c, n, n);
        assert_eq!(c[1 * 3 + 0], 5);
        assert_eq!(c[2 * 3 + 0], 7);
        assert_eq!(c[2 * 3 + 1], 9);
    }

    #[test]
    fn slab_counts_match_naive_triangle() {
        let g = pseudo(110, 23, 9);
        let v = g.full_view();
        let expect = syrk_counts_naive(&v);
        let n = 23usize;
        // arbitrary slab cuts, including 1-row and full-matrix slabs
        for (r0, r1) in [
            (0usize, 23usize),
            (0, 1),
            (5, 6),
            (3, 11),
            (17, 23),
            (22, 23),
        ] {
            let width = n - r0;
            let h = r1 - r0;
            let mut c = vec![u32::MAX; h * width];
            syrk_slab_counts(
                &v,
                r0..r1,
                &mut c,
                width,
                KernelKind::Auto,
                BlockSizes::default(),
            );
            for i in r0..r1 {
                for j in i..n {
                    assert_eq!(
                        c[(i - r0) * width + (j - r0)],
                        expect[i * n + j],
                        "slab {r0}..{r1}: ({i},{j})"
                    );
                }
            }
        }
    }

    #[test]
    fn slab_counts_with_padded_ldc_and_tiny_blocks() {
        let g = pseudo(77, 15, 10);
        let v = g.full_view();
        let expect = syrk_counts_naive(&v);
        let (r0, r1, n) = (4usize, 9usize, 15usize);
        let width = n - r0;
        let ldc = width + 3;
        let mut c = vec![7u32; (r1 - r0) * ldc];
        syrk_slab_counts(
            &v,
            r0..r1,
            &mut c,
            ldc,
            KernelKind::Auto,
            BlockSizes {
                kc: 1,
                mc: 2,
                nc: 3,
            },
        );
        for i in r0..r1 {
            for j in i..n {
                assert_eq!(c[(i - r0) * ldc + (j - r0)], expect[i * n + j], "({i},{j})");
            }
            // padding columns untouched
            for pad in width..ldc {
                assert_eq!(c[(i - r0) * ldc + pad], 7);
            }
        }
    }

    #[test]
    fn slab_counts_empty_slab_is_noop() {
        let g = pseudo(40, 6, 11);
        let mut c = vec![3u32; 4];
        syrk_slab_counts(
            &g.full_view(),
            2..2,
            &mut c,
            4,
            KernelKind::Auto,
            BlockSizes::default(),
        );
        assert_eq!(c, vec![3u32; 4]);
    }

    #[test]
    fn empty_matrix_is_fine() {
        let g = BitMatrix::zeros(10, 0);
        let c = syrk_counts(&g.full_view(), KernelKind::Auto);
        assert!(c.is_empty());
    }

    #[test]
    fn syrk_on_view_window() {
        let g = pseudo(80, 20, 7);
        let v = g.view(5, 15);
        let expect = syrk_counts_naive(&v);
        let got = syrk_counts(&v, KernelKind::Auto);
        assert_eq!(got, expect);
    }
}
