//! Profile-file robustness: damaged profiles must degrade to the
//! built-in defaults — an error report, never a crash, and never a
//! silent acceptance of corrupted tuning parameters.
//!
//! Corpora: every truncation prefix of a valid profile, every single-bit
//! flip of the same, and an intact profile recorded for a different CPU.

use ld_kernels::profile::crc32;
use ld_kernels::{BlockSizes, CpuProfile, KernelKind, ProfileError, TunedParams};
use ld_popcount::CpuFingerprint;

fn valid_profile() -> CpuProfile {
    CpuProfile {
        fingerprint: CpuFingerprint::detect().clone(),
        tuned: TunedParams {
            kernel: KernelKind::Scalar,
            blocks: BlockSizes::default(),
            slab_rows: 64,
            chunk_slabs: 1,
            threads: 1,
            score: 1.25,
            metric: "words-per-cycle".to_string(),
        },
    }
}

#[test]
fn every_truncation_prefix_is_rejected_not_panicking() {
    let json = valid_profile().to_json();
    // Dropping only the trailing newline leaves the document complete, so
    // truncate within the trimmed document where every cut loses data.
    let bytes = json.trim_end().as_bytes();
    for cut in 0..bytes.len() {
        let r = CpuProfile::parse(&bytes[..cut]);
        assert!(
            r.is_err(),
            "truncation at {cut}/{} parsed as valid: {:?}",
            bytes.len(),
            r
        );
    }
}

#[test]
fn every_single_bit_flip_is_rejected_or_crc_caught() {
    // A flipped bit may break the JSON outright, corrupt the version, or
    // land inside the payload — where only the CRC can catch it. No
    // flip may yield a profile whose tuned parameters differ from the
    // original while parsing as valid.
    let p = valid_profile();
    let json = p.to_json();
    let mut accepted_identical = 0usize;
    for byte in 0..json.len() {
        for bit in 0..8 {
            let mut bytes = json.as_bytes().to_vec();
            bytes[byte] ^= 1 << bit;
            match CpuProfile::parse(&bytes) {
                Err(_) => {}
                Ok(q) => {
                    // Only acceptable if the damage was semantically
                    // invisible (e.g. flipping "1.25" to "1.25" cannot
                    // happen, but a flip inside an ignored whitespace
                    // run could in principle parse identically).
                    assert_eq!(
                        q, p,
                        "bit flip at byte {byte} bit {bit} silently changed the profile"
                    );
                    accepted_identical += 1;
                }
            }
        }
    }
    // The CRC covers the whole payload byte-for-byte, so in practice no
    // flip survives; tolerate only provably-identical parses.
    assert_eq!(
        accepted_identical, 0,
        "expected every bit flip to be caught by structure or CRC"
    );
}

#[test]
fn wrong_cpu_fingerprint_is_a_mismatch_not_a_parse_error() {
    let mut p = valid_profile();
    p.fingerprint.family = p.fingerprint.family.wrapping_add(1);
    p.fingerprint.vendor = "ImaginaryCPU".to_string();
    let dir = std::env::temp_dir().join(format!("ld-profile-robust-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("foreign.json");
    std::fs::write(&path, p.to_json()).unwrap();
    // Parsing succeeds (the file is intact)...
    let parsed = CpuProfile::parse(&std::fs::read(&path).unwrap()).unwrap();
    assert_eq!(parsed.fingerprint.vendor, "ImaginaryCPU");
    // ...but loading rejects it for this host.
    match CpuProfile::load(&path) {
        Err(ProfileError::FingerprintMismatch { profile, host }) => {
            assert!(profile.contains("ImaginaryCPU"));
            assert!(!host.contains("ImaginaryCPU"));
        }
        other => panic!("expected FingerprintMismatch, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn garbage_and_empty_files_are_rejected() {
    for garbage in [
        &b""[..],
        b"not json at all",
        b"{}",
        b"[]",
        b"{\"schema_version\":1}",
        b"{\"schema_version\":1,\"crc32\":0,\"payload\":{}}",
        b"\xff\xfe\x00\x01binary",
    ] {
        let r = CpuProfile::parse(garbage);
        assert!(r.is_err(), "garbage parsed as valid: {garbage:?}");
    }
}

#[test]
fn zeroed_tuning_parameters_are_rejected_even_with_valid_crc() {
    // A well-formed file whose tuned values are nonsense (zeros) must be
    // rejected up front, not propagated into the engine where a zero
    // slab height would panic much later.
    let mut p = valid_profile();
    p.tuned.slab_rows = 0;
    let json = p.to_json();
    // to_json recomputes the CRC, so the file is "intact" — the loader
    // must still reject the zero.
    assert_eq!(crc32(b"123456789"), 0xCBF4_3926); // sanity: CRC impl alive
    let e = CpuProfile::parse(json.as_bytes()).unwrap_err();
    assert!(e.to_string().contains("at least 1"), "{e}");
}
