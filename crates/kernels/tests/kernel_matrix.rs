//! Differential test matrix: every micro-kernel × every awkward shape.
//!
//! For each [`KernelKind`] this CPU supports (unsupported kinds are
//! skipped with a log line, never silently), the blocked SYRK and GEMM
//! drivers must be **bit-identical** to the naive reference
//! implementation across SNP counts chosen to hit every fringe path of
//! the micro-tile grid (`n < MR`, `n = MR ± 1`, word-boundary straddles,
//! a multi-block 257) and sample counts that exercise sub-word, exact
//! one-word, and multi-word packed columns.

use ld_bitmat::BitMatrix;
use ld_kernels::micro::Kernel;
use ld_kernels::reference::{gemm_counts_naive, syrk_counts_naive};
use ld_kernels::{gemm_counts, syrk_counts, BlockSizes, KernelKind};
use ld_popcount::PopcountStrategy;
use ld_rng::SmallRng;

/// SNP counts covering fringe tiles: below/at/above the widest MR/NR
/// (16), word-boundary straddles, and a many-block case.
const SNP_COUNTS: [usize; 8] = [1, 3, 4, 5, 63, 64, 65, 257];

/// Sample counts: sub-word, exactly one packed word, multi-word with a
/// ragged tail (1000 = 15 words + 40 bits).
const SAMPLE_COUNTS: [usize; 3] = [1, 64, 1000];

/// Every concrete kernel kind plus `Auto` (the production default).
fn all_kernel_kinds() -> Vec<KernelKind> {
    let mut kinds = vec![
        KernelKind::Auto,
        KernelKind::Scalar,
        KernelKind::Scalar2x4,
        KernelKind::Scalar8x4,
        KernelKind::ScalarAutoVec,
        KernelKind::Avx2ExtractInsert,
        KernelKind::Avx2Mula,
        KernelKind::Avx2HarleySeal,
        KernelKind::Avx512Vpopcnt,
        KernelKind::Avx512Vpopcnt4x8,
    ];
    for s in [
        PopcountStrategy::Hardware,
        PopcountStrategy::Swar,
        PopcountStrategy::Lut8,
        PopcountStrategy::Lut16,
        PopcountStrategy::HarleySeal,
    ] {
        kinds.push(KernelKind::ScalarStrategy(s));
    }
    kinds
}

/// Kinds the current CPU can run; unsupported ones are logged and skipped
/// (the skip is visible with `cargo test -- --nocapture`).
fn testable_kernel_kinds() -> Vec<KernelKind> {
    all_kernel_kinds()
        .into_iter()
        .filter(|&k| match Kernel::resolve(k) {
            Ok(_) => true,
            Err(e) => {
                eprintln!("skipping kernel {k}: {e}");
                false
            }
        })
        .collect()
}

/// A seeded random genotype matrix (ld-rng, deterministic across runs).
fn random_matrix(n_samples: usize, n_snps: usize, seed: u64) -> BitMatrix {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut g = BitMatrix::zeros(n_samples, n_snps);
    for j in 0..n_snps {
        for s in 0..n_samples {
            if rng.gen_bool(0.3) {
                g.set(s, j, true);
            }
        }
    }
    g
}

#[test]
fn syrk_all_kernels_all_shapes_match_reference() {
    let kinds = testable_kernel_kinds();
    assert!(
        kinds.len() >= 2,
        "at least Auto and Scalar must always resolve"
    );
    for &k_samples in &SAMPLE_COUNTS {
        for &n_snps in &SNP_COUNTS {
            let seed = (k_samples as u64) << 32 | n_snps as u64;
            let g = random_matrix(k_samples, n_snps, seed);
            let v = g.full_view();
            let expect = syrk_counts_naive(&v);
            for &kind in &kinds {
                let got = syrk_counts(&v, kind);
                assert_eq!(
                    got, expect,
                    "SYRK mismatch: kernel {kind}, n={n_snps}, k={k_samples}"
                );
            }
        }
    }
}

#[test]
fn gemm_all_kernels_all_shapes_match_reference() {
    let kinds = testable_kernel_kinds();
    for &k_samples in &SAMPLE_COUNTS {
        for &n_snps in &SNP_COUNTS {
            let seed = 0xA5A5 ^ ((k_samples as u64) << 32 | n_snps as u64);
            // Rectangular: m ≠ n so row/column fringe paths differ.
            let m_snps = (n_snps / 2).max(1);
            let a = random_matrix(k_samples, m_snps, seed);
            let b = random_matrix(k_samples, n_snps, seed.wrapping_add(1));
            let (va, vb) = (a.full_view(), b.full_view());
            let expect = gemm_counts_naive(&va, &vb);
            for &kind in &kinds {
                let got = gemm_counts(&va, &vb, kind);
                assert_eq!(
                    got, expect,
                    "GEMM mismatch: kernel {kind}, m={m_snps}, n={n_snps}, k={k_samples}"
                );
            }
        }
    }
}

#[test]
fn syrk_fringe_blocks_match_reference() {
    // Degenerate block sizes force every loop boundary through its fringe
    // path on a shape that is itself all fringe.
    let kinds = testable_kernel_kinds();
    let g = random_matrix(65, 65, 0xF12E);
    let v = g.full_view();
    let expect = syrk_counts_naive(&v);
    for &kind in &kinds {
        for blocks in [
            BlockSizes {
                kc: 1,
                mc: 1,
                nc: 1,
            },
            BlockSizes {
                kc: 1,
                mc: 2,
                nc: 3,
            },
        ] {
            let mut c = vec![0u32; 65 * 65];
            ld_kernels::syrk_counts_buf(&v, &mut c, 65, kind, blocks, 1);
            assert_eq!(c, expect, "kernel {kind}, blocks {blocks:?}");
        }
    }
}

#[test]
fn auto_matches_every_supported_concrete_kernel() {
    // Auto must agree bit-for-bit with whichever concrete kernel it picks
    // — and, transitively, with all of them (they all match the naive
    // reference above); this pins the resolution indirectly.
    let g = random_matrix(257, 63, 0xB0B);
    let v = g.full_view();
    let auto = syrk_counts(&v, KernelKind::Auto);
    for &kind in &testable_kernel_kinds() {
        let got = syrk_counts(&v, kind);
        assert_eq!(got, auto, "kernel {kind} disagrees with Auto");
    }
}
