//! Property tests: the blocked GotoBLAS drivers agree with the naive
//! pairwise oracle on arbitrary shapes, block sizes and kernels.

use ld_bitmat::BitMatrix;
use ld_kernels::micro::supported_kernels;
use ld_kernels::reference::{gemm_counts_naive, syrk_counts_naive};
use ld_kernels::{gemm_counts_mt, syrk_counts_buf, BlockSizes, KernelKind};
use proptest::prelude::*;

fn random_matrix(n_samples: usize, n_snps: usize, bits: &[bool]) -> BitMatrix {
    let mut g = BitMatrix::zeros(n_samples, n_snps);
    let mut it = bits.iter().cycle();
    for j in 0..n_snps {
        for s in 0..n_samples {
            if *it.next().unwrap() {
                g.set(s, j, true);
            }
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn gemm_matches_naive(
        n_samples in 1usize..300,
        m in 1usize..24,
        n in 1usize..24,
        bits in proptest::collection::vec(any::<bool>(), 64..512),
        kc in 1usize..8,
        mc in 1usize..10,
        nc in 1usize..10,
        threads in 1usize..5,
    ) {
        let a = random_matrix(n_samples, m, &bits);
        let b = random_matrix(n_samples, n, &bits[bits.len()/2..]);
        let expect = gemm_counts_naive(&a.full_view(), &b.full_view());
        let blocks = BlockSizes { kc, mc, nc };
        let mut c = vec![0u32; m * n];
        gemm_counts_mt(&a.full_view(), &b.full_view(), &mut c, n, KernelKind::Auto, blocks, threads);
        prop_assert_eq!(c, expect);
    }

    #[test]
    fn syrk_matches_naive(
        n_samples in 1usize..300,
        n in 1usize..30,
        bits in proptest::collection::vec(any::<bool>(), 64..512),
        kc in 1usize..8,
        mc in 1usize..10,
        nc in 1usize..10,
        threads in 1usize..5,
    ) {
        let g = random_matrix(n_samples, n, &bits);
        let expect = syrk_counts_naive(&g.full_view());
        let blocks = BlockSizes { kc, mc, nc };
        let mut c = vec![0u32; n * n];
        syrk_counts_buf(&g.full_view(), &mut c, n, KernelKind::Auto, blocks, threads);
        prop_assert_eq!(c, expect);
    }

    #[test]
    fn every_kernel_agrees(
        n_samples in 1usize..200,
        m in 1usize..12,
        n in 1usize..12,
        bits in proptest::collection::vec(any::<bool>(), 64..256),
    ) {
        let a = random_matrix(n_samples, m, &bits);
        let b = random_matrix(n_samples, n, &bits[1..]);
        let expect = gemm_counts_naive(&a.full_view(), &b.full_view());
        for k in supported_kernels() {
            let mut c = vec![0u32; m * n];
            gemm_counts_mt(&a.full_view(), &b.full_view(), &mut c, n, k.kind(), BlockSizes::default(), 1);
            prop_assert_eq!(&c, &expect, "kernel {}", k.kind());
        }
    }

    #[test]
    fn counts_respect_set_bounds(
        n_samples in 1usize..200,
        n in 2usize..16,
        bits in proptest::collection::vec(any::<bool>(), 64..256),
    ) {
        // C[i,j] ≤ min(C[i,i], C[j,j]) — intersections are bounded by the
        // smaller allele count, an invariant the r² denominators rely on.
        let g = random_matrix(n_samples, n, &bits);
        let c = ld_kernels::syrk_counts(&g.full_view(), KernelKind::Auto);
        for i in 0..n {
            for j in 0..n {
                prop_assert!(c[i * n + j] <= c[i * n + i].min(c[j * n + j]));
            }
        }
    }
}
