//! Property tests: the blocked GotoBLAS drivers agree with the naive
//! pairwise oracle on arbitrary shapes, block sizes and kernels.
//!
//! Driven by seeded `ld-rng` randomness (the offline environment has no
//! `proptest`): every case is deterministic and replayable from the case
//! index printed in the failure message.

use ld_bitmat::BitMatrix;
use ld_kernels::micro::supported_kernels;
use ld_kernels::reference::{gemm_counts_naive, syrk_counts_naive};
use ld_kernels::{gemm_counts_mt, syrk_counts_buf, BlockSizes, KernelKind};
use ld_rng::SmallRng;

fn random_matrix(rng: &mut SmallRng, n_samples: usize, n_snps: usize) -> BitMatrix {
    let mut g = BitMatrix::zeros(n_samples, n_snps);
    for j in 0..n_snps {
        for s in 0..n_samples {
            if rng.gen::<bool>() {
                g.set(s, j, true);
            }
        }
    }
    g
}

#[test]
fn gemm_matches_naive() {
    let mut rng = SmallRng::seed_from_u64(0x9e11);
    for case in 0..32 {
        let n_samples = rng.gen_range(1usize..300);
        let m = rng.gen_range(1usize..24);
        let n = rng.gen_range(1usize..24);
        let a = random_matrix(&mut rng, n_samples, m);
        let b = random_matrix(&mut rng, n_samples, n);
        let expect = gemm_counts_naive(&a.full_view(), &b.full_view());
        let blocks = BlockSizes {
            kc: rng.gen_range(1usize..8),
            mc: rng.gen_range(1usize..10),
            nc: rng.gen_range(1usize..10),
        };
        let threads = rng.gen_range(1usize..5);
        let mut c = vec![0u32; m * n];
        gemm_counts_mt(
            &a.full_view(),
            &b.full_view(),
            &mut c,
            n,
            KernelKind::Auto,
            blocks,
            threads,
        );
        assert_eq!(
            c, expect,
            "case {case}: shape ({n_samples},{m},{n}) {blocks:?} threads {threads}"
        );
    }
}

#[test]
fn syrk_matches_naive() {
    let mut rng = SmallRng::seed_from_u64(0x5e11);
    for case in 0..32 {
        let n_samples = rng.gen_range(1usize..300);
        let n = rng.gen_range(1usize..30);
        let g = random_matrix(&mut rng, n_samples, n);
        let expect = syrk_counts_naive(&g.full_view());
        let blocks = BlockSizes {
            kc: rng.gen_range(1usize..8),
            mc: rng.gen_range(1usize..10),
            nc: rng.gen_range(1usize..10),
        };
        let threads = rng.gen_range(1usize..5);
        let mut c = vec![0u32; n * n];
        syrk_counts_buf(&g.full_view(), &mut c, n, KernelKind::Auto, blocks, threads);
        assert_eq!(
            c, expect,
            "case {case}: shape ({n_samples},{n}) {blocks:?} threads {threads}"
        );
    }
}

#[test]
fn every_kernel_agrees() {
    let mut rng = SmallRng::seed_from_u64(0xa11);
    for case in 0..16 {
        let n_samples = rng.gen_range(1usize..200);
        let m = rng.gen_range(1usize..12);
        let n = rng.gen_range(1usize..12);
        let a = random_matrix(&mut rng, n_samples, m);
        let b = random_matrix(&mut rng, n_samples, n);
        let expect = gemm_counts_naive(&a.full_view(), &b.full_view());
        for k in supported_kernels() {
            let mut c = vec![0u32; m * n];
            gemm_counts_mt(
                &a.full_view(),
                &b.full_view(),
                &mut c,
                n,
                k.kind(),
                BlockSizes::default(),
                1,
            );
            assert_eq!(&c, &expect, "case {case}: kernel {}", k.kind());
        }
    }
}

#[test]
fn counts_respect_set_bounds() {
    // C[i,j] ≤ min(C[i,i], C[j,j]) — intersections are bounded by the
    // smaller allele count, an invariant the r² denominators rely on.
    let mut rng = SmallRng::seed_from_u64(0xb0b);
    for case in 0..16 {
        let n_samples = rng.gen_range(1usize..200);
        let n = rng.gen_range(2usize..16);
        let g = random_matrix(&mut rng, n_samples, n);
        let c = ld_kernels::syrk_counts(&g.full_view(), KernelKind::Auto);
        for i in 0..n {
            for j in 0..n {
                assert!(
                    c[i * n + j] <= c[i * n + i].min(c[j * n + j]),
                    "case {case}: ({i},{j})"
                );
            }
        }
    }
}
