//! Partition edge cases and worker-panic containment regressions.
//!
//! The partition functions feed every parallel driver, so their degenerate
//! shapes (`len = 0`, more threads than items, `n = 0/1` triangles) must
//! produce exactly-covering, non-overlapping ranges. The panic tests pin
//! the containment contract across team sizes: the first panic becomes a
//! typed [`WorkerPanic`], the remaining workers drain, and the join never
//! hangs.

use ld_parallel::{
    even_ranges, parallel_for, triangle_row_ranges, try_parallel_for, try_parallel_for_dynamic,
    try_run_team, ThreadPool, WorkerPanic,
};
use std::sync::atomic::{AtomicUsize, Ordering};

fn assert_exact_cover(ranges: &[std::ops::Range<usize>], len: usize) {
    let mut next = 0usize;
    for r in ranges {
        assert_eq!(r.start, next, "gap or overlap at {next} in {ranges:?}");
        assert!(r.end >= r.start, "negative range {r:?}");
        next = r.end;
    }
    assert_eq!(next, len, "ranges do not cover 0..{len}: {ranges:?}");
}

// ---------------------------------------------------------------------
// Partition edge cases
// ---------------------------------------------------------------------

#[test]
fn even_ranges_zero_length() {
    for parts in [1, 2, 7] {
        let r = even_ranges(0, parts);
        assert_exact_cover(&r, 0);
        assert!(
            r.iter().all(|r| r.is_empty()),
            "zero items must yield only empty ranges: {r:?}"
        );
    }
}

#[test]
fn even_ranges_more_threads_than_items() {
    let r = even_ranges(3, 8);
    assert_exact_cover(&r, 3);
    let nonempty = r.iter().filter(|r| !r.is_empty()).count();
    assert_eq!(nonempty, 3, "3 items across 8 parts: {r:?}");
}

#[test]
fn even_ranges_zero_parts_is_clamped() {
    let r = even_ranges(5, 0);
    assert_exact_cover(&r, 5);
}

#[test]
fn triangle_row_ranges_degenerate_n() {
    for parts in [1, 2, 7] {
        let r0 = triangle_row_ranges(0, parts);
        assert_exact_cover(&r0, 0);
        let r1 = triangle_row_ranges(1, parts);
        assert_exact_cover(&r1, 1);
        assert_eq!(
            r1.iter().filter(|r| !r.is_empty()).count(),
            1,
            "one row can be owned by exactly one part: {r1:?}"
        );
    }
}

#[test]
fn triangle_row_ranges_cover_for_many_shapes() {
    for n in [2, 3, 5, 17, 64, 101] {
        for parts in [1, 2, 3, 7, 16] {
            assert_exact_cover(&triangle_row_ranges(n, parts), n);
        }
    }
}

#[test]
fn parallel_for_zero_length_runs_and_returns() {
    let hits = AtomicUsize::new(0);
    parallel_for(4, 0, |r| {
        hits.fetch_add(r.len(), Ordering::Relaxed);
    });
    assert_eq!(hits.load(Ordering::Relaxed), 0);
    try_parallel_for(4, 0, |_r| {}).expect("empty loop cannot panic");
    try_parallel_for_dynamic(4, 0, 8, |_r| {}).expect("empty dynamic loop");
}

#[test]
fn parallel_for_more_threads_than_items_visits_each_once() {
    let n = 3usize;
    let counts: Vec<AtomicUsize> = (0..n).map(|_| AtomicUsize::new(0)).collect();
    parallel_for(16, n, |r| {
        for i in r {
            counts[i].fetch_add(1, Ordering::Relaxed);
        }
    });
    for (i, c) in counts.iter().enumerate() {
        assert_eq!(c.load(Ordering::Relaxed), 1, "item {i} visited != once");
    }
}

// ---------------------------------------------------------------------
// WorkerPanic containment across team sizes
// ---------------------------------------------------------------------

#[test]
fn run_team_contains_panics_on_teams_of_1_2_and_7() {
    for team in [1usize, 2, 7] {
        let err: WorkerPanic = try_run_team(team, |tid| {
            if tid == team - 1 {
                panic!("worker {tid} of {team} failed");
            }
        })
        .expect_err("the last worker always panics");
        assert_eq!(
            err.message,
            format!("worker {} of {team} failed", team - 1),
            "payload must survive for team size {team}"
        );
        assert!(err.worker < team, "worker id {} out of range", err.worker);
    }
}

#[test]
fn parallel_for_contains_panics_on_teams_of_1_2_and_7() {
    for team in [1usize, 2, 7] {
        let err = try_parallel_for(team, 64, |r| {
            if r.contains(&13) {
                panic!("chunk holding 13 blew up");
            }
        })
        .expect_err("some chunk always holds item 13");
        assert_eq!(err.message, "chunk holding 13 blew up");
    }
}

#[test]
fn dynamic_loop_contains_panics_and_drains() {
    for team in [1usize, 2, 7] {
        let visited = AtomicUsize::new(0);
        let err = try_parallel_for_dynamic(team, 256, 8, |r| {
            if r.contains(&200) {
                panic!("dynamic chunk failed");
            }
            visited.fetch_add(r.len(), Ordering::Relaxed);
        })
        .expect_err("chunk holding 200 always panics");
        assert_eq!(err.message, "dynamic chunk failed");
        // survivors drained: every chunk either completed or was cancelled,
        // and the call returned (no hang) — visited is at most len - 8
        assert!(visited.load(Ordering::Relaxed) <= 256 - 8);
    }
}

#[test]
fn non_string_panic_payload_is_described() {
    let err = try_run_team(2, |tid| {
        if tid == 0 {
            std::panic::panic_any(42usize);
        }
    })
    .expect_err("worker 0 panics with a non-string payload");
    assert!(
        !err.message.is_empty(),
        "non-string payloads still need a description"
    );
}

#[test]
fn pool_survives_panicking_jobs_across_waves() {
    let pool = ThreadPool::new(3);
    let done = std::sync::Arc::new(AtomicUsize::new(0));
    for wave in 0..3 {
        for k in 0..8 {
            let done = done.clone();
            pool.execute(move || {
                if k == 5 {
                    panic!("job {k} of wave {wave} exploded");
                }
                done.fetch_add(1, Ordering::Relaxed);
            });
        }
        // wait() must return even though a job panicked (no wedged queue)
        pool.wait();
    }
    assert_eq!(done.load(Ordering::Relaxed), 3 * 7);
    let panics = pool.take_panics();
    assert_eq!(panics.len(), 3, "one panic per wave");
    assert!(panics[0].message.contains("exploded"));
}
