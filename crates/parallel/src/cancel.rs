//! Cooperative cancellation: shareable tokens and monotonic deadlines.
//!
//! Long `n²/2` LD runs (the production north star) get killed: OOM
//! reapers, preemption, SIGINT, operator deadlines. The worker teams in
//! this crate already carry an *internal* cancellation flag to drain
//! panicking regions; [`CancelToken`] promotes that mechanism into a
//! public, shareable handle that callers (a CLI signal handler, a service
//! request scope, a test harness) can trip from any thread. The
//! dynamically-scheduled loops poll the token **at chunk granularity** —
//! a tripped token stops the scheduler from handing out further chunks,
//! so a region drains at the next chunk boundary instead of running the
//! whole iteration space (and never mid-kernel, so partial outputs stay
//! slab-consistent).
//!
//! [`Deadline`] is the time-based companion, built on the monotonic
//! [`std::time::Instant`] clock (wall-clock steps cannot fire or defer
//! it). Drivers that accept a deadline convert its expiry into a token
//! trip, so the two compose.

use crate::panic::lock_ignore_poison;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

#[derive(Debug)]
struct Inner {
    cancelled: AtomicBool,
    /// First recorded cancellation reason (first writer wins).
    reason: Mutex<Option<String>>,
    /// Hierarchy: a child observes its parent's cancellation, but
    /// cancelling a child never propagates upward.
    parent: Option<CancelToken>,
}

/// A shareable, hierarchical cancellation token.
///
/// Cloning shares the same underlying flag; [`CancelToken::child`] creates
/// a linked token that observes the parent's cancellation but can also be
/// tripped independently (e.g. one token per request under a global
/// shutdown token).
///
/// ```
/// use ld_parallel::CancelToken;
/// let root = CancelToken::new();
/// let child = root.child();
/// assert!(!child.is_cancelled());
/// root.cancel_with_reason("shutting down");
/// assert!(child.is_cancelled());
/// assert_eq!(child.reason().as_deref(), Some("shutting down"));
/// ```
#[derive(Clone, Debug)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A fresh, un-cancelled token with no parent.
    pub fn new() -> Self {
        Self {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                reason: Mutex::new(None),
                parent: None,
            }),
        }
    }

    /// A child token: cancelled when *either* it or any ancestor is
    /// cancelled. Cancelling the child does not affect the parent.
    pub fn child(&self) -> Self {
        Self {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                reason: Mutex::new(None),
                parent: Some(self.clone()),
            }),
        }
    }

    /// Trips the token with the generic reason `"cancelled"`.
    pub fn cancel(&self) {
        self.cancel_with_reason("cancelled");
    }

    /// Trips the token, recording `reason` (the first recorded reason
    /// wins; later calls only keep the flag raised).
    pub fn cancel_with_reason(&self, reason: impl Into<String>) {
        {
            let mut slot = lock_ignore_poison(&self.inner.reason);
            if slot.is_none() {
                *slot = Some(reason.into());
            }
        }
        // Release: the reason write above must be visible to any thread
        // that observes the flag.
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// True once this token or any ancestor has been cancelled.
    ///
    /// This is the poll the dynamic schedulers issue before every chunk
    /// grab: one relaxed-ish atomic load per hop of the (typically depth-1)
    /// parent chain.
    #[inline]
    pub fn is_cancelled(&self) -> bool {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return true;
        }
        match &self.inner.parent {
            Some(p) => p.is_cancelled(),
            None => false,
        }
    }

    /// The recorded cancellation reason: this token's own, falling back to
    /// the nearest cancelled ancestor's. `None` while un-cancelled.
    pub fn reason(&self) -> Option<String> {
        if self.inner.cancelled.load(Ordering::Acquire) {
            if let Some(r) = lock_ignore_poison(&self.inner.reason).clone() {
                return Some(r);
            }
        }
        match &self.inner.parent {
            Some(p) => p.reason(),
            None => None,
        }
    }
}

/// A monotonic-clock deadline (a point in time work must not run past).
///
/// Built on [`Instant`], so wall-clock adjustments (NTP steps, suspend
/// semantics aside) cannot spuriously fire or defer it. Combine with a
/// [`CancelToken`]: the driver that polls the deadline trips the token on
/// expiry, and everything downstream reacts to the token alone.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Deadline {
    at: Instant,
}

impl Deadline {
    /// A deadline `d` from now.
    pub fn after(d: Duration) -> Self {
        Self {
            at: Instant::now().checked_add(d).unwrap_or_else(far_future),
        }
    }

    /// A deadline at the given instant.
    pub fn at(at: Instant) -> Self {
        Self { at }
    }

    /// True once the deadline has passed.
    #[inline]
    pub fn expired(&self) -> bool {
        Instant::now() >= self.at
    }

    /// Time remaining (zero once expired).
    pub fn remaining(&self) -> Duration {
        self.at.saturating_duration_since(Instant::now())
    }

    /// The underlying instant.
    pub fn instant(&self) -> Instant {
        self.at
    }
}

/// An instant far enough out to behave as "never" (saturation target for
/// overflowing `after` spans).
fn far_future() -> Instant {
    // ~100 years of headroom; Instant cannot overflow from here in any
    // realistic process lifetime.
    let mut t = Instant::now();
    for _ in 0..100 {
        match t.checked_add(Duration::from_secs(365 * 24 * 3600)) {
            Some(next) => t = next,
            None => break,
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_starts_clear_and_trips_once() {
        let t = CancelToken::new();
        assert!(!t.is_cancelled());
        assert_eq!(t.reason(), None);
        t.cancel_with_reason("first");
        t.cancel_with_reason("second");
        assert!(t.is_cancelled());
        assert_eq!(t.reason().as_deref(), Some("first"));
    }

    #[test]
    fn clones_share_state() {
        let a = CancelToken::new();
        let b = a.clone();
        b.cancel();
        assert!(a.is_cancelled());
        assert_eq!(a.reason().as_deref(), Some("cancelled"));
    }

    #[test]
    fn child_observes_parent_but_not_vice_versa() {
        let parent = CancelToken::new();
        let child = parent.child();
        let grandchild = child.child();
        child.cancel_with_reason("child stop");
        assert!(!parent.is_cancelled(), "child trip must not bubble up");
        assert!(child.is_cancelled());
        assert!(grandchild.is_cancelled(), "trips flow downward");
        assert_eq!(grandchild.reason().as_deref(), Some("child stop"));
        parent.cancel_with_reason("root stop");
        // the child's own reason still wins locally
        assert_eq!(child.reason().as_deref(), Some("child stop"));
    }

    #[test]
    fn token_trips_across_threads() {
        let t = CancelToken::new();
        let t2 = t.clone();
        std::thread::spawn(move || t2.cancel_with_reason("from thread"))
            .join()
            .ok();
        assert!(t.is_cancelled());
        assert_eq!(t.reason().as_deref(), Some("from thread"));
    }

    #[test]
    fn deadline_expiry_is_monotonic() {
        let d = Deadline::after(Duration::from_millis(0));
        std::thread::sleep(Duration::from_millis(1));
        assert!(d.expired());
        assert_eq!(d.remaining(), Duration::ZERO);
        let far = Deadline::after(Duration::from_secs(3600));
        assert!(!far.expired());
        assert!(far.remaining() > Duration::from_secs(3000));
        assert!(far.instant() > Instant::now());
    }

    #[test]
    fn overflowing_deadline_saturates() {
        let d = Deadline::after(Duration::from_secs(u64::MAX));
        assert!(!d.expired());
    }
}
