//! Range-splitting helpers for load balancing.

use std::ops::Range;

/// Splits `0..len` into `parts` nearly-even contiguous ranges (lengths
/// differ by at most one; trailing ranges may be empty when
/// `parts > len`).
pub fn even_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1);
    let base = len / parts;
    let extra = len % parts;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0;
    for p in 0..parts {
        let take = base + usize::from(p < extra);
        out.push(start..start + take);
        start += take;
    }
    debug_assert_eq!(start, len);
    out
}

/// Splits the columns `0..n` of a **symmetric, upper-triangular** workload
/// into `parts` contiguous column ranges of approximately equal *pair*
/// count.
///
/// When the SYRK driver computes only the `j ≥ i` triangle of `GᵀG`,
/// column `j` costs `j + 1` tile-row visits, so an even column split would
/// give the last thread ~2× the work of a balanced one. This splitter
/// equalizes `Σ (j+1)` per part instead — the partitioning OmegaPlus-style
/// and PLINK-style pairwise drivers also use for their triangular loops.
pub fn triangle_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1);
    let total: u128 = (n as u128) * (n as u128 + 1) / 2;
    let mut out = Vec::with_capacity(parts);
    let mut start = 0usize;
    let mut done: u128 = 0;
    for p in 0..parts {
        if p + 1 == parts {
            out.push(start..n);
            break;
        }
        let target = total * (p as u128 + 1) / parts as u128;
        let mut end = start;
        while end < n && done < target {
            done += end as u128 + 1;
            end += 1;
        }
        out.push(start..end);
        start = end;
    }
    while out.len() < parts {
        out.push(n..n);
    }
    out
}

/// Splits the **rows** `0..n` of a symmetric upper-triangular workload into
/// `parts` contiguous row ranges of approximately equal pair count.
///
/// Row `i` of the upper triangle covers columns `i..n` and therefore costs
/// `n − i` inner products: early rows are the expensive ones, the mirror
/// image of [`triangle_ranges`]' columns. Implemented by flipping the
/// column splitter (`i ↦ n − 1 − j`), so both partitions share one
/// balancing routine. Ranges are returned in ascending row order and tile
/// the full `0..n`.
///
/// This is the partition the SYRK driver and the engine's fused
/// counts→statistic pipeline use for their row slabs.
pub fn triangle_row_ranges(n: usize, parts: usize) -> Vec<Range<usize>> {
    let flipped = triangle_ranges(n, parts);
    let mut out: Vec<Range<usize>> = flipped.iter().map(|r| n - r.end..n - r.start).collect();
    out.reverse();
    out
}

/// Total pair count (`Σ (n − i)` for rows `i` in the range) of a
/// triangular row range over an `n × n` upper triangle.
pub fn triangle_row_weight(n: usize, r: &Range<usize>) -> u128 {
    let a = r.start as u128;
    let b = r.end.min(n) as u128;
    let n = n as u128;
    if b <= a {
        return 0;
    }
    // Σ_{i=a}^{b-1} (n−i) = (b−a)·n − (b(b−1)/2 − a(a−1)/2)
    let tri = |x: u128| x * x.saturating_sub(1) / 2;
    (b - a) * n - (tri(b) - tri(a))
}

/// Total pair count (`Σ (j+1)` for `j` in the range) of a triangular
/// column range — used by tests and the balance heuristics.
pub fn triangle_weight(r: &Range<usize>) -> u128 {
    let a = r.start as u128;
    let b = r.end as u128;
    // Σ_{j=a}^{b-1} (j+1) = (b(b+1) - a(a+1)) / 2
    (b * (b + 1) - a * (a + 1)) / 2
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn even_ranges_cover_and_balance() {
        for (len, parts) in [(10usize, 3usize), (0, 4), (5, 5), (7, 10), (100, 7)] {
            let rs = even_ranges(len, parts);
            assert_eq!(rs.len(), parts);
            assert_eq!(rs.first().unwrap().start, 0);
            assert_eq!(rs.last().unwrap().end, len);
            for w in rs.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            let (min, max) = rs
                .iter()
                .map(|r| r.len())
                .fold((usize::MAX, 0), |(a, b), l| (a.min(l), b.max(l)));
            assert!(max - min <= 1, "len={len} parts={parts}");
        }
    }

    #[test]
    fn triangle_ranges_cover() {
        for (n, parts) in [(100usize, 4usize), (10, 3), (1, 2), (0, 3), (1000, 12)] {
            let rs = triangle_ranges(n, parts);
            assert_eq!(rs.len(), parts);
            assert_eq!(rs.first().unwrap().start, 0);
            assert_eq!(rs.last().unwrap().end, n);
            for w in rs.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
        }
    }

    #[test]
    fn triangle_ranges_balance_pairs() {
        let n = 10_000usize;
        let parts = 8;
        let rs = triangle_ranges(n, parts);
        let total: u128 = (n as u128) * (n as u128 + 1) / 2;
        let ideal = total / parts as u128;
        for r in &rs {
            let w = triangle_weight(r);
            // within 5% of ideal for a large triangle
            assert!(
                w * 100 >= ideal * 95 && w * 100 <= ideal * 105,
                "range {r:?} weight {w} vs ideal {ideal}"
            );
        }
        let sum: u128 = rs.iter().map(triangle_weight).sum();
        assert_eq!(sum, total);
    }

    #[test]
    fn triangle_weight_formula() {
        assert_eq!(triangle_weight(&(0..4)), 1 + 2 + 3 + 4);
        assert_eq!(triangle_weight(&(2..5)), 3 + 4 + 5);
        assert_eq!(triangle_weight(&(3..3)), 0);
    }

    #[test]
    fn triangle_row_ranges_cover_and_balance() {
        for (n, parts) in [(100usize, 4usize), (10, 3), (1, 2), (0, 3), (1000, 12)] {
            let rs = triangle_row_ranges(n, parts);
            assert_eq!(rs.len(), parts);
            assert_eq!(rs.first().unwrap().start, 0);
            assert_eq!(rs.last().unwrap().end, n);
            for w in rs.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
            let total: u128 = rs.iter().map(|r| triangle_row_weight(n, r)).sum();
            assert_eq!(total, (n as u128) * (n as u128 + 1) / 2);
        }
        // balance: within 5% of ideal for a large triangle
        let (n, parts) = (10_000usize, 8usize);
        let ideal = (n as u128) * (n as u128 + 1) / 2 / parts as u128;
        for r in triangle_row_ranges(n, parts) {
            let w = triangle_row_weight(n, &r);
            assert!(
                w * 100 >= ideal * 95 && w * 100 <= ideal * 105,
                "range {r:?} weight {w} vs ideal {ideal}"
            );
        }
    }

    #[test]
    fn triangle_row_weight_formula() {
        // n = 5: row 0 costs 5, row 1 costs 4, ...
        assert_eq!(triangle_row_weight(5, &(0..2)), 5 + 4);
        assert_eq!(triangle_row_weight(5, &(2..5)), 3 + 2 + 1);
        assert_eq!(triangle_row_weight(5, &(3..3)), 0);
        assert_eq!(triangle_row_weight(0, &(0..0)), 0);
    }

    #[test]
    fn triangle_row_last_range_is_widest() {
        // Late rows are cheap, so the last range holds the most rows.
        let rs = triangle_row_ranges(1000, 4);
        assert!(rs[3].len() > rs[0].len());
    }

    #[test]
    fn triangle_first_range_is_widest() {
        // Early columns are cheap, so the first range should hold the most
        // columns for any n >> parts.
        let rs = triangle_ranges(1000, 4);
        assert!(rs[0].len() > rs[3].len());
    }
}
