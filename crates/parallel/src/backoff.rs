//! Capped exponential backoff with deterministic jitter.
//!
//! Retry loops that back off on a bare exponential schedule synchronize:
//! every shard the supervisor re-dispatches after a shared fault (or every
//! client a load balancer sheds in the same overload spike) sleeps the
//! *same* `base × 2^(n−1)` and retries in lock-step, re-creating the very
//! stampede the backoff was meant to break. The standard fix is jitter —
//! spreading each sleeper uniformly over part of the exponential envelope
//! ("equal jitter": half deterministic, half uniform), so retries
//! decorrelate while the worst-case delay keeps the familiar capped
//! exponential bound.
//!
//! This workspace builds offline with no RNG dependency in `ld-parallel`,
//! and its retry tests need reproducible schedules, so the jitter source
//! is a tiny SplitMix64 hash of `(seed, attempt)`: pure, allocation-free,
//! and deterministic for a given seed. Callers that must not synchronize
//! with each other (shards of one supervisor, clients of one harness)
//! pick distinct seeds — shard index, client id — and get distinct but
//! replayable schedules.
//!
//! Shared by the `run-sharded` supervisor (`crates/cli`) and the
//! `ld-serve` client/load harness (`crates/serve`, `crates/bench`).

use std::time::Duration;

/// A capped exponential backoff schedule with deterministic equal jitter.
///
/// Attempt `n` (1-based count of *failed* attempts) sleeps
///
/// ```text
/// envelope(n) = min(base × 2^(n−1), cap)
/// delay(n)    = envelope(n)/2 + uniform[0, envelope(n)/2]
/// ```
///
/// so every delay lies in `[envelope/2, envelope]`: bounded above by the
/// classic capped exponential, bounded below by half of it, and spread
/// uniformly in between per `(seed, attempt)`.
#[derive(Clone, Copy, Debug)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    seed: u64,
}

impl Backoff {
    /// A schedule growing from `base` and saturating at `cap`.
    pub fn new(base: Duration, cap: Duration) -> Self {
        Self {
            base,
            cap,
            seed: 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Replaces the jitter seed. Concurrent retry loops that must not
    /// synchronize (shards, clients) should each pass their own id.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// The un-jittered capped exponential envelope for `failed_attempts`
    /// failures: `min(base × 2^(n−1), cap)`; zero for zero failures.
    pub fn envelope(&self, failed_attempts: usize) -> Duration {
        if failed_attempts == 0 {
            return Duration::ZERO;
        }
        // 2^63 already saturates any practical base; clamping the shift
        // keeps the multiply well-defined for absurd attempt counts.
        let shift = failed_attempts.saturating_sub(1).min(63) as u32;
        let base_ns = self.base.as_nanos().min(u128::from(u64::MAX)) as u64;
        let ns = base_ns.saturating_mul(1u64.checked_shl(shift).unwrap_or(u64::MAX));
        Duration::from_nanos(ns).min(self.cap)
    }

    /// The jittered delay before retry number `failed_attempts + 1`:
    /// uniform in `[envelope/2, envelope]`, deterministic per
    /// `(seed, failed_attempts)`.
    pub fn delay(&self, failed_attempts: usize) -> Duration {
        let env = self.envelope(failed_attempts);
        if env.is_zero() {
            return Duration::ZERO;
        }
        let env_ns = env.as_nanos().min(u128::from(u64::MAX)) as u64;
        let half = env_ns / 2;
        let spread = env_ns - half; // ≥ half for env ≥ 1ns
        let r =
            splitmix64(self.seed ^ (failed_attempts as u64).wrapping_mul(0xa076_1d64_78bd_642f));
        Duration::from_nanos(half + r % (spread + 1))
    }
}

/// SplitMix64 finalizer — the same mixing constant set `ld-rng` vendors;
/// one multiply-xor-shift round is plenty for decorrelating retry slots.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b() -> Backoff {
        Backoff::new(Duration::from_millis(500), Duration::from_millis(10_000))
    }

    #[test]
    fn envelope_matches_capped_exponential() {
        assert_eq!(b().envelope(0), Duration::ZERO);
        assert_eq!(b().envelope(1), Duration::from_millis(500));
        assert_eq!(b().envelope(2), Duration::from_millis(1000));
        assert_eq!(b().envelope(3), Duration::from_millis(2000));
        assert_eq!(b().envelope(20), Duration::from_millis(10_000), "capped");
        assert_eq!(b().envelope(usize::MAX), Duration::from_millis(10_000));
    }

    #[test]
    fn delay_stays_inside_jitter_band() {
        for seed in 0..32u64 {
            let s = b().with_seed(seed);
            for attempt in 1..=24 {
                let env = s.envelope(attempt);
                let d = s.delay(attempt);
                assert!(d >= env / 2, "attempt {attempt} seed {seed}: {d:?} < half");
                assert!(d <= env, "attempt {attempt} seed {seed}: {d:?} > envelope");
            }
        }
    }

    #[test]
    fn delay_is_deterministic_per_seed() {
        let s = b().with_seed(7);
        assert_eq!(s.delay(3), s.delay(3));
        assert_eq!(s.delay(5), b().with_seed(7).delay(5));
    }

    #[test]
    fn seeds_decorrelate_schedules() {
        // not a statistical test — just proof the seed reaches the jitter:
        // across many attempts two seeds cannot produce identical schedules
        let a = b().with_seed(1);
        let c = b().with_seed(2);
        assert!((1..=24).any(|n| a.delay(n) != c.delay(n)));
    }

    #[test]
    fn zero_failures_mean_no_delay() {
        assert_eq!(b().delay(0), Duration::ZERO);
    }

    #[test]
    fn huge_base_saturates_at_cap() {
        let s = Backoff::new(
            Duration::from_secs(u64::MAX / 2),
            Duration::from_millis(10_000),
        );
        assert_eq!(s.envelope(20), Duration::from_millis(10_000));
        assert!(s.delay(20) <= Duration::from_millis(10_000));
    }
}
