//! Fork-join worker teams over `std::thread::scope`.
//!
//! Every primitive comes in two flavors: the classic infallible form
//! (`run_team`, `parallel_for`, …), which propagates a worker panic to the
//! caller exactly like `std::thread::scope` does, and a fallible `try_`
//! form that **contains** worker panics — the first panic is converted
//! into a typed [`WorkerPanic`] (payload message preserved), the remaining
//! workers drain via a cancellation flag, and the join always completes.

use crate::cancel::CancelToken;
use crate::panic::{PanicTrap, WorkerPanic};
use ld_trace::recorder::{Span, SpanKind};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Encodes a chunk claim for the flight recorder:
/// `(chunk_index << 1) | stolen`.
#[inline]
fn chunk_arg(chunk_idx: usize, stolen: bool) -> u64 {
    ((chunk_idx as u64) << 1) | u64::from(stolen)
}

/// How a cancellable dynamic loop finished.
///
/// Returned by the `_ctl` loop variants so callers can distinguish a fully
/// drained iteration space from one cut short by a tripped
/// [`CancelToken`]. Cancellation is **not** an error at this layer — the
/// caller decides whether partial progress is a typed failure (the LD
/// driver maps it to `LdError::Cancelled`) or a normal early exit.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum LoopOutcome {
    /// Every index in `0..len` was handed out and processed.
    Completed,
    /// The token tripped while unclaimed work remained; workers stopped at
    /// the next chunk boundary and the join completed cleanly.
    Cancelled,
}

impl LoopOutcome {
    /// True when the loop drained its whole range.
    pub fn is_complete(self) -> bool {
        matches!(self, LoopOutcome::Completed)
    }
}

/// Post-join outcome: the range drained iff every chunk was claimed. The
/// claim counter only stops advancing when workers break early (token
/// trip), so `next < len` after the join means unclaimed work remains.
fn outcome_from(next: &AtomicUsize, len: usize, token: Option<&CancelToken>) -> LoopOutcome {
    if next.load(Ordering::Relaxed) >= len || token.is_none_or(|t| !t.is_cancelled()) {
        LoopOutcome::Completed
    } else {
        LoopOutcome::Cancelled
    }
}

/// Whether chunk `chunk_idx` lies outside worker `tid`'s share of a static
/// even split of `chunks` chunks over `n` workers — i.e. the dynamic
/// scheduler handed this worker a chunk that static partitioning would
/// have given to someone else. Recorded as `steal_count`: a load-imbalance
/// signal that is timing-dependent by design (only the *total* number of
/// claims is deterministic).
fn is_steal(chunk_idx: usize, tid: usize, chunks: usize, n: usize) -> bool {
    let lo = tid * chunks / n;
    let hi = (tid + 1) * chunks / n;
    chunk_idx < lo || chunk_idx >= hi
}

/// Scheduler grain for slab-structured loops: `slab × chunk_slabs` rows
/// per dynamic chunk claim, both factors clamped to at least 1.
///
/// `chunk_slabs = 1` (the default) reproduces the historic one-claim-
/// per-slab schedule; larger values amortize the atomic `fetch_add` and
/// chunk-span bookkeeping over several slabs — the knob the autotuner
/// sweeps. Because every chunk starts at a multiple of the grain, slab
/// boundaries inside a chunk stay aligned: callers can walk a claimed
/// range slab-by-slab and each sub-range is a whole slab (except the
/// final fringe of the matrix).
pub fn scheduler_grain(slab: usize, chunk_slabs: usize) -> usize {
    slab.max(1).saturating_mul(chunk_slabs.max(1))
}

/// Number of hardware threads available, with a floor of 1.
pub fn available_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Core fork-join with panic trapping. Every worker (including worker 0 on
/// the calling thread) runs inside `catch_unwind`; the first payload is
/// captured, everyone else finishes, and the payload is surfaced as a
/// `Result` instead of unwinding through the scope join.
fn run_team_trapped<F>(n: usize, f: F) -> Result<(), (usize, crate::panic::Payload)>
where
    F: Fn(usize) + Sync,
{
    let trap = PanicTrap::new();
    if n == 1 {
        ld_trace::recorder::set_worker(0);
        trap.run(0, || f(0));
        return trap.into_result();
    }
    std::thread::scope(|s| {
        for tid in 1..n {
            let f = &f;
            let trap = &trap;
            s.spawn(move || {
                // Bind this OS thread's flight-recorder timeline to its
                // logical worker id (no-op without `metrics`).
                ld_trace::recorder::set_worker(tid);
                trap.run(tid, || f(tid))
            });
        }
        ld_trace::recorder::set_worker(0);
        trap.run(0, || f(0));
    });
    trap.into_result()
}

/// Runs `f(worker_id)` on `n_threads` logical workers and waits for all of
/// them. Worker 0 is the calling thread, so `run_team(1, f)` is just
/// `f(0)` — the single-thread path has no synchronization cost, which
/// matters when benchmarking 1-thread rows of the paper's tables.
///
/// The closure may borrow from the caller's stack (scoped threads).
/// A panicking worker propagates its original payload to the caller after
/// every other worker has finished (use [`try_run_team`] to get a typed
/// error instead).
///
/// ```
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// let hits = AtomicUsize::new(0);
/// ld_parallel::run_team(4, |tid| {
///     hits.fetch_add(tid + 1, Ordering::Relaxed);
/// });
/// assert_eq!(hits.load(Ordering::Relaxed), 1 + 2 + 3 + 4);
/// ```
pub fn run_team<F>(n_threads: usize, f: F)
where
    F: Fn(usize) + Sync,
{
    let n = n_threads.max(1);
    if let Err((_, payload)) = run_team_trapped(n, f) {
        std::panic::resume_unwind(payload);
    }
}

/// Panic-containing [`run_team`]: a panicking worker becomes a typed
/// [`WorkerPanic`] (first panic wins; all workers are still joined).
///
/// ```
/// let r = ld_parallel::try_run_team(3, |tid| {
///     if tid == 1 { panic!("boom from {tid}"); }
/// });
/// assert_eq!(r.unwrap_err().message, "boom from 1");
/// ```
pub fn try_run_team<F>(n_threads: usize, f: F) -> Result<(), WorkerPanic>
where
    F: Fn(usize) + Sync,
{
    let n = n_threads.max(1);
    run_team_trapped(n, f).map_err(|(tid, payload)| WorkerPanic::from_payload(tid, &payload))
}

/// Statically-scheduled parallel loop: splits `0..len` into `n_threads`
/// nearly-even contiguous slabs and runs `f(range)` on each worker.
///
/// Use when iterations have uniform cost (e.g. GEMM column blocks).
/// A worker panic propagates (see [`try_parallel_for`] for containment).
pub fn parallel_for<F>(n_threads: usize, len: usize, f: F)
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    if let Err(p) = try_parallel_for_impl(n_threads, len, &f) {
        std::panic::resume_unwind(p.1);
    }
}

/// Panic-containing [`parallel_for`].
pub fn try_parallel_for<F>(n_threads: usize, len: usize, f: F) -> Result<(), WorkerPanic>
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    try_parallel_for_impl(n_threads, len, &f)
        .map_err(|(tid, payload)| WorkerPanic::from_payload(tid, &payload))
}

fn try_parallel_for_impl<F>(
    n_threads: usize,
    len: usize,
    f: &F,
) -> Result<(), (usize, crate::panic::Payload)>
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    let n = n_threads.max(1).min(len.max(1));
    if n == 1 {
        return run_team_trapped(1, |_| f(0..len));
    }
    let ranges = crate::partition::even_ranges(len, n);
    run_team_trapped(n, |tid| {
        let r = ranges[tid].clone();
        if !r.is_empty() {
            f(r);
        }
    })
}

/// Dynamically-scheduled parallel loop: workers grab chunks of `grain`
/// consecutive indices from an atomic counter until the range is drained.
///
/// Use when iteration costs are skewed (e.g. the triangular SYRK tile
/// space, or ω-statistic windows of varying SNP counts). A worker panic
/// propagates (see [`try_parallel_for_dynamic`] for containment).
pub fn parallel_for_dynamic<F>(n_threads: usize, len: usize, grain: usize, f: F)
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    if let Err(p) = try_parallel_for_dynamic_impl(n_threads, len, grain, None, &f) {
        std::panic::resume_unwind(p.1);
    }
}

/// Panic-containing [`parallel_for_dynamic`]: the first panicking chunk is
/// reported as [`WorkerPanic`]; surviving workers stop grabbing new chunks
/// (cancellation flag), so the loop drains promptly and the join cannot
/// hang.
pub fn try_parallel_for_dynamic<F>(
    n_threads: usize,
    len: usize,
    grain: usize,
    f: F,
) -> Result<(), WorkerPanic>
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    try_parallel_for_dynamic_impl(n_threads, len, grain, None, &f)
        .map(|_| ())
        .map_err(|(tid, payload)| WorkerPanic::from_payload(tid, &payload))
}

/// Cancellable [`try_parallel_for_dynamic`]: polls `token` before every
/// chunk grab (including on the single-thread path, which chunks by
/// `grain` when a token is present so cancellation stays responsive).
///
/// A tripped token stops workers at the next chunk boundary — never
/// mid-chunk — and the function returns `Ok(LoopOutcome::Cancelled)`.
/// Worker panics still win over cancellation and surface as
/// [`WorkerPanic`].
///
/// ```
/// use ld_parallel::{try_parallel_for_dynamic_ctl, CancelToken, LoopOutcome};
/// let token = CancelToken::new();
/// token.cancel_with_reason("deadline");
/// let out = try_parallel_for_dynamic_ctl(2, 100, 8, Some(&token), |_r| {
///     unreachable!("no chunk is handed out after the trip");
/// })
/// .unwrap();
/// assert_eq!(out, LoopOutcome::Cancelled);
/// ```
pub fn try_parallel_for_dynamic_ctl<F>(
    n_threads: usize,
    len: usize,
    grain: usize,
    token: Option<&CancelToken>,
    f: F,
) -> Result<LoopOutcome, WorkerPanic>
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    try_parallel_for_dynamic_impl(n_threads, len, grain, token, &f)
        .map_err(|(tid, payload)| WorkerPanic::from_payload(tid, &payload))
}

fn try_parallel_for_dynamic_impl<F>(
    n_threads: usize,
    len: usize,
    grain: usize,
    token: Option<&CancelToken>,
    f: &F,
) -> Result<LoopOutcome, (usize, crate::panic::Payload)>
where
    F: Fn(std::ops::Range<usize>) + Sync,
{
    let n = n_threads.max(1);
    let grain = grain.max(1);
    if token.is_none() && (n == 1 || len <= grain) {
        // Historic fast path: a single un-chunked call. Only taken when no
        // token is in play (a token needs chunk boundaries to be polled).
        if len == 0 {
            return Ok(LoopOutcome::Completed);
        }
        ld_trace::worker_claim(0, false);
        return run_team_trapped(1, |_| {
            let span = Span::begin(SpanKind::Chunk);
            f(0..len);
            span.end(chunk_arg(0, false));
        })
        .map(|()| LoopOutcome::Completed);
    }
    if len == 0 {
        return Ok(LoopOutcome::Completed);
    }
    let next = AtomicUsize::new(0);
    let trap = PanicTrap::new();
    let chunks = len.div_ceil(grain);
    let n = n.min(chunks);
    std::thread::scope(|s| {
        let worker = |tid: usize| {
            let trap = &trap;
            let next = &next;
            move || {
                ld_trace::recorder::set_worker(tid);
                while !trap.cancelled() {
                    if token.is_some_and(|t| t.is_cancelled()) {
                        break;
                    }
                    let start = next.fetch_add(grain, Ordering::Relaxed);
                    if start >= len {
                        break;
                    }
                    let stolen = is_steal(start / grain, tid, chunks, n);
                    ld_trace::worker_claim(tid, stolen);
                    let end = (start + grain).min(len);
                    let span = Span::begin(SpanKind::Chunk);
                    let ok = trap.run(tid, || f(start..end));
                    span.end(chunk_arg(start / grain, stolen));
                    if !ok {
                        break;
                    }
                }
            }
        };
        for tid in 1..n {
            s.spawn(worker(tid));
        }
        worker(0)();
    });
    trap.into_result()?;
    Ok(outcome_from(&next, len, token))
}

/// Dynamically-scheduled parallel loop with **per-worker state**: each
/// worker builds its state once with `init(worker_id)`, then repeatedly
/// grabs chunks of at most `grain` consecutive indices and runs
/// `f(&mut state, range)` on them.
///
/// This is the scheduler behind the engine's fused counts→statistic
/// pipeline: `init` allocates a worker's bounded scratch slab exactly once,
/// and dynamic chunk-grabbing absorbs the skew of triangular workloads
/// without per-chunk allocation. Unlike [`parallel_for_dynamic`], the
/// single-thread path still chunks by `grain` — callers rely on every
/// `f` invocation seeing at most `grain` indices (that bound is what caps
/// the scratch size). A worker panic propagates (see
/// [`try_parallel_for_dynamic_init`] for containment).
pub fn parallel_for_dynamic_init<S, I, F>(n_threads: usize, len: usize, grain: usize, init: I, f: F)
where
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, std::ops::Range<usize>) + Sync,
{
    if let Err(p) = try_parallel_for_dynamic_init_impl(n_threads, len, grain, None, &init, &f) {
        std::panic::resume_unwind(p.1);
    }
}

/// Panic-containing [`parallel_for_dynamic_init`]: panics in `init` or `f`
/// (first one wins) become a typed [`WorkerPanic`]; the cancellation flag
/// stops the surviving workers from grabbing further chunks.
pub fn try_parallel_for_dynamic_init<S, I, F>(
    n_threads: usize,
    len: usize,
    grain: usize,
    init: I,
    f: F,
) -> Result<(), WorkerPanic>
where
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, std::ops::Range<usize>) + Sync,
{
    try_parallel_for_dynamic_init_impl(n_threads, len, grain, None, &init, &f)
        .map(|_| ())
        .map_err(|(tid, payload)| WorkerPanic::from_payload(tid, &payload))
}

/// Cancellable [`try_parallel_for_dynamic_init`]: the scheduler behind the
/// fused LD driver, extended with a [`CancelToken`] polled **before every
/// chunk grab** on every path (the single-thread path already chunks by
/// `grain`, so cancellation granularity is identical at any thread count).
///
/// A tripped token never interrupts `f` mid-chunk — chunks that started
/// before the trip run to completion, so slab-granular outputs stay
/// consistent — and the loop reports `Ok(LoopOutcome::Cancelled)` once the
/// join finishes. Worker panics still surface as [`WorkerPanic`].
pub fn try_parallel_for_dynamic_init_ctl<S, I, F>(
    n_threads: usize,
    len: usize,
    grain: usize,
    token: Option<&CancelToken>,
    init: I,
    f: F,
) -> Result<LoopOutcome, WorkerPanic>
where
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, std::ops::Range<usize>) + Sync,
{
    try_parallel_for_dynamic_init_impl(n_threads, len, grain, token, &init, &f)
        .map_err(|(tid, payload)| WorkerPanic::from_payload(tid, &payload))
}

fn try_parallel_for_dynamic_init_impl<S, I, F>(
    n_threads: usize,
    len: usize,
    grain: usize,
    token: Option<&CancelToken>,
    init: &I,
    f: &F,
) -> Result<LoopOutcome, (usize, crate::panic::Payload)>
where
    I: Fn(usize) -> S + Sync,
    F: Fn(&mut S, std::ops::Range<usize>) + Sync,
{
    let grain = grain.max(1);
    let n = n_threads.max(1).min(len.div_ceil(grain).max(1));
    if len == 0 {
        return Ok(LoopOutcome::Completed);
    }
    if n == 1 {
        let next = AtomicUsize::new(0);
        run_team_trapped(1, |_| {
            let mut state = init(0);
            let mut start = 0usize;
            while start < len {
                if token.is_some_and(|t| t.is_cancelled()) {
                    break;
                }
                let end = (start + grain).min(len);
                ld_trace::worker_claim(0, false);
                next.store(end, Ordering::Relaxed);
                let span = Span::begin(SpanKind::Chunk);
                f(&mut state, start..end);
                span.end(chunk_arg(start / grain, false));
                start = end;
            }
        })?;
        return Ok(outcome_from(&next, len, token));
    }
    let next = AtomicUsize::new(0);
    let trap = PanicTrap::new();
    let chunks = len.div_ceil(grain);
    std::thread::scope(|s| {
        let worker = |tid: usize| {
            let trap = &trap;
            let next = &next;
            move || {
                ld_trace::recorder::set_worker(tid);
                let mut state: Option<S> = None;
                while !trap.cancelled() {
                    if token.is_some_and(|t| t.is_cancelled()) {
                        break;
                    }
                    let start = next.fetch_add(grain, Ordering::Relaxed);
                    if start >= len {
                        break;
                    }
                    let stolen = is_steal(start / grain, tid, chunks, n);
                    ld_trace::worker_claim(tid, stolen);
                    let end = (start + grain).min(len);
                    let span = Span::begin(SpanKind::Chunk);
                    let ok = trap.run(tid, || {
                        // `state` is only touched by this worker; the
                        // AssertUnwindSafe in `trap.run` is sound because a
                        // panicking chunk cancels the whole loop (no state
                        // is observed after a panic).
                        let state = &mut state;
                        f(state.get_or_insert_with(|| init(tid)), start..end);
                    });
                    span.end(chunk_arg(start / grain, stolen));
                    if !ok {
                        break;
                    }
                }
            }
        };
        for tid in 1..n {
            s.spawn(worker(tid));
        }
        worker(0)();
    });
    trap.into_result()?;
    Ok(outcome_from(&next, len, token))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    #[test]
    fn team_runs_every_worker_once() {
        for n in [1usize, 2, 3, 8] {
            let seen = Mutex::new(vec![0usize; n]);
            run_team(n, |tid| {
                seen.lock().unwrap()[tid] += 1;
            });
            assert_eq!(*seen.lock().unwrap(), vec![1; n], "n={n}");
        }
    }

    #[test]
    fn team_zero_is_clamped_to_one() {
        let ran = AtomicUsize::new(0);
        run_team(0, |tid| {
            assert_eq!(tid, 0);
            ran.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ran.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn static_for_covers_range_exactly_once() {
        for (threads, len) in [(1usize, 10usize), (3, 10), (4, 3), (8, 100), (5, 0)] {
            let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
            parallel_for(threads, len, |r| {
                for i in r {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "threads={threads} len={len}"
            );
        }
    }

    #[test]
    fn dynamic_for_covers_range_exactly_once() {
        for (threads, len, grain) in [
            (1usize, 10usize, 3usize),
            (4, 100, 7),
            (3, 5, 100),
            (2, 0, 1),
        ] {
            let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
            parallel_for_dynamic(threads, len, grain, |r| {
                for i in r {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            });
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "threads={threads} len={len} grain={grain}"
            );
        }
    }

    #[test]
    fn dynamic_init_covers_range_and_respects_grain() {
        for (threads, len, grain) in [
            (1usize, 10usize, 3usize),
            (4, 100, 7),
            (3, 5, 100),
            (2, 0, 1),
            (7, 64, 8),
        ] {
            let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
            let inits = AtomicUsize::new(0);
            parallel_for_dynamic_init(
                threads,
                len,
                grain,
                |_tid| {
                    inits.fetch_add(1, Ordering::Relaxed);
                    Vec::<usize>::new()
                },
                |state, r| {
                    // every chunk obeys the grain bound — the scratch-size
                    // guarantee the fused pipeline depends on
                    assert!(r.len() <= grain);
                    state.push(r.len());
                    for i in r {
                        hits[i].fetch_add(1, Ordering::Relaxed);
                    }
                },
            );
            assert!(
                hits.iter().all(|h| h.load(Ordering::Relaxed) == 1),
                "threads={threads} len={len} grain={grain}"
            );
            // at most one init per worker, and none when there is no work
            let bound = if len == 0 { 0 } else { threads.max(1) };
            assert!(inits.load(Ordering::Relaxed) <= bound);
        }
    }

    #[test]
    fn workers_can_borrow_stack_data() {
        let data = [1u64, 2, 3, 4];
        let sum = AtomicUsize::new(0);
        parallel_for(2, data.len(), |r| {
            let local: u64 = data[r].iter().sum();
            sum.fetch_add(local as usize, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), 10);
    }

    #[test]
    fn available_threads_is_positive() {
        assert!(available_threads() >= 1);
    }

    #[test]
    fn scheduler_grain_clamps_and_multiplies() {
        assert_eq!(scheduler_grain(64, 1), 64);
        assert_eq!(scheduler_grain(64, 4), 256);
        assert_eq!(scheduler_grain(0, 0), 1);
        assert_eq!(scheduler_grain(0, 3), 3);
        assert_eq!(scheduler_grain(usize::MAX, 2), usize::MAX);
    }

    #[test]
    fn ctl_loops_complete_without_a_token() {
        for (threads, len, grain) in [(1usize, 10usize, 3usize), (4, 100, 7), (2, 0, 1)] {
            let hits: Vec<AtomicUsize> = (0..len).map(|_| AtomicUsize::new(0)).collect();
            let out = try_parallel_for_dynamic_ctl(threads, len, grain, None, |r| {
                for i in r {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                }
            })
            .unwrap();
            assert_eq!(out, LoopOutcome::Completed);
            assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
            let out = try_parallel_for_dynamic_init_ctl(
                threads,
                len,
                grain,
                None,
                |_tid| (),
                |_s, r| assert!(r.len() <= grain),
            )
            .unwrap();
            assert_eq!(out, LoopOutcome::Completed);
        }
    }

    #[test]
    fn pre_tripped_token_hands_out_no_chunks() {
        let token = crate::CancelToken::new();
        token.cancel_with_reason("pre-tripped");
        for threads in [1usize, 2, 7] {
            let ran = AtomicUsize::new(0);
            let out = try_parallel_for_dynamic_init_ctl(
                threads,
                64,
                8,
                Some(&token),
                |_tid| (),
                |_s, _r| {
                    ran.fetch_add(1, Ordering::Relaxed);
                },
            )
            .unwrap();
            assert_eq!(out, LoopOutcome::Cancelled, "threads={threads}");
            assert_eq!(ran.load(Ordering::Relaxed), 0, "threads={threads}");
        }
    }

    #[test]
    fn mid_loop_trip_stops_at_a_chunk_boundary() {
        // trip the token from inside chunk 2; with 1 thread the schedule is
        // deterministic: chunks 0,1,2 run, nothing after.
        let token = crate::CancelToken::new();
        let chunks_run = AtomicUsize::new(0);
        let out = try_parallel_for_dynamic_ctl(1, 100, 10, Some(&token), |r| {
            chunks_run.fetch_add(1, Ordering::Relaxed);
            assert_eq!(r.len(), 10, "cancellation must not truncate a chunk");
            if r.start == 20 {
                token.cancel();
            }
        })
        .unwrap();
        assert_eq!(out, LoopOutcome::Cancelled);
        assert_eq!(chunks_run.load(Ordering::Relaxed), 3);
    }

    #[test]
    fn init_ctl_single_thread_trip_is_chunk_granular() {
        let token = crate::CancelToken::new();
        let seen = Mutex::new(Vec::new());
        let out = try_parallel_for_dynamic_init_ctl(
            1,
            50,
            10,
            Some(&token),
            |_tid| (),
            |_s, r| {
                seen.lock().unwrap().push(r.start);
                if r.start == 10 {
                    token.cancel_with_reason("enough");
                }
            },
        )
        .unwrap();
        assert_eq!(out, LoopOutcome::Cancelled);
        assert_eq!(*seen.lock().unwrap(), vec![0, 10]);
    }

    #[test]
    fn panic_wins_over_cancellation() {
        let token = crate::CancelToken::new();
        let err = try_parallel_for_dynamic_ctl(2, 40, 4, Some(&token), |r| {
            if r.start == 0 {
                panic!("chunk zero exploded");
            }
        })
        .unwrap_err();
        assert!(err.message.contains("chunk zero exploded"));
    }

    #[test]
    fn trip_after_completion_reports_completed() {
        let token = crate::CancelToken::new();
        let out = try_parallel_for_dynamic_ctl(2, 16, 4, Some(&token), |_r| {}).unwrap();
        token.cancel();
        assert_eq!(out, LoopOutcome::Completed);
        assert!(out.is_complete());
    }
}
