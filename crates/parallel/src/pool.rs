//! A persistent thread pool for coarse `'static` jobs.
//!
//! The GEMM drivers use scoped teams ([`crate::run_team`]) so they can
//! borrow packing buffers; this pool complements them for fire-and-forget
//! or overlap work (dataset generation in the bench harness, per-window ω
//! jobs in the CLI) where a long-lived set of workers is preferable to
//! spawning threads per call.

use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    pending: Mutex<usize>,
    all_done: Condvar,
}

/// A fixed-size pool of worker threads consuming jobs from a channel.
///
/// ```
/// use ld_parallel::ThreadPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let pool = ThreadPool::new(3);
/// let counter = Arc::new(AtomicUsize::new(0));
/// for _ in 0..10 {
///     let c = counter.clone();
///     pool.execute(move || { c.fetch_add(1, Ordering::Relaxed); });
/// }
/// pool.wait();
/// assert_eq!(counter.load(Ordering::Relaxed), 10);
/// ```
pub struct ThreadPool {
    tx: Option<Sender<Job>>,
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl ThreadPool {
    /// Spawns a pool with `n_threads` workers (at least one).
    pub fn new(n_threads: usize) -> Self {
        let n = n_threads.max(1);
        let (tx, rx): (Sender<Job>, Receiver<Job>) = unbounded();
        let shared = Arc::new(Shared { pending: Mutex::new(0), all_done: Condvar::new() });
        let workers = (0..n)
            .map(|i| {
                let rx = rx.clone();
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("ld-pool-{i}"))
                    .spawn(move || {
                        while let Ok(job) = rx.recv() {
                            job();
                            let mut pending = shared.pending.lock();
                            *pending -= 1;
                            if *pending == 0 {
                                shared.all_done.notify_all();
                            }
                        }
                    })
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self { tx: Some(tx), workers, shared }
    }

    /// Number of worker threads.
    pub fn n_threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits a job. Panics if called after the pool started shutting down
    /// (cannot happen through the safe API, which consumes the pool on drop).
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        *self.shared.pending.lock() += 1;
        self.tx
            .as_ref()
            .expect("pool is shut down")
            .send(Box::new(job))
            .expect("pool workers disappeared");
    }

    /// Blocks until every submitted job has finished.
    pub fn wait(&self) {
        let mut pending = self.shared.pending.lock();
        while *pending > 0 {
            self.shared.all_done.wait(&mut pending);
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.wait();
        // Closing the channel stops the workers.
        drop(self.tx.take());
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        let c = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = c.clone();
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait();
        assert_eq!(c.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn wait_with_no_jobs_returns() {
        let pool = ThreadPool::new(2);
        pool.wait();
        assert_eq!(pool.n_threads(), 2);
    }

    #[test]
    fn drop_joins_workers() {
        let c = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(3);
            for _ in 0..50 {
                let c = c.clone();
                pool.execute(move || {
                    std::thread::yield_now();
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            // drop without explicit wait
        }
        assert_eq!(c.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn zero_threads_clamped() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.n_threads(), 1);
        let c = Arc::new(AtomicUsize::new(0));
        let c2 = c.clone();
        pool.execute(move || {
            c2.fetch_add(1, Ordering::Relaxed);
        });
        pool.wait();
        assert_eq!(c.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn reusable_across_waves() {
        let pool = ThreadPool::new(2);
        let c = Arc::new(AtomicUsize::new(0));
        for _wave in 0..3 {
            for _ in 0..10 {
                let c = c.clone();
                pool.execute(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            pool.wait();
        }
        assert_eq!(c.load(Ordering::Relaxed), 30);
    }
}
