//! A persistent thread pool for coarse `'static` jobs.
//!
//! The GEMM drivers use scoped teams ([`crate::run_team`]) so they can
//! borrow packing buffers; this pool complements them for fire-and-forget
//! or overlap work (dataset generation in the bench harness, per-window ω
//! jobs in the CLI) where a long-lived set of workers is preferable to
//! spawning threads per call.
//!
//! Built on `std` only (a `Mutex<VecDeque>` + two `Condvar`s): the offline
//! build environment has no `crossbeam`, and an MPMC job queue at this
//! coarse granularity gains nothing from lock-free machinery.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    state: Mutex<State>,
    /// Signalled when a job is pushed or the pool shuts down.
    job_ready: Condvar,
    /// Signalled when the number of in-flight jobs reaches zero.
    all_done: Condvar,
}

struct State {
    queue: VecDeque<Job>,
    /// Queued + currently-executing jobs.
    pending: usize,
    shutdown: bool,
}

/// A fixed-size pool of worker threads consuming jobs from a shared queue.
///
/// ```
/// use ld_parallel::ThreadPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let pool = ThreadPool::new(3);
/// let counter = Arc::new(AtomicUsize::new(0));
/// for _ in 0..10 {
///     let c = counter.clone();
///     pool.execute(move || { c.fetch_add(1, Ordering::Relaxed); });
/// }
/// pool.wait();
/// assert_eq!(counter.load(Ordering::Relaxed), 10);
/// ```
pub struct ThreadPool {
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl ThreadPool {
    /// Spawns a pool with `n_threads` workers (at least one).
    pub fn new(n_threads: usize) -> Self {
        let n = n_threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                pending: 0,
                shutdown: false,
            }),
            job_ready: Condvar::new(),
            all_done: Condvar::new(),
        });
        let workers = (0..n)
            .map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("ld-pool-{i}"))
                    .spawn(move || worker_loop(&shared))
                    .expect("failed to spawn pool worker")
            })
            .collect();
        Self { workers, shared }
    }

    /// Number of worker threads.
    pub fn n_threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits a job. Panics if called after the pool started shutting down
    /// (cannot happen through the safe API, which consumes the pool on drop).
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        let mut st = self.shared.state.lock().unwrap();
        assert!(!st.shutdown, "pool is shut down");
        st.pending += 1;
        st.queue.push_back(Box::new(job));
        drop(st);
        self.shared.job_ready.notify_one();
    }

    /// Blocks until every submitted job has finished.
    pub fn wait(&self) {
        let mut st = self.shared.state.lock().unwrap();
        while st.pending > 0 {
            st = self.shared.all_done.wait(st).unwrap();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut st = shared.state.lock().unwrap();
            loop {
                if let Some(job) = st.queue.pop_front() {
                    break job;
                }
                if st.shutdown {
                    return;
                }
                st = shared.job_ready.wait(st).unwrap();
            }
        };
        job();
        let mut st = shared.state.lock().unwrap();
        st.pending -= 1;
        if st.pending == 0 {
            shared.all_done.notify_all();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.wait();
        {
            let mut st = self.shared.state.lock().unwrap();
            st.shutdown = true;
        }
        self.shared.job_ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        let c = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = c.clone();
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait();
        assert_eq!(c.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn wait_with_no_jobs_returns() {
        let pool = ThreadPool::new(2);
        pool.wait();
        assert_eq!(pool.n_threads(), 2);
    }

    #[test]
    fn drop_joins_workers() {
        let c = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(3);
            for _ in 0..50 {
                let c = c.clone();
                pool.execute(move || {
                    std::thread::yield_now();
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            // drop without explicit wait
        }
        assert_eq!(c.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn zero_threads_clamped() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.n_threads(), 1);
        let c = Arc::new(AtomicUsize::new(0));
        let c2 = c.clone();
        pool.execute(move || {
            c2.fetch_add(1, Ordering::Relaxed);
        });
        pool.wait();
        assert_eq!(c.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn reusable_across_waves() {
        let pool = ThreadPool::new(2);
        let c = Arc::new(AtomicUsize::new(0));
        for _wave in 0..3 {
            for _ in 0..10 {
                let c = c.clone();
                pool.execute(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            pool.wait();
        }
        assert_eq!(c.load(Ordering::Relaxed), 30);
    }

    #[test]
    fn jobs_submitted_from_jobs_would_deadlock_nothing() {
        // jobs only touch the queue through the Arc, not the pool handle,
        // so wait() sees a consistent pending count even under contention.
        let pool = ThreadPool::new(4);
        let c = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let c = c.clone();
            pool.execute(move || {
                for _ in 0..1000 {
                    c.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        pool.wait();
        assert_eq!(c.load(Ordering::Relaxed), 8000);
    }
}
