//! A persistent thread pool for coarse `'static` jobs.
//!
//! The GEMM drivers use scoped teams ([`crate::run_team`]) so they can
//! borrow packing buffers; this pool complements them for fire-and-forget
//! or overlap work (dataset generation in the bench harness, per-window ω
//! jobs in the CLI) where a long-lived set of workers is preferable to
//! spawning threads per call.
//!
//! Built on `std` only (a `Mutex<VecDeque>` + two `Condvar`s): the offline
//! build environment has no `crossbeam`, and an MPMC job queue at this
//! coarse granularity gains nothing from lock-free machinery.
//!
//! ## Panic containment
//!
//! A panicking job is caught with [`std::panic::catch_unwind`] inside the
//! worker loop, so it can never wedge the queue: `pending` is decremented
//! whether the job returns or unwinds, `wait` always makes progress, and
//! the worker thread survives to run the next job. Captured panics are
//! recorded (payload message preserved) and retrievable via
//! [`ThreadPool::take_panics`].

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

use crate::panic::{lock_ignore_poison, payload_message, WorkerPanic};

type Job = Box<dyn FnOnce() + Send + 'static>;

struct Shared {
    state: Mutex<State>,
    /// Signalled when a job is pushed or the pool shuts down.
    job_ready: Condvar,
    /// Signalled when the number of in-flight jobs reaches zero.
    all_done: Condvar,
}

struct State {
    queue: VecDeque<Job>,
    /// Queued + currently-executing jobs.
    pending: usize,
    shutdown: bool,
    /// Panics captured from jobs since the last [`ThreadPool::take_panics`].
    panics: Vec<WorkerPanic>,
}

/// A fixed-size pool of worker threads consuming jobs from a shared queue.
///
/// ```
/// use ld_parallel::ThreadPool;
/// use std::sync::atomic::{AtomicUsize, Ordering};
/// use std::sync::Arc;
///
/// let pool = ThreadPool::new(3);
/// let counter = Arc::new(AtomicUsize::new(0));
/// for _ in 0..10 {
///     let c = counter.clone();
///     pool.execute(move || { c.fetch_add(1, Ordering::Relaxed); });
/// }
/// pool.wait();
/// assert_eq!(counter.load(Ordering::Relaxed), 10);
/// ```
///
/// A panicking job cannot hang the pool; its panic is captured instead:
///
/// ```
/// use ld_parallel::ThreadPool;
///
/// let pool = ThreadPool::new(2);
/// pool.execute(|| panic!("job blew up"));
/// pool.execute(|| { /* still runs */ });
/// pool.wait(); // returns — no wedge
/// let panics = pool.take_panics();
/// assert_eq!(panics.len(), 1);
/// assert_eq!(panics[0].message, "job blew up");
/// ```
pub struct ThreadPool {
    workers: Vec<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl ThreadPool {
    /// Spawns a pool with `n_threads` workers (at least one).
    ///
    /// # Panics
    /// Panics only if the OS refuses to spawn any worker thread at all.
    pub fn new(n_threads: usize) -> Self {
        let n = n_threads.max(1);
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                pending: 0,
                shutdown: false,
                panics: Vec::new(),
            }),
            job_ready: Condvar::new(),
            all_done: Condvar::new(),
        });
        let workers: Vec<JoinHandle<()>> = (0..n)
            .filter_map(|i| {
                let shared = shared.clone();
                std::thread::Builder::new()
                    .name(format!("ld-pool-{i}"))
                    .spawn(move || worker_loop(i, &shared))
                    .ok()
            })
            .collect();
        assert!(
            !workers.is_empty(),
            "failed to spawn any pool worker thread"
        );
        Self { workers, shared }
    }

    /// Number of worker threads.
    pub fn n_threads(&self) -> usize {
        self.workers.len()
    }

    /// Submits a job. Panics if called after the pool started shutting down
    /// (cannot happen through the safe API, which consumes the pool on drop).
    pub fn execute<F: FnOnce() + Send + 'static>(&self, job: F) {
        let mut st = lock_ignore_poison(&self.shared.state);
        assert!(!st.shutdown, "pool is shut down");
        st.pending += 1;
        st.queue.push_back(Box::new(job));
        drop(st);
        self.shared.job_ready.notify_one();
    }

    /// Blocks until every submitted job has finished (returned *or*
    /// panicked — a panicking job still counts as finished, so this never
    /// hangs on a poisoned queue).
    pub fn wait(&self) {
        let mut st = lock_ignore_poison(&self.shared.state);
        while st.pending > 0 {
            st = self
                .shared
                .all_done
                .wait(st)
                .unwrap_or_else(std::sync::PoisonError::into_inner);
        }
    }

    /// Drains and returns the panics captured from jobs so far.
    ///
    /// Call after [`ThreadPool::wait`] to learn whether any job failed.
    /// Each entry preserves the panic payload message and the worker id
    /// that ran the job.
    pub fn take_panics(&self) -> Vec<WorkerPanic> {
        let mut st = lock_ignore_poison(&self.shared.state);
        std::mem::take(&mut st.panics)
    }

    /// Blocks until every submitted job has finished, then reports the
    /// first captured job panic (if any) as an error, draining the rest.
    pub fn try_wait(&self) -> Result<(), WorkerPanic> {
        self.wait();
        match self.take_panics().into_iter().next() {
            Some(p) => Err(p),
            None => Ok(()),
        }
    }
}

fn worker_loop(worker: usize, shared: &Shared) {
    loop {
        let job = {
            let mut st = lock_ignore_poison(&shared.state);
            loop {
                if let Some(job) = st.queue.pop_front() {
                    break job;
                }
                if st.shutdown {
                    return;
                }
                st = shared
                    .job_ready
                    .wait(st)
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        // A pool job is a claimed work unit; the shared queue has no
        // static ownership, so pool claims never count as steals.
        ld_trace::worker_claim(worker, false);
        // Contain the job: whether it returns or unwinds, `pending` must
        // be decremented or `wait` would hang forever on a panicking job.
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(job));
        let mut st = lock_ignore_poison(&shared.state);
        if let Err(payload) = outcome {
            st.panics.push(WorkerPanic {
                message: payload_message(&payload),
                worker,
            });
        }
        st.pending -= 1;
        if st.pending == 0 {
            shared.all_done.notify_all();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.wait();
        {
            let mut st = lock_ignore_poison(&self.shared.state);
            st.shutdown = true;
        }
        self.shared.job_ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Arc;

    #[test]
    fn executes_all_jobs() {
        let pool = ThreadPool::new(4);
        let c = Arc::new(AtomicUsize::new(0));
        for _ in 0..100 {
            let c = c.clone();
            pool.execute(move || {
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait();
        assert_eq!(c.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn wait_with_no_jobs_returns() {
        let pool = ThreadPool::new(2);
        pool.wait();
        assert_eq!(pool.n_threads(), 2);
    }

    #[test]
    fn drop_joins_workers() {
        let c = Arc::new(AtomicUsize::new(0));
        {
            let pool = ThreadPool::new(3);
            for _ in 0..50 {
                let c = c.clone();
                pool.execute(move || {
                    std::thread::yield_now();
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            // drop without explicit wait
        }
        assert_eq!(c.load(Ordering::Relaxed), 50);
    }

    #[test]
    fn zero_threads_clamped() {
        let pool = ThreadPool::new(0);
        assert_eq!(pool.n_threads(), 1);
        let c = Arc::new(AtomicUsize::new(0));
        let c2 = c.clone();
        pool.execute(move || {
            c2.fetch_add(1, Ordering::Relaxed);
        });
        pool.wait();
        assert_eq!(c.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn reusable_across_waves() {
        let pool = ThreadPool::new(2);
        let c = Arc::new(AtomicUsize::new(0));
        for _wave in 0..3 {
            for _ in 0..10 {
                let c = c.clone();
                pool.execute(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                });
            }
            pool.wait();
        }
        assert_eq!(c.load(Ordering::Relaxed), 30);
    }

    #[test]
    fn jobs_submitted_from_jobs_would_deadlock_nothing() {
        // jobs only touch the queue through the Arc, not the pool handle,
        // so wait() sees a consistent pending count even under contention.
        let pool = ThreadPool::new(4);
        let c = Arc::new(AtomicUsize::new(0));
        for _ in 0..8 {
            let c = c.clone();
            pool.execute(move || {
                for _ in 0..1000 {
                    c.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        pool.wait();
        assert_eq!(c.load(Ordering::Relaxed), 8000);
    }

    #[test]
    fn panicking_job_does_not_wedge_wait() {
        let pool = ThreadPool::new(2);
        let c = Arc::new(AtomicUsize::new(0));
        for i in 0..10 {
            let c = c.clone();
            pool.execute(move || {
                if i == 3 {
                    panic!("job {i} failed");
                }
                c.fetch_add(1, Ordering::Relaxed);
            });
        }
        pool.wait(); // must return despite the panic
        assert_eq!(c.load(Ordering::Relaxed), 9);
        let panics = pool.take_panics();
        assert_eq!(panics.len(), 1);
        assert_eq!(panics[0].message, "job 3 failed");
        // pool is still usable after a panic
        let c2 = c.clone();
        pool.execute(move || {
            c2.fetch_add(1, Ordering::Relaxed);
        });
        pool.wait();
        assert_eq!(c.load(Ordering::Relaxed), 10);
        assert!(pool.take_panics().is_empty());
    }

    #[test]
    fn try_wait_surfaces_first_panic() {
        let pool = ThreadPool::new(1);
        pool.execute(|| panic!("first"));
        pool.execute(|| panic!("second"));
        let err = pool.try_wait().unwrap_err();
        assert_eq!(err.message, "first");
        // the second panic was drained with the first
        assert!(pool.take_panics().is_empty());
        pool.execute(|| {});
        assert!(pool.try_wait().is_ok());
    }
}
