//! Worker-panic containment.
//!
//! Long-running batch scans (the production north-star) cannot afford a
//! single panicking worker taking the whole process down — or worse,
//! wedging a join forever. Every team/loop primitive in this crate has a
//! `try_` variant that wraps worker closures in [`std::panic::catch_unwind`]
//! and surfaces the **first** panic as a typed [`WorkerPanic`] with its
//! payload message preserved; the remaining workers drain via a shared
//! cancellation flag, so the fork-join always completes.

use std::any::Any;
use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

/// The boxed payload a panicking thread leaves behind.
pub(crate) type Payload = Box<dyn Any + Send + 'static>;

/// A worker thread panicked inside a parallel region.
///
/// Carries the panic payload rendered as a string (the argument of the
/// `panic!` that fired, when it was a `&str` or `String`) plus the logical
/// worker id that observed it first.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct WorkerPanic {
    /// Rendered panic payload ("worker panicked" when the payload was not
    /// a string).
    pub message: String,
    /// Logical id of the worker whose panic was captured first.
    pub worker: usize,
}

impl WorkerPanic {
    /// Builds from a captured payload.
    pub(crate) fn from_payload(worker: usize, payload: &Payload) -> Self {
        Self {
            message: payload_message(payload),
            worker,
        }
    }
}

impl fmt::Display for WorkerPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "worker {} panicked: {}", self.worker, self.message)
    }
}

impl std::error::Error for WorkerPanic {}

/// Renders a panic payload into a human-readable message.
pub(crate) fn payload_message(payload: &Payload) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "worker panicked (non-string payload)".to_string()
    }
}

/// Shared first-panic slot + cancellation flag for one parallel region.
///
/// Workers record the first panic they observe and raise the cancellation
/// flag; dynamically-scheduled loops poll [`PanicTrap::cancelled`] before
/// grabbing their next chunk, so a panic drains the region promptly
/// instead of letting the surviving workers finish the whole iteration
/// space (or, with a poisoned queue, hang).
pub(crate) struct PanicTrap {
    cancel: AtomicBool,
    first: Mutex<Option<(usize, Payload)>>,
}

impl PanicTrap {
    pub(crate) fn new() -> Self {
        Self {
            cancel: AtomicBool::new(false),
            first: Mutex::new(None),
        }
    }

    /// True once any worker has panicked.
    #[inline]
    pub(crate) fn cancelled(&self) -> bool {
        self.cancel.load(Ordering::Relaxed)
    }

    /// Records a panic (first writer wins) and raises the cancel flag.
    pub(crate) fn record(&self, worker: usize, payload: Payload) {
        self.cancel.store(true, Ordering::Relaxed);
        let mut slot = lock_ignore_poison(&self.first);
        if slot.is_none() {
            *slot = Some((worker, payload));
        }
    }

    /// Runs `f`, trapping any unwind into the shared slot. Returns `true`
    /// if `f` completed without panicking.
    #[inline]
    pub(crate) fn run(&self, worker: usize, f: impl FnOnce()) -> bool {
        match std::panic::catch_unwind(std::panic::AssertUnwindSafe(f)) {
            Ok(()) => true,
            Err(payload) => {
                self.record(worker, payload);
                false
            }
        }
    }

    /// Consumes the trap, yielding the first captured panic (if any).
    pub(crate) fn into_result(self) -> Result<(), (usize, Payload)> {
        match self
            .first
            .into_inner()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
        {
            Some(hit) => Err(hit),
            None => Ok(()),
        }
    }
}

/// Locks a mutex, recovering the guard even if a previous holder panicked
/// (our critical sections never leave shared state inconsistent).
#[inline]
pub(crate) fn lock_ignore_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}
