//! # ld-parallel — threading substrate for the LD kernels
//!
//! The paper parallelizes its GEMM-based LD the BLIS way: the macro loops
//! around the micro-kernel are partitioned across cores, each thread packing
//! and computing an independent slab of the output (Tables I–III, Fig. 5).
//! This crate provides the small, dependency-light machinery for that:
//!
//! * [`run_team`] — fork-join execution of a closure on `n` logical workers
//!   using `std::thread::scope` (the calling thread doubles as worker 0, so
//!   a team of 1 runs inline with zero overhead);
//! * [`parallel_for`] / [`parallel_for_dynamic`] — data-parallel loops over
//!   index ranges with static (even slabs) or dynamic (atomic chunk
//!   grabbing) scheduling;
//! * [`partition`] — range-splitting helpers, including the triangle-aware
//!   splitter that balances the `N(N+1)/2` pair workload of the symmetric
//!   `GᵀG` (SYRK) driver;
//! * [`ThreadPool`] — a persistent channel-fed pool for coarse `'static`
//!   jobs (used by the benchmark harness to overlap dataset generation);
//! * [`Backoff`] — capped exponential retry delays with deterministic
//!   equal jitter, shared by the `run-sharded` supervisor and the
//!   `ld-serve` client harness so simultaneous retries decorrelate.
//!
//! Everything here guarantees data-race freedom through the type system:
//! scoped threads borrow, the pool owns.
//!
//! ## Panic containment
//!
//! Every primitive has a `try_` variant ([`try_run_team`],
//! [`try_parallel_for`], [`try_parallel_for_dynamic`],
//! [`try_parallel_for_dynamic_init`], [`ThreadPool::try_wait`]) that wraps
//! worker closures in `catch_unwind` and surfaces the first worker panic as
//! a typed [`WorkerPanic`] instead of unwinding the caller. Remaining
//! workers drain via a shared cancellation flag, so the fork-join always
//! completes — a single bad row in a long batch scan aborts the region, not
//! the process. The infallible entry points keep their historical behavior
//! (the panic is re-raised on the calling thread).
//!
//! ## Cooperative cancellation
//!
//! The same flag that drains panicking regions is exposed as a public,
//! shareable [`CancelToken`] (with hierarchical [`CancelToken::child`]
//! tokens and a monotonic [`Deadline`] companion). The `_ctl` loop
//! variants ([`try_parallel_for_dynamic_ctl`],
//! [`try_parallel_for_dynamic_init_ctl`]) poll a token **before every
//! chunk grab**: a tripped token stops the scheduler from handing out
//! further chunks, so the region drains at the next chunk boundary —
//! never mid-chunk — and the join still completes. The loop reports
//! whether it was cut short via [`LoopOutcome`].

#![warn(missing_docs)]

mod backoff;
mod cancel;
mod panic;
pub mod partition;
mod pool;
mod team;

pub use backoff::Backoff;
pub use cancel::{CancelToken, Deadline};
pub use panic::WorkerPanic;
pub use partition::{
    even_ranges, triangle_ranges, triangle_row_ranges, triangle_row_weight, triangle_weight,
};
pub use pool::ThreadPool;
pub use team::{
    available_threads, parallel_for, parallel_for_dynamic, parallel_for_dynamic_init, run_team,
    scheduler_grain, try_parallel_for, try_parallel_for_dynamic, try_parallel_for_dynamic_ctl,
    try_parallel_for_dynamic_init, try_parallel_for_dynamic_init_ctl, try_run_team, LoopOutcome,
};
