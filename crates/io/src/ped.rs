//! PLINK text formats: `.ped` (genotypes) + `.map` (variants).
//!
//! The original PLINK interchange format — verbose but universal. Each
//! `.ped` row is one individual: six metadata columns (FID IID PAT MAT SEX
//! PHENO) followed by **two allele columns per variant** (`A C G T` or `0`
//! for missing). The `.map` file lists the variants (CHR ID CM BP).
//! Genotypes convert to the 2-bit [`GenotypeMatrix`] by mapping each
//! variant's first-seen allele to A1.

use crate::bed::BimRecord;
use crate::limits::LineReader;
use crate::{IoError, Limits};
use ld_bitmat::{Genotype, GenotypeMatrix};
use std::collections::HashSet;
use std::io::{BufRead, Write};

/// One `.ped` row's metadata (the first six columns).
#[derive(Clone, Debug, PartialEq)]
pub struct PedIndividual {
    /// Family ID.
    pub fid: String,
    /// Individual ID.
    pub iid: String,
    /// Paternal ID.
    pub father: String,
    /// Maternal ID.
    pub mother: String,
    /// Sex code.
    pub sex: u8,
    /// Phenotype column.
    pub phenotype: String,
}

/// Parsed `.ped` content: metadata + genotype matrix + the allele pair
/// (A1, A2) chosen per variant.
#[derive(Clone, Debug)]
pub struct PedData {
    /// One entry per individual, `.ped` row order.
    pub individuals: Vec<PedIndividual>,
    /// The 2-bit genotype matrix (individuals × variants).
    pub genotypes: GenotypeMatrix,
    /// `(a1, a2)` per variant; `a2` may be `'?'` for monomorphic columns.
    pub alleles: Vec<(char, char)>,
}

/// Reads a `.map` file (same column layout as `.bim` minus the alleles)
/// with default [`Limits`].
pub fn read_map<R: BufRead>(r: R) -> Result<Vec<BimRecord>, IoError> {
    read_map_with(r, &Limits::default())
}

/// Reads a `.map` file under caller-supplied hard [`Limits`] (variant
/// count capped by `max_sites`).
pub fn read_map_with<R: BufRead>(r: R, limits: &Limits) -> Result<Vec<BimRecord>, IoError> {
    let mut out = Vec::new();
    let mut lines = LineReader::new(r, "map", limits);
    while let Some((no, line)) = lines.next_line()? {
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        if out.len() >= limits.max_sites {
            return Err(IoError::limit("map", no, "site count", limits.max_sites));
        }
        let f: Vec<&str> = t.split_whitespace().collect();
        if f.len() != 4 {
            return Err(IoError::parse(
                "map",
                no,
                format!("{} columns (expected 4)", f.len()),
            ));
        }
        out.push(BimRecord {
            chrom: f[0].to_string(),
            id: f[1].to_string(),
            cm: f[2]
                .parse()
                .map_err(|_| IoError::parse("map", no, "invalid cM"))?,
            pos: f[3]
                .parse()
                .map_err(|_| IoError::parse("map", no, "invalid position"))?,
            a1: "?".into(),
            a2: "?".into(),
        });
    }
    Ok(out)
}

/// Writes a `.map` file.
pub fn write_map<W: Write>(mut w: W, records: &[BimRecord]) -> Result<(), IoError> {
    for r in records {
        writeln!(w, "{}\t{}\t{}\t{}", r.chrom, r.id, r.cm, r.pos)?;
    }
    Ok(())
}

/// Reads a `.ped` stream with `n_snps` variants per row, under default
/// [`Limits`].
pub fn read_ped<R: BufRead>(r: R, n_snps: usize) -> Result<PedData, IoError> {
    read_ped_with(r, n_snps, &Limits::default())
}

/// Reads a `.ped` stream under caller-supplied hard [`Limits`]: the
/// declared variant count and the individual-row count are capped, and a
/// repeated `(FID, IID)` pair is reported as a located
/// [`IoError::DuplicateSample`].
pub fn read_ped_with<R: BufRead>(r: R, n_snps: usize, limits: &Limits) -> Result<PedData, IoError> {
    if n_snps > limits.max_sites {
        return Err(IoError::limit("ped", 0, "site count", limits.max_sites));
    }
    let mut individuals: Vec<PedIndividual> = Vec::new();
    let mut geno_rows: Vec<Vec<(char, char)>> = Vec::new();
    let mut seen: HashSet<(String, String)> = HashSet::new();
    let mut lines = LineReader::new(r, "ped", limits);
    while let Some((no, line)) = lines.next_line()? {
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        if individuals.len() >= limits.max_samples {
            return Err(IoError::limit(
                "ped",
                no,
                "sample count",
                limits.max_samples,
            ));
        }
        let f: Vec<&str> = t.split_whitespace().collect();
        if f.len() != 6 + 2 * n_snps {
            return Err(IoError::parse(
                "ped",
                no,
                format!(
                    "{} columns (expected {} for {} variants)",
                    f.len(),
                    6 + 2 * n_snps,
                    n_snps
                ),
            ));
        }
        if !seen.insert((f[0].to_string(), f[1].to_string())) {
            return Err(IoError::DuplicateSample {
                format: "ped",
                line: no,
                name: format!("{} {}", f[0], f[1]),
            });
        }
        individuals.push(PedIndividual {
            fid: f[0].into(),
            iid: f[1].into(),
            father: f[2].into(),
            mother: f[3].into(),
            sex: f[4].parse().unwrap_or(0),
            phenotype: f[5].into(),
        });
        let mut row = Vec::with_capacity(n_snps);
        for v in 0..n_snps {
            let a = parse_allele(f[6 + 2 * v], no)?;
            let b = parse_allele(f[7 + 2 * v], no)?;
            row.push((a, b));
        }
        geno_rows.push(row);
    }
    // allele coding per variant: first non-missing allele seen = A1
    let n_ind = individuals.len();
    let mut alleles: Vec<(char, char)> = vec![('?', '?'); n_snps];
    for row in &geno_rows {
        for (v, &(a, b)) in row.iter().enumerate() {
            for c in [a, b] {
                if c == '0' {
                    continue;
                }
                let slot = &mut alleles[v];
                if slot.0 == '?' {
                    slot.0 = c;
                } else if slot.1 == '?' && c != slot.0 {
                    slot.1 = c;
                } else if c != slot.0 && c != slot.1 {
                    return Err(IoError::parse(
                        "ped",
                        0,
                        format!("variant {v} has more than two alleles"),
                    ));
                }
            }
        }
    }
    let mut g = GenotypeMatrix::all_missing(n_ind, n_snps);
    for (i, row) in geno_rows.iter().enumerate() {
        for (v, &(a, b)) in row.iter().enumerate() {
            let (a1, _) = alleles[v];
            let gt = if a == '0' || b == '0' {
                Genotype::Missing
            } else {
                Genotype::from_haplotypes(a == a1, b == a1)
            };
            g.set(i, v, gt);
        }
    }
    Ok(PedData {
        individuals,
        genotypes: g,
        alleles,
    })
}

fn parse_allele(s: &str, line: usize) -> Result<char, IoError> {
    let mut chars = s.chars();
    match (chars.next(), chars.next()) {
        (Some(c), None) if matches!(c, 'A' | 'C' | 'G' | 'T' | 'a' | 'c' | 'g' | 't' | '0') => {
            Ok(c.to_ascii_uppercase())
        }
        _ => Err(IoError::parse("ped", line, format!("invalid allele '{s}'"))),
    }
}

/// Writes a `.ped` stream from a genotype matrix and per-variant alleles.
pub fn write_ped<W: Write>(
    mut w: W,
    individuals: &[PedIndividual],
    g: &GenotypeMatrix,
    alleles: &[(char, char)],
) -> Result<(), IoError> {
    assert_eq!(
        individuals.len(),
        g.n_individuals(),
        "metadata/matrix row mismatch"
    );
    assert_eq!(
        alleles.len(),
        g.n_snps(),
        "allele list must cover every variant"
    );
    for (i, ind) in individuals.iter().enumerate() {
        write!(
            w,
            "{}\t{}\t{}\t{}\t{}\t{}",
            ind.fid, ind.iid, ind.father, ind.mother, ind.sex, ind.phenotype
        )?;
        for (v, &(a1, a2)) in alleles.iter().enumerate().take(g.n_snps()) {
            let a2 = if a2 == '?' { a1 } else { a2 };
            let (x, y) = match g.get(i, v) {
                Genotype::HomA1 => (a1, a1),
                Genotype::Het => (a1, a2),
                Genotype::HomA2 => (a2, a2),
                Genotype::Missing => ('0', '0'),
            };
            write!(w, "\t{x}\t{y}")?;
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Default `.ped` metadata for simulated cohorts.
pub fn synthetic_individuals(n: usize) -> Vec<PedIndividual> {
    (0..n)
        .map(|i| PedIndividual {
            fid: format!("F{i}"),
            iid: format!("I{i}"),
            father: "0".into(),
            mother: "0".into(),
            sex: 0,
            phenotype: "-9".into(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const PED: &str = "F0 I0 0 0 1 -9 A A G T\nF1 I1 0 0 2 -9 A C T T\nF2 I2 0 0 0 -9 C C 0 0\n";

    #[test]
    fn parses_genotypes_and_alleles() {
        let d = read_ped(PED.as_bytes(), 2).unwrap();
        assert_eq!(d.individuals.len(), 3);
        assert_eq!(d.individuals[1].sex, 2);
        // variant 0: alleles A (first seen), C
        assert_eq!(d.alleles[0], ('A', 'C'));
        assert_eq!(d.genotypes.get(0, 0), Genotype::HomA1); // A A
        assert_eq!(d.genotypes.get(1, 0), Genotype::Het); // A C
        assert_eq!(d.genotypes.get(2, 0), Genotype::HomA2); // C C
                                                            // variant 1: alleles G, T; I2 missing
        assert_eq!(d.alleles[1], ('G', 'T'));
        assert_eq!(d.genotypes.get(0, 1), Genotype::Het); // G T
        assert_eq!(d.genotypes.get(1, 1), Genotype::HomA2); // T T
        assert_eq!(d.genotypes.get(2, 1), Genotype::Missing);
    }

    #[test]
    fn rejects_malformed_rows() {
        assert!(read_ped("F0 I0 0 0 1 -9 A\n".as_bytes(), 1).is_err()); // odd allele count
        assert!(read_ped("F0 I0 0 0 1 -9 A X\n".as_bytes(), 1).is_err()); // bad allele
        let tri = "F0 I0 0 0 1 -9 A A\nF1 I1 0 0 1 -9 C C\nF2 I2 0 0 1 -9 G G\n";
        assert!(read_ped(tri.as_bytes(), 1).is_err()); // three alleles
    }

    #[test]
    fn rejects_duplicate_individuals() {
        let dup = "F0 I0 0 0 1 -9 A A\nF0 I0 0 0 1 -9 A C\n";
        let err = read_ped(dup.as_bytes(), 1).unwrap_err();
        assert!(
            matches!(err, IoError::DuplicateSample { line: 2, .. }),
            "{err}"
        );
    }

    #[test]
    fn enforces_limits() {
        let limits = Limits::default().max_samples(2);
        let err = read_ped_with(PED.as_bytes(), 2, &limits).unwrap_err();
        assert!(matches!(err, IoError::LimitExceeded { .. }), "{err}");
        let limits = Limits::default().max_sites(1);
        let err = read_ped_with(PED.as_bytes(), 2, &limits).unwrap_err();
        assert!(matches!(err, IoError::LimitExceeded { .. }), "{err}");
        let limits = Limits::default().max_sites(3);
        let err =
            read_map_with("1 a 0 1\n1 b 0 2\n1 c 0 3\n1 d 0 4\n".as_bytes(), &limits).unwrap_err();
        assert!(matches!(err, IoError::LimitExceeded { .. }), "{err}");
    }

    #[test]
    fn round_trip() {
        let d = read_ped(PED.as_bytes(), 2).unwrap();
        let mut buf = Vec::new();
        write_ped(&mut buf, &d.individuals, &d.genotypes, &d.alleles).unwrap();
        let back = read_ped(buf.as_slice(), 2).unwrap();
        assert_eq!(back.individuals, d.individuals);
        assert_eq!(back.alleles, d.alleles);
        for i in 0..3 {
            for v in 0..2 {
                assert_eq!(back.genotypes.get(i, v), d.genotypes.get(i, v), "({i},{v})");
            }
        }
    }

    #[test]
    fn map_round_trip() {
        let map = "1 snp0 0 1000\n1 snp1 0 2000\n";
        let recs = read_map(map.as_bytes()).unwrap();
        assert_eq!(recs.len(), 2);
        assert_eq!(recs[1].pos, 2000);
        let mut buf = Vec::new();
        write_map(&mut buf, &recs).unwrap();
        let back = read_map(buf.as_slice()).unwrap();
        assert_eq!(back, recs);
        assert!(read_map("1 snp0 0\n".as_bytes()).is_err());
    }

    #[test]
    fn synthetic_metadata_shape() {
        let inds = synthetic_individuals(5);
        assert_eq!(inds.len(), 5);
        assert_eq!(inds[4].iid, "I4");
    }
}
