//! FASTA multiple-sequence alignments.
//!
//! The paper's workflow (§I) starts from an MSA: reads mapped to a
//! reference, SNP calling on the variable columns. This module parses
//! aligned FASTA, extracts the variable sites, and produces either
//!
//! * site-major character columns — the input of the finite-sites
//!   machinery (`ld-ext`'s `NucleotideMatrix`), gaps and all, or
//! * a biallelic 0/1 [`BitMatrix`] (minor allele = derived) with the
//!   monomorphic and >2-state sites dropped — the ISM pipeline's input.

use crate::limits::LineReader;
use crate::{IoError, Limits};
use ld_bitmat::{BitMatrix, BitMatrixBuilder};
use std::io::{BufRead, Write};

/// One FASTA record.
#[derive(Clone, Debug, PartialEq)]
pub struct FastaRecord {
    /// Header line without the leading `>`.
    pub id: String,
    /// Sequence characters (upper-cased).
    pub seq: String,
}

/// Parses FASTA records (multi-line sequences supported) with default
/// [`Limits`].
pub fn read_fasta<R: BufRead>(r: R) -> Result<Vec<FastaRecord>, IoError> {
    read_fasta_with(r, &Limits::default())
}

/// Parses FASTA records under caller-supplied hard [`Limits`]: the record
/// count is capped by `max_samples` and each sequence's length by
/// `max_sites` (alignment columns), so a hostile stream cannot grow a
/// single `String` without bound.
pub fn read_fasta_with<R: BufRead>(r: R, limits: &Limits) -> Result<Vec<FastaRecord>, IoError> {
    let mut out: Vec<FastaRecord> = Vec::new();
    let mut lines = LineReader::new(r, "fasta", limits);
    while let Some((no, line)) = lines.next_line()? {
        let t = line.trim();
        if t.is_empty() || t.starts_with(';') {
            continue;
        }
        if let Some(id) = t.strip_prefix('>') {
            if out.len() >= limits.max_samples {
                return Err(IoError::limit(
                    "fasta",
                    no,
                    "sample count",
                    limits.max_samples,
                ));
            }
            out.push(FastaRecord {
                id: id.trim().to_string(),
                seq: String::new(),
            });
        } else {
            let Some(cur) = out.last_mut() else {
                return Err(IoError::parse(
                    "fasta",
                    no,
                    "sequence data before any '>' header",
                ));
            };
            if cur.seq.len() + t.len() > limits.max_sites {
                return Err(IoError::limit("fasta", no, "site count", limits.max_sites));
            }
            cur.seq.push_str(&t.to_ascii_uppercase());
        }
    }
    Ok(out)
}

/// Writes FASTA records, wrapping sequences at 70 columns.
pub fn write_fasta<W: Write>(mut w: W, records: &[FastaRecord]) -> Result<(), IoError> {
    for r in records {
        writeln!(w, ">{}", r.id)?;
        for chunk in r.seq.as_bytes().chunks(70) {
            w.write_all(chunk)?;
            writeln!(w)?;
        }
    }
    Ok(())
}

/// An alignment: equal-length sequences.
#[derive(Clone, Debug)]
pub struct Alignment {
    records: Vec<FastaRecord>,
    length: usize,
}

impl Alignment {
    /// Validates that all records share one length.
    pub fn new(records: Vec<FastaRecord>) -> Result<Self, IoError> {
        let length = records.first().map(|r| r.seq.len()).unwrap_or(0);
        for (i, r) in records.iter().enumerate() {
            if r.seq.len() != length {
                return Err(IoError::parse(
                    "fasta",
                    0,
                    format!(
                        "sequence {} ('{}') has length {} but the alignment is {} long",
                        i + 1,
                        r.id,
                        r.seq.len(),
                        length
                    ),
                ));
            }
        }
        Ok(Self { records, length })
    }

    /// Number of sequences.
    pub fn n_sequences(&self) -> usize {
        self.records.len()
    }

    /// Alignment length (columns).
    pub fn length(&self) -> usize {
        self.length
    }

    /// The records.
    pub fn records(&self) -> &[FastaRecord] {
        &self.records
    }

    /// Column `j` as characters, one per sequence.
    pub fn column(&self, j: usize) -> Vec<char> {
        self.records
            .iter()
            .map(|r| r.seq.as_bytes()[j] as char)
            .collect()
    }

    /// Indices of *variable* columns (≥ 2 distinct A/C/G/T states).
    pub fn variable_sites(&self) -> Vec<usize> {
        (0..self.length)
            .filter(|&j| self.distinct_states(j) >= 2)
            .collect()
    }

    fn distinct_states(&self, j: usize) -> usize {
        let mut seen = [false; 4];
        for r in &self.records {
            match r.seq.as_bytes()[j] as char {
                'A' => seen[0] = true,
                'C' => seen[1] = true,
                'G' => seen[2] = true,
                'T' | 'U' => seen[3] = true,
                _ => {}
            }
        }
        seen.iter().filter(|&&s| s).count()
    }

    /// Site-major character columns of the variable sites — feed these to
    /// `ld_ext::fsm::NucleotideMatrix::from_site_columns`.
    pub fn variable_columns(&self) -> Vec<Vec<char>> {
        self.variable_sites()
            .iter()
            .map(|&j| self.column(j))
            .collect()
    }

    /// Extracts the strictly biallelic sites as a 0/1 matrix (set bit =
    /// minor allele; gaps/ambiguity make a site non-biallelic only if they
    /// leave < 2 states, but any sequence with a non-ACGT char at a kept
    /// site is coded 0 — use the FSM path when gaps matter).
    /// Returns the matrix and the kept column indices.
    pub fn to_biallelic_matrix(&self) -> (BitMatrix, Vec<usize>) {
        let n = self.n_sequences();
        let mut kept = Vec::new();
        let mut b = BitMatrixBuilder::new(n);
        for j in 0..self.length {
            if self.distinct_states(j) != 2 {
                continue;
            }
            let col = self.column(j);
            // identify the two states and their counts
            let mut states: Vec<(char, usize)> = Vec::new();
            for &c in &col {
                if matches!(c, 'A' | 'C' | 'G' | 'T' | 'U') {
                    match states.iter_mut().find(|(s, _)| *s == c) {
                        Some((_, k)) => *k += 1,
                        None => states.push((c, 1)),
                    }
                }
            }
            debug_assert_eq!(states.len(), 2);
            let minor = if states[0].1 <= states[1].1 {
                states[0].0
            } else {
                states[1].0
            };
            match b.push_snp_bits(col.iter().map(|&c| c == minor)) {
                // `col` always has exactly `n` entries, so the builder
                // cannot reject it; keep the arm explicit rather than
                // unwrapping so the invariant is visible.
                Ok(()) => kept.push(j),
                Err(e) => unreachable!("column length equals sample count: {e}"),
            }
        }
        (b.finish(), kept)
    }
}

/// Reads an alignment from a FASTA stream.
pub fn read_alignment<R: BufRead>(r: R) -> Result<Alignment, IoError> {
    Alignment::new(read_fasta(r)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    const ALN: &str = ">s1\nACGTAC\n>s2\nACTTAC\n>s3 description\nACTTCC\n>s4\nAC-TAC\n";

    #[test]
    fn parses_records_and_headers() {
        let recs = read_fasta(ALN.as_bytes()).unwrap();
        assert_eq!(recs.len(), 4);
        assert_eq!(recs[2].id, "s3 description");
        assert_eq!(recs[0].seq, "ACGTAC");
    }

    #[test]
    fn multiline_sequences_concatenate() {
        let recs = read_fasta(">x\nACG\nTAC\n>y\nAAA\nAAA\n".as_bytes()).unwrap();
        assert_eq!(recs[0].seq, "ACGTAC");
        assert_eq!(recs[1].seq, "AAAAAA");
    }

    #[test]
    fn lowercase_is_upcased_and_garbage_rejected() {
        let recs = read_fasta(">x\nacgt\n".as_bytes()).unwrap();
        assert_eq!(recs[0].seq, "ACGT");
        assert!(read_fasta("ACGT\n".as_bytes()).is_err());
    }

    #[test]
    fn alignment_checks_lengths() {
        assert!(read_alignment(ALN.as_bytes()).is_ok());
        assert!(read_alignment(">a\nACGT\n>b\nAC\n".as_bytes()).is_err());
    }

    #[test]
    fn variable_sites_found() {
        let aln = read_alignment(ALN.as_bytes()).unwrap();
        // cols: 0 A..A const; 1 C..C const; 2 G/T/T/- two states; 3 T const;
        // 4 A/A/C/A two states; 5 C const
        assert_eq!(aln.variable_sites(), vec![2, 4]);
        assert_eq!(aln.variable_columns().len(), 2);
        assert_eq!(aln.column(2), vec!['G', 'T', 'T', '-']);
    }

    #[test]
    fn biallelic_extraction() {
        let aln = read_alignment(ALN.as_bytes()).unwrap();
        let (m, kept) = aln.to_biallelic_matrix();
        assert_eq!(kept, vec![2, 4]);
        assert_eq!(m.n_samples(), 4);
        assert_eq!(m.n_snps(), 2);
        // site 2: G is minor (1 G vs 2 T) -> s1 set
        assert!(m.get(0, 0));
        assert!(!m.get(1, 0) && !m.get(2, 0) && !m.get(3, 0));
        // site 4: C minor -> s3 set
        assert!(m.get(2, 1));
        assert_eq!(m.ones_in_snp(1), 1);
    }

    #[test]
    fn round_trip() {
        let recs = read_fasta(ALN.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_fasta(&mut buf, &recs).unwrap();
        let back = read_fasta(buf.as_slice()).unwrap();
        assert_eq!(back, recs);
    }

    #[test]
    fn empty_alignment() {
        let aln = read_alignment("".as_bytes()).unwrap();
        assert_eq!(aln.n_sequences(), 0);
        assert_eq!(aln.length(), 0);
        assert!(aln.variable_sites().is_empty());
    }
}
