//! Atomic file writes: temp file + fsync + rename.
//!
//! A crash (or a tripped deadline, or a SIGINT) halfway through a plain
//! `File::create` write leaves a truncated file under the *final* name —
//! indistinguishable from a complete one until something parses it. Every
//! durable artifact this workspace produces (LD matrices, pair tables,
//! bench metrics, checkpoints) therefore goes through one audited helper:
//!
//! 1. write the full contents to a hidden sibling
//!    (`.<name>.tmp.<pid>` in the same directory, so the rename cannot
//!    cross filesystems),
//! 2. `fsync` the temp file (contents are durable before the name flips),
//! 3. `rename` it over the destination — atomic on POSIX: readers see
//!    either the old file or the complete new one, never a prefix.
//!
//! On any failure the temp file is removed (best-effort) and the
//! destination is untouched.

use std::fs::{self, File};
use std::io::{self, BufWriter, Write};
use std::path::{Path, PathBuf};

/// The hidden temp-file sibling used for the staged write.
fn temp_sibling(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "out".to_owned());
    let tmp = format!(".{name}.tmp.{}", std::process::id());
    match path.parent() {
        Some(dir) if !dir.as_os_str().is_empty() => dir.join(tmp),
        _ => PathBuf::from(tmp),
    }
}

/// Writes `path` atomically through `fill`, which receives a buffered
/// writer to the staged temp file. The destination appears (complete and
/// fsynced) only after `fill` and the flush both succeed.
pub fn write_atomic_with<F>(path: impl AsRef<Path>, fill: F) -> io::Result<()>
where
    F: FnOnce(&mut BufWriter<File>) -> io::Result<()>,
{
    let path = path.as_ref();
    let tmp = temp_sibling(path);
    let result = (|| {
        let mut w = BufWriter::new(File::create(&tmp)?);
        fill(&mut w)?;
        w.flush()?;
        // Contents must be durable before the rename publishes the name:
        // rename-before-fsync can surface an empty file after a crash.
        w.get_ref().sync_all()?;
        fs::rename(&tmp, path)
    })();
    if result.is_err() {
        // Best-effort cleanup; the original destination is untouched.
        let _ = fs::remove_file(&tmp);
    }
    result
}

/// Writes `bytes` to `path` atomically (see [`write_atomic_with`]).
pub fn write_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> io::Result<()> {
    write_atomic_with(path, |w| w.write_all(bytes))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ld_atomic_{tag}_{}", std::process::id()));
        fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn writes_and_replaces() {
        let d = tmpdir("basic");
        let p = d.join("out.bin");
        write_atomic(&p, b"first").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"first");
        write_atomic(&p, b"second, longer").unwrap();
        assert_eq!(fs::read(&p).unwrap(), b"second, longer");
        // no temp litter
        let litter: Vec<_> = fs::read_dir(&d)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(litter.is_empty(), "{litter:?}");
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn failed_fill_leaves_destination_untouched() {
        let d = tmpdir("fail");
        let p = d.join("out.bin");
        write_atomic(&p, b"good").unwrap();
        let err = write_atomic_with(&p, |w| {
            w.write_all(b"partial")?;
            Err(io::Error::other("injected"))
        });
        assert!(err.is_err());
        assert_eq!(fs::read(&p).unwrap(), b"good", "destination must survive");
        let litter: Vec<_> = fs::read_dir(&d)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(litter.is_empty(), "temp must be cleaned up: {litter:?}");
        let _ = fs::remove_dir_all(&d);
    }

    #[test]
    fn temp_sibling_stays_in_parent_dir() {
        let t = temp_sibling(Path::new("/a/b/out.bin"));
        assert_eq!(t.parent(), Some(Path::new("/a/b")));
        let name = t.file_name().unwrap().to_string_lossy().into_owned();
        assert!(name.starts_with(".out.bin.tmp."), "{name}");
        // bare file name: sibling is also bare (same implicit directory)
        let bare = temp_sibling(Path::new("out.bin"));
        assert!(bare.parent().is_none() || bare.parent() == Some(Path::new("")));
    }
}
