//! Minimal VCF subset: biallelic SNVs, GT-first FORMAT.
//!
//! Handles exactly what an LD tool needs from a 1000-Genomes-style VCF:
//! the `#CHROM` header for sample names, and per-record genotype columns.
//! Haploid calls (`0`, `1`) map to one haplotype each; diploid calls
//! (`0|1`, `0/1`) are expanded into two haplotypes per sample (LD under
//! the infinite-sites model is computed over haplotypes). Missing alleles
//! (`.`) are reported in a parallel validity mask for the §VII gap-aware
//! extension.

use crate::limits::LineReader;
use crate::{IoError, Limits};
use ld_bitmat::{BitMatrix, BitMatrixBuilder, ValidityMask};
use std::collections::HashSet;
use std::io::{BufRead, Write};

/// Metadata for one VCF record (the columns LD output cares about).
#[derive(Clone, Debug, PartialEq)]
pub struct VcfSite {
    /// Chromosome name.
    pub chrom: String,
    /// 1-based position.
    pub pos: u64,
    /// Variant identifier (`.` if absent).
    pub id: String,
    /// Reference allele.
    pub reference: String,
    /// Alternate allele.
    pub alt: String,
}

/// A parsed VCF: haplotype matrix + per-site metadata + missingness mask.
#[derive(Clone, Debug)]
pub struct VcfData {
    /// Sample names from the `#CHROM` header.
    pub samples: Vec<String>,
    /// Ploidy detected from the first record (1 or 2).
    pub ploidy: usize,
    /// Haplotypes × SNPs (samples × ploidy rows).
    pub matrix: BitMatrix,
    /// Validity (non-missing) mask, same shape as `matrix`.
    pub mask: ValidityMask,
    /// Per-SNP site metadata.
    pub sites: Vec<VcfSite>,
}

/// Parses a VCF stream with default [`Limits`].
pub fn read_vcf<R: BufRead>(reader: R) -> Result<VcfData, IoError> {
    read_vcf_with(reader, &Limits::default())
}

/// Parses a VCF stream under caller-supplied hard [`Limits`]: line length,
/// sample count and site count are capped (typed
/// [`IoError::LimitExceeded`]) and duplicate sample names are rejected
/// ([`IoError::DuplicateSample`]) — a hostile or corrupt stream fails
/// with a located error instead of exhausting memory.
pub fn read_vcf_with<R: BufRead>(reader: R, limits: &Limits) -> Result<VcfData, IoError> {
    let mut samples: Option<Vec<String>> = None;
    let mut ploidy = 0usize;
    let mut sites = Vec::new();
    let mut columns: Vec<Vec<u8>> = Vec::new(); // allele per haplotype, 2 = missing
    let mut lines = LineReader::new(reader, "vcf", limits);
    while let Some((no, line)) = lines.next_line_owned()? {
        let no = no - 1; // historical 0-based convention below
        let t = line.trim_end();
        if t.is_empty() || t.starts_with("##") {
            continue;
        }
        if let Some(rest) = t.strip_prefix("#CHROM") {
            let fields: Vec<&str> = rest.split('\t').filter(|s| !s.is_empty()).collect();
            if fields.len() < 8 {
                return Err(IoError::parse("vcf", no + 1, "header too short"));
            }
            // fields: POS ID REF ALT QUAL FILTER INFO [FORMAT sample...]
            let names: Vec<String> = fields.iter().skip(8).map(|s| s.to_string()).collect();
            if names.len() > limits.max_samples {
                return Err(IoError::limit(
                    "vcf",
                    no + 1,
                    "sample count",
                    limits.max_samples,
                ));
            }
            let mut seen = HashSet::with_capacity(names.len());
            for name in &names {
                if !seen.insert(name.as_str()) {
                    return Err(IoError::DuplicateSample {
                        format: "vcf",
                        line: no + 1,
                        name: name.clone(),
                    });
                }
            }
            samples = Some(names);
            continue;
        }
        if t.starts_with('#') {
            continue;
        }
        let Some(sample_names) = &samples else {
            return Err(IoError::parse("vcf", no + 1, "record before #CHROM header"));
        };
        if sites.len() >= limits.max_sites {
            return Err(IoError::limit(
                "vcf",
                no + 1,
                "site count",
                limits.max_sites,
            ));
        }
        let fields: Vec<&str> = t.split('\t').collect();
        if fields.len() < 10 {
            return Err(IoError::parse(
                "vcf",
                no + 1,
                "record has fewer than 10 columns",
            ));
        }
        let alt = fields[4];
        if alt.contains(',') {
            return Err(IoError::parse(
                "vcf",
                no + 1,
                "multi-allelic sites are not supported",
            ));
        }
        if fields[8].split(':').next().is_none_or(|f| f != "GT") {
            return Err(IoError::parse("vcf", no + 1, "FORMAT must start with GT"));
        }
        let genos = &fields[9..];
        if genos.len() != sample_names.len() {
            return Err(IoError::parse(
                "vcf",
                no + 1,
                format!(
                    "{} genotype columns for {} samples",
                    genos.len(),
                    sample_names.len()
                ),
            ));
        }
        let mut col: Vec<u8> = Vec::new();
        for (s, cell) in genos.iter().enumerate() {
            let gt = cell.split(':').next().unwrap_or(".");
            let alleles: Vec<&str> = gt.split(['|', '/']).collect();
            if ploidy == 0 {
                ploidy = alleles.len();
                if ploidy == 0 || ploidy > 2 {
                    return Err(IoError::parse(
                        "vcf",
                        no + 1,
                        format!("unsupported ploidy {ploidy}"),
                    ));
                }
            }
            if alleles.len() != ploidy {
                return Err(IoError::parse(
                    "vcf",
                    no + 1,
                    format!(
                        "sample {} has ploidy {} (expected {ploidy})",
                        s + 1,
                        alleles.len()
                    ),
                ));
            }
            for a in alleles {
                col.push(match a {
                    "0" => 0,
                    "1" => 1,
                    "." => 2,
                    other => {
                        return Err(IoError::parse(
                            "vcf",
                            no + 1,
                            format!("unsupported allele '{other}'"),
                        ))
                    }
                });
            }
        }
        sites.push(VcfSite {
            chrom: fields[0].to_string(),
            pos: fields[1]
                .parse()
                .map_err(|_| IoError::parse("vcf", no + 1, "invalid POS"))?,
            id: fields[2].to_string(),
            reference: fields[3].to_string(),
            alt: alt.to_string(),
        });
        columns.push(col);
    }
    let samples = samples.ok_or_else(|| IoError::parse("vcf", 0, "missing #CHROM header"))?;
    let n_haps = samples.len() * ploidy.max(1);
    let mut mb = BitMatrixBuilder::with_capacity(n_haps, columns.len());
    let mut vb = BitMatrixBuilder::with_capacity(n_haps, columns.len());
    for col in &columns {
        mb.push_snp_bits(col.iter().map(|&a| a == 1))?;
        vb.push_snp_bits(col.iter().map(|&a| a != 2))?;
    }
    Ok(VcfData {
        samples,
        ploidy: ploidy.max(1),
        matrix: mb.finish(),
        mask: ValidityMask::from_bitmatrix(&vb.finish()),
        sites,
    })
}

/// Writes haplotypes as a phased VCF (`ploidy` haplotypes per sample;
/// `matrix.n_samples()` must be divisible by it).
pub fn write_vcf<W: Write>(
    mut w: W,
    matrix: &BitMatrix,
    sites: &[VcfSite],
    ploidy: usize,
) -> Result<(), IoError> {
    assert_eq!(
        sites.len(),
        matrix.n_snps(),
        "one site record per SNP required"
    );
    assert!(ploidy == 1 || ploidy == 2, "ploidy must be 1 or 2");
    assert_eq!(
        matrix.n_samples() % ploidy,
        0,
        "haplotypes must divide by ploidy"
    );
    let n_ind = matrix.n_samples() / ploidy;
    writeln!(w, "##fileformat=VCFv4.2")?;
    writeln!(w, "##source=gemm-ld")?;
    write!(w, "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT")?;
    for i in 0..n_ind {
        write!(w, "\tS{i}")?;
    }
    writeln!(w)?;
    for (j, site) in sites.iter().enumerate() {
        write!(
            w,
            "{}\t{}\t{}\t{}\t{}\t.\tPASS\t.\tGT",
            site.chrom, site.pos, site.id, site.reference, site.alt
        )?;
        for i in 0..n_ind {
            if ploidy == 1 {
                write!(w, "\t{}", u8::from(matrix.get(i, j)))?;
            } else {
                write!(
                    w,
                    "\t{}|{}",
                    u8::from(matrix.get(2 * i, j)),
                    u8::from(matrix.get(2 * i + 1, j))
                )?;
            }
        }
        writeln!(w)?;
    }
    Ok(())
}

/// Generates trivial site metadata (chr1, evenly spaced) for matrices that
/// came from simulators rather than real VCFs.
pub fn synthetic_sites(n_snps: usize, spacing: u64) -> Vec<VcfSite> {
    (0..n_snps)
        .map(|j| VcfSite {
            chrom: "1".to_string(),
            pos: (j as u64 + 1) * spacing,
            id: format!("snp{j}"),
            reference: "A".to_string(),
            alt: "T".to_string(),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const DIPLOID: &str = "##fileformat=VCFv4.2\n#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\tS0\tS1\n1\t100\trs1\tA\tG\t.\tPASS\t.\tGT\t0|1\t1|1\n1\t200\trs2\tC\tT\t.\tPASS\t.\tGT:DP\t0|0:12\t.|1:3\n";

    #[test]
    fn parses_diploid_phased() {
        let v = read_vcf(DIPLOID.as_bytes()).unwrap();
        assert_eq!(v.samples, vec!["S0", "S1"]);
        assert_eq!(v.ploidy, 2);
        assert_eq!(v.matrix.n_samples(), 4); // 2 samples × 2 haplotypes
        assert_eq!(v.matrix.n_snps(), 2);
        assert!(!v.matrix.get(0, 0)); // S0 hap0 = 0
        assert!(v.matrix.get(1, 0)); // S0 hap1 = 1
        assert!(v.matrix.get(2, 0) && v.matrix.get(3, 0));
        // missing allele: S1 hap0 at snp2
        assert!(!v.mask.is_valid(2, 1));
        assert!(v.mask.is_valid(0, 1));
        assert_eq!(v.sites[1].pos, 200);
        assert_eq!(v.sites[0].id, "rs1");
    }

    #[test]
    fn parses_haploid() {
        let s = "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\tA\tB\tC\n1\t5\t.\tA\tC\t.\t.\t.\tGT\t0\t1\t1\n";
        let v = read_vcf(s.as_bytes()).unwrap();
        assert_eq!(v.ploidy, 1);
        assert_eq!(v.matrix.n_samples(), 3);
        assert_eq!(v.matrix.ones_in_snp(0), 2);
    }

    #[test]
    fn round_trip_diploid() {
        let v = read_vcf(DIPLOID.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_vcf(&mut buf, &v.matrix, &v.sites, 2).unwrap();
        let back = read_vcf(buf.as_slice()).unwrap();
        // Missing becomes reference on write (mask is separate), so only
        // compare where the original mask was valid.
        for j in 0..2 {
            for h in 0..4 {
                if v.mask.is_valid(h, j) {
                    assert_eq!(back.matrix.get(h, j), v.matrix.get(h, j), "h={h} j={j}");
                }
            }
        }
        assert_eq!(back.sites, v.sites);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_vcf("1\t2\t.\tA\tC\t.\t.\t.\tGT\t0\n".as_bytes()).is_err()); // no header
        let s = "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\tA\n1\t5\t.\tA\tC,G\t.\t.\t.\tGT\t0\n";
        assert!(read_vcf(s.as_bytes()).is_err()); // multi-allelic
        let s = "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\tA\n1\t5\t.\tA\tC\t.\t.\t.\tDP\t3\n";
        assert!(read_vcf(s.as_bytes()).is_err()); // FORMAT without GT
        let s = "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\tA\n1\t5\t.\tA\tC\t.\t.\t.\tGT\t0\t1\n";
        assert!(read_vcf(s.as_bytes()).is_err()); // too many genotype cols
        let s = "#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\tA\n1\t5\t.\tA\tC\t.\t.\t.\tGT\t2\n";
        assert!(read_vcf(s.as_bytes()).is_err()); // allele '2'
    }

    #[test]
    fn synthetic_sites_shape() {
        let sites = synthetic_sites(3, 1000);
        assert_eq!(sites.len(), 3);
        assert_eq!(sites[2].pos, 3000);
        assert_eq!(sites[1].id, "snp1");
    }

    #[test]
    fn skips_meta_and_blank_lines() {
        let s = "##meta\n\n##another\n#CHROM\tPOS\tID\tREF\tALT\tQUAL\tFILTER\tINFO\tFORMAT\tA\n\n1\t5\t.\tA\tC\t.\t.\t.\tGT\t1\n";
        let v = read_vcf(s.as_bytes()).unwrap();
        assert_eq!(v.matrix.n_snps(), 1);
    }
}
