//! Durable checkpoint persistence for interruptible LD runs.
//!
//! `ld-core` defines the checkpoint *format* ([`CheckpointState`], CRC32
//! framed, versioned) and the [`CheckpointSink`] trait its drivers write
//! through; this module supplies the filesystem implementation:
//!
//! * [`AtomicFileSink`] — every snapshot goes through
//!   [`crate::atomic::write_atomic`] (temp + fsync + rename), so the file
//!   under the checkpoint path is **always** a complete, CRC-valid image:
//!   either the previous snapshot or the new one, never a torn write. A
//!   kill -9 mid-write costs at most the work since the previous snapshot.
//! * [`read_checkpoint_path`] — loads and structurally validates a
//!   checkpoint file (magic, version, CRCs, geometry), mapping format
//!   violations to located [`IoError::Parse`] values; semantic validation
//!   against the actual input happens later, inside the engine's resume.

use crate::atomic::write_atomic;
use crate::IoError;
use ld_core::{CheckpointSink, CheckpointState};
use std::path::{Path, PathBuf};

/// A [`CheckpointSink`] writing each snapshot atomically to one path.
#[derive(Debug, Clone)]
pub struct AtomicFileSink {
    path: PathBuf,
}

impl AtomicFileSink {
    /// A sink that (re)writes `path` on every snapshot.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        Self { path: path.into() }
    }

    /// The destination path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

impl CheckpointSink for AtomicFileSink {
    fn write_checkpoint(&self, bytes: &[u8]) -> Result<(), String> {
        write_atomic(&self.path, bytes)
            .map_err(|e| format!("cannot write checkpoint {}: {e}", self.path.display()))
    }
}

/// Reads and structurally validates a checkpoint file.
///
/// Corruption (bit flips, truncation, foreign files) comes back as a
/// located [`IoError::Parse`] carrying the core parser's byte-offset
/// diagnosis — never a panic.
pub fn read_checkpoint_path(path: impl AsRef<Path>) -> Result<CheckpointState, IoError> {
    let path = path.as_ref();
    let bytes = std::fs::read(path)?;
    CheckpointState::from_bytes(&bytes)
        .map_err(|e| IoError::parse("ckpt", 0, format!("{}: {e}", path.display())))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_core::{LdEngine, LdStats, MemorySink};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ld_ckpt_io_{tag}_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    /// A real engine-produced checkpoint round-trips through the file sink.
    #[test]
    fn file_sink_round_trips_engine_snapshot() {
        use ld_bitmat::BitMatrix;
        use ld_core::{CheckpointPlan, RunControl};
        let mut g = BitMatrix::zeros(10, 12);
        for j in 0..12 {
            for s in 0..10 {
                if (s * 7 + j * 3) % 4 == 0 {
                    g.set(s, j, true);
                }
            }
        }
        // capture a snapshot via the in-memory sink, then push the same
        // bytes through the file sink and read them back
        let mem = MemorySink::new();
        let e = LdEngine::new().threads(1).slab_rows(4);
        let ctl = RunControl::new().with_checkpoint(CheckpointPlan::new(&mem).every_slabs(1));
        e.try_stat_matrix_with(&g, LdStats::RSquared, &ctl).unwrap();
        let bytes = mem.latest().expect("at least one snapshot");

        let d = tmpdir("roundtrip");
        let p = d.join("run.ckpt");
        let sink = AtomicFileSink::new(&p);
        assert_eq!(sink.path(), p.as_path());
        sink.write_checkpoint(&bytes).unwrap();
        let state = read_checkpoint_path(&p).unwrap();
        assert_eq!(state.n_snps, 12);
        assert_eq!(state.records.len(), 3); // ceil(12/4) slabs, all done
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn unwritable_path_is_a_string_error() {
        let sink = AtomicFileSink::new("/nonexistent-dir-xyz/run.ckpt");
        let err = sink.write_checkpoint(b"abc").unwrap_err();
        assert!(err.contains("/nonexistent-dir-xyz/run.ckpt"), "{err}");
    }

    #[test]
    fn corrupt_file_is_a_located_parse_error() {
        let d = tmpdir("corrupt");
        let p = d.join("bad.ckpt");
        std::fs::write(&p, b"not a checkpoint at all").unwrap();
        let err = read_checkpoint_path(&p).unwrap_err();
        assert!(matches!(err, IoError::Parse { .. }), "{err}");
        assert!(err.to_string().contains("bad.ckpt"), "{err}");
        let _ = std::fs::remove_dir_all(&d);
    }

    #[test]
    fn missing_file_is_io_error() {
        let err = read_checkpoint_path("/nonexistent-dir-xyz/none.ckpt").unwrap_err();
        assert!(matches!(err, IoError::Io(_)), "{err}");
    }
}
