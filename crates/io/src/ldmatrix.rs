//! Binary serialization of triangle-packed LD matrices.
//!
//! Full-panel LD matrices are expensive to compute and often reused
//! (reference LD panels for summary-statistics methods ship exactly this
//! way). Format: magic `LDM1`, little-endian `u64` SNP count, then the
//! packed upper triangle as little-endian `f64` (`n(n+1)/2` values).

use crate::IoError;
use ld_core::LdMatrix;
use std::io::{Read, Write};

/// Magic bytes of the binary LD-matrix format.
pub const LDM_MAGIC: [u8; 4] = *b"LDM1";

/// Writes a matrix in `LDM1` format.
pub fn write_ld_matrix<W: Write>(mut w: W, m: &LdMatrix) -> Result<(), IoError> {
    w.write_all(&LDM_MAGIC)?;
    w.write_all(&(m.n_snps() as u64).to_le_bytes())?;
    for &v in m.packed() {
        w.write_all(&v.to_le_bytes())?;
    }
    Ok(())
}

/// Reads an `LDM1` matrix.
pub fn read_ld_matrix<R: Read>(mut r: R) -> Result<LdMatrix, IoError> {
    let mut magic = [0u8; 4];
    r.read_exact(&mut magic)?;
    if magic != LDM_MAGIC {
        return Err(IoError::parse("ldm", 0, format!("bad magic {magic:02x?}")));
    }
    let mut nb = [0u8; 8];
    r.read_exact(&mut nb)?;
    let n = u64::from_le_bytes(nb) as usize;
    // Guard against absurd headers before allocating n(n+1)/2 doubles.
    if n > 1 << 24 {
        return Err(IoError::parse(
            "ldm",
            0,
            format!("implausible SNP count {n}"),
        ));
    }
    let len = n * (n + 1) / 2;
    let mut values = vec![0.0f64; len];
    let mut buf = [0u8; 8];
    for v in values.iter_mut() {
        r.read_exact(&mut buf)
            .map_err(|e| IoError::parse("ldm", 0, format!("truncated: {e}")))?;
        *v = f64::from_le_bytes(buf);
    }
    Ok(LdMatrix::from_packed(n, values))
}

/// Writes to a file path.
pub fn write_ld_matrix_path(
    path: impl AsRef<std::path::Path>,
    m: &LdMatrix,
) -> Result<(), IoError> {
    write_ld_matrix(std::io::BufWriter::new(std::fs::File::create(path)?), m)
}

/// Reads from a file path.
pub fn read_ld_matrix_path(path: impl AsRef<std::path::Path>) -> Result<LdMatrix, IoError> {
    read_ld_matrix(std::io::BufReader::new(std::fs::File::open(path)?))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(n: usize) -> LdMatrix {
        let mut m = LdMatrix::zeros(n);
        for i in 0..n {
            for j in i..n {
                m.set(i, j, (i * 31 + j) as f64 / 100.0);
            }
        }
        m.set(0, 1, f64::NAN);
        m
    }

    #[test]
    fn round_trip_preserves_bits() {
        let m = fixture(9);
        let mut buf = Vec::new();
        write_ld_matrix(&mut buf, &m).unwrap();
        assert_eq!(buf.len(), 4 + 8 + 45 * 8);
        let back = read_ld_matrix(buf.as_slice()).unwrap();
        assert_eq!(back.n_snps(), 9);
        for (a, b) in back.packed().iter().zip(m.packed()) {
            assert_eq!(a.to_bits(), b.to_bits(), "NaN payloads included");
        }
    }

    #[test]
    fn rejects_corruption() {
        let m = fixture(4);
        let mut buf = Vec::new();
        write_ld_matrix(&mut buf, &m).unwrap();
        let mut bad = buf.clone();
        bad[0] = b'X';
        assert!(read_ld_matrix(bad.as_slice()).is_err());
        assert!(read_ld_matrix(&buf[..buf.len() - 3]).is_err()); // truncated
                                                                 // implausible header
        let mut huge = LDM_MAGIC.to_vec();
        huge.extend_from_slice(&u64::MAX.to_le_bytes());
        assert!(read_ld_matrix(huge.as_slice()).is_err());
    }

    #[test]
    fn empty_matrix() {
        let m = LdMatrix::zeros(0);
        let mut buf = Vec::new();
        write_ld_matrix(&mut buf, &m).unwrap();
        let back = read_ld_matrix(buf.as_slice()).unwrap();
        assert_eq!(back.n_snps(), 0);
    }

    #[test]
    fn path_round_trip() {
        let dir = std::env::temp_dir().join(format!("ldm_test_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("panel.ldm");
        let m = fixture(6);
        write_ld_matrix_path(&path, &m).unwrap();
        let back = read_ld_matrix_path(&path).unwrap();
        assert_eq!(back.n_snps(), 6);
        assert_eq!(back.get(2, 5), m.get(2, 5));
        std::fs::remove_dir_all(&dir).ok();
    }
}
