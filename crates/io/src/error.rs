//! Unified I/O error type.

use std::fmt;

/// Errors from parsing or writing genomic files.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input violated the format; the message says where and why.
    Parse {
        /// Format name ("ms", "vcf", "bed", ...).
        format: &'static str,
        /// 1-based line number when known (0 for binary formats).
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The input ended before the format said it would (short read).
    Truncated {
        /// Format name.
        format: &'static str,
        /// What was being read when the stream ran dry.
        what: String,
    },
    /// A hard input limit (see [`crate::Limits`]) was exceeded — the
    /// parser refuses to allocate further rather than risk OOM.
    LimitExceeded {
        /// Format name.
        format: &'static str,
        /// 1-based line number when known (0 for binary formats).
        line: usize,
        /// The limit that tripped (e.g. "line length", "sample count").
        what: &'static str,
        /// The configured ceiling.
        limit: usize,
    },
    /// The same sample identifier appeared twice in one input.
    DuplicateSample {
        /// Format name.
        format: &'static str,
        /// 1-based line number when known.
        line: usize,
        /// The offending sample name.
        name: String,
    },
    /// The parsed data was structurally inconsistent (e.g. ragged rows).
    Structure(ld_bitmat::BitMatError),
}

impl IoError {
    pub(crate) fn parse(format: &'static str, line: usize, message: impl Into<String>) -> Self {
        IoError::Parse {
            format,
            line,
            message: message.into(),
        }
    }

    pub(crate) fn truncated(format: &'static str, what: impl Into<String>) -> Self {
        IoError::Truncated {
            format,
            what: what.into(),
        }
    }

    pub(crate) fn limit(
        format: &'static str,
        line: usize,
        what: &'static str,
        limit: usize,
    ) -> Self {
        IoError::LimitExceeded {
            format,
            line,
            what,
            limit,
        }
    }
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse {
                format,
                line,
                message,
            } => {
                if *line > 0 {
                    write!(f, "{format} parse error at line {line}: {message}")
                } else {
                    write!(f, "{format} parse error: {message}")
                }
            }
            IoError::Truncated { format, what } => {
                write!(f, "{format} input truncated: {what}")
            }
            IoError::LimitExceeded {
                format,
                line,
                what,
                limit,
            } => {
                if *line > 0 {
                    write!(
                        f,
                        "{format} input exceeds {what} limit ({limit}) at line {line}"
                    )
                } else {
                    write!(f, "{format} input exceeds {what} limit ({limit})")
                }
            }
            IoError::DuplicateSample { format, line, name } => {
                if *line > 0 {
                    write!(f, "{format} duplicate sample '{name}' at line {line}")
                } else {
                    write!(f, "{format} duplicate sample '{name}'")
                }
            }
            IoError::Structure(e) => write!(f, "inconsistent data: {e}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Structure(e) => Some(e),
            IoError::Parse { .. }
            | IoError::Truncated { .. }
            | IoError::LimitExceeded { .. }
            | IoError::DuplicateSample { .. } => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<ld_bitmat::BitMatError> for IoError {
    fn from(e: ld_bitmat::BitMatError) -> Self {
        IoError::Structure(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = IoError::parse("ms", 3, "bad segsites");
        assert!(e.to_string().contains("line 3"));
        let e = IoError::parse("bed", 0, "bad magic");
        assert!(!e.to_string().contains("line"));
        let e: IoError = std::io::Error::other("boom").into();
        assert!(e.to_string().contains("boom"));
        let e: IoError = ld_bitmat::BitMatError::PaddingViolation { snp: 1 }.into();
        assert!(e.to_string().contains("SNP 1"));
    }
}
