//! Unified I/O error type.

use std::fmt;

/// Errors from parsing or writing genomic files.
#[derive(Debug)]
pub enum IoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The input violated the format; the message says where and why.
    Parse {
        /// Format name ("ms", "vcf", "bed", ...).
        format: &'static str,
        /// 1-based line number when known (0 for binary formats).
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The parsed data was structurally inconsistent (e.g. ragged rows).
    Structure(ld_bitmat::BitMatError),
}

impl IoError {
    pub(crate) fn parse(format: &'static str, line: usize, message: impl Into<String>) -> Self {
        IoError::Parse {
            format,
            line,
            message: message.into(),
        }
    }
}

impl fmt::Display for IoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IoError::Io(e) => write!(f, "i/o error: {e}"),
            IoError::Parse {
                format,
                line,
                message,
            } => {
                if *line > 0 {
                    write!(f, "{format} parse error at line {line}: {message}")
                } else {
                    write!(f, "{format} parse error: {message}")
                }
            }
            IoError::Structure(e) => write!(f, "inconsistent data: {e}"),
        }
    }
}

impl std::error::Error for IoError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IoError::Io(e) => Some(e),
            IoError::Structure(e) => Some(e),
            IoError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for IoError {
    fn from(e: std::io::Error) -> Self {
        IoError::Io(e)
    }
}

impl From<ld_bitmat::BitMatError> for IoError {
    fn from(e: ld_bitmat::BitMatError) -> Self {
        IoError::Structure(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_variants() {
        let e = IoError::parse("ms", 3, "bad segsites");
        assert!(e.to_string().contains("line 3"));
        let e = IoError::parse("bed", 0, "bad magic");
        assert!(!e.to_string().contains("line"));
        let e: IoError = std::io::Error::other("boom").into();
        assert!(e.to_string().contains("boom"));
        let e: IoError = ld_bitmat::BitMatError::PaddingViolation { snp: 1 }.into();
        assert!(e.to_string().contains("SNP 1"));
    }
}
