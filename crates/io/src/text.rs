//! Plain-text matrices and PLINK-style `--r2` pair tables.

use crate::limits::LineReader;
use crate::{IoError, Limits};
use ld_bitmat::BitMatrix;
use ld_core::LdMatrix;
use std::io::{BufRead, Write};

/// Writes a haplotype matrix as rows of `0`/`1` characters (one sample per
/// line) — the simplest interchange format, readable by R or Python in one
/// line.
pub fn write_matrix<W: Write>(mut w: W, g: &BitMatrix) -> Result<(), IoError> {
    for s in 0..g.n_samples() {
        let row: String = (0..g.n_snps())
            .map(|j| if g.get(s, j) { '1' } else { '0' })
            .collect();
        writeln!(w, "{row}")?;
    }
    Ok(())
}

/// Reads a 0/1 text matrix (rows = samples) with default [`Limits`].
pub fn read_matrix<R: BufRead>(r: R) -> Result<BitMatrix, IoError> {
    read_matrix_with(r, &Limits::default())
}

/// Reads a 0/1 text matrix under caller-supplied hard [`Limits`]: row
/// width (site count), row count (sample count) and line length are all
/// capped, so a hostile stream cannot force an unbounded allocation.
pub fn read_matrix_with<R: BufRead>(r: R, limits: &Limits) -> Result<BitMatrix, IoError> {
    let mut rows: Vec<Vec<u8>> = Vec::new();
    let mut width: Option<usize> = None;
    let mut lines = LineReader::new(r, "matrix", limits);
    while let Some((no, line)) = lines.next_line()? {
        let t = line.trim();
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        if rows.len() >= limits.max_samples {
            return Err(IoError::limit(
                "matrix",
                no,
                "sample count",
                limits.max_samples,
            ));
        }
        let row: Result<Vec<u8>, IoError> = t
            .chars()
            .filter(|c| !c.is_whitespace())
            .map(|c| match c {
                '0' => Ok(0u8),
                '1' => Ok(1u8),
                other => Err(IoError::parse(
                    "matrix",
                    no,
                    format!("invalid char '{other}'"),
                )),
            })
            .collect();
        let row = row?;
        if row.len() > limits.max_sites {
            return Err(IoError::limit("matrix", no, "site count", limits.max_sites));
        }
        if let Some(wdt) = width {
            if row.len() != wdt {
                return Err(IoError::parse(
                    "matrix",
                    no,
                    format!("row width {} != {}", row.len(), wdt),
                ));
            }
        } else {
            width = Some(row.len());
        }
        rows.push(row);
    }
    let n_snps = width.unwrap_or(0);
    Ok(BitMatrix::from_rows(rows.len(), n_snps, rows.iter())?)
}

/// One row of a PLINK-style `--r2` table.
#[derive(Clone, Debug, PartialEq)]
pub struct R2Row {
    /// Index of the first SNP.
    pub snp_a: usize,
    /// Index of the second SNP.
    pub snp_b: usize,
    /// The `r²` value.
    pub r2: f64,
}

/// Writes the pairs of an [`LdMatrix`] with `r² ≥ min_r2` in PLINK's
/// `--r2` column layout (`SNP_A SNP_B R2`, header included).
pub fn write_r2_table<W: Write>(mut w: W, m: &LdMatrix, min_r2: f64) -> Result<(), IoError> {
    writeln!(w, "SNP_A\tSNP_B\tR2")?;
    for (i, j, v) in m.iter_pairs() {
        if !v.is_nan() && v >= min_r2 {
            writeln!(w, "snp{i}\tsnp{j}\t{v:.6}")?;
        }
    }
    Ok(())
}

/// Reads a table produced by [`write_r2_table`].
pub fn read_r2_table<R: BufRead>(r: R) -> Result<Vec<R2Row>, IoError> {
    let mut out = Vec::new();
    for (no, line) in r.lines().enumerate() {
        let line = line?;
        let t = line.trim();
        if t.is_empty() || t.starts_with("SNP_A") {
            continue;
        }
        let f: Vec<&str> = t.split_whitespace().collect();
        if f.len() != 3 {
            return Err(IoError::parse("r2-table", no + 1, "expected 3 columns"));
        }
        let parse_id = |s: &str| -> Result<usize, IoError> {
            s.strip_prefix("snp")
                .and_then(|x| x.parse().ok())
                .ok_or_else(|| IoError::parse("r2-table", no + 1, format!("bad SNP id '{s}'")))
        };
        out.push(R2Row {
            snp_a: parse_id(f[0])?,
            snp_b: parse_id(f[1])?,
            r2: f[2]
                .parse()
                .map_err(|_| IoError::parse("r2-table", no + 1, "invalid r2"))?,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matrix_round_trip() {
        let g = BitMatrix::from_rows(3, 4, [[1u8, 0, 1, 0], [0, 1, 1, 0], [1, 1, 0, 1]]).unwrap();
        let mut buf = Vec::new();
        write_matrix(&mut buf, &g).unwrap();
        let back = read_matrix(buf.as_slice()).unwrap();
        assert_eq!(back, g);
    }

    #[test]
    fn matrix_skips_comments_and_blanks() {
        let s = "# header\n101\n\n011\n";
        let g = read_matrix(s.as_bytes()).unwrap();
        assert_eq!(g.n_samples(), 2);
        assert_eq!(g.n_snps(), 3);
    }

    #[test]
    fn matrix_rejects_ragged_and_garbage() {
        assert!(read_matrix("101\n10\n".as_bytes()).is_err());
        assert!(read_matrix("10x\n".as_bytes()).is_err());
    }

    #[test]
    fn empty_matrix_ok() {
        let g = read_matrix("".as_bytes()).unwrap();
        assert_eq!(g.n_samples(), 0);
        assert_eq!(g.n_snps(), 0);
    }

    #[test]
    fn r2_table_round_trip_with_threshold() {
        let mut m = LdMatrix::zeros(3);
        m.set(0, 1, 0.8);
        m.set(0, 2, 0.2);
        m.set(1, 2, f64::NAN);
        let mut buf = Vec::new();
        write_r2_table(&mut buf, &m, 0.5).unwrap();
        let rows = read_r2_table(buf.as_slice()).unwrap();
        assert_eq!(rows.len(), 1);
        assert_eq!(rows[0].snp_a, 0);
        assert_eq!(rows[0].snp_b, 1);
        assert!((rows[0].r2 - 0.8).abs() < 1e-9);
    }

    #[test]
    fn matrix_enforces_limits() {
        let limits = Limits::default().max_samples(2);
        let s = "10\n01\n11\n";
        let err = read_matrix_with(s.as_bytes(), &limits).unwrap_err();
        assert!(matches!(err, IoError::LimitExceeded { .. }), "{err}");

        let limits = Limits::default().max_sites(2);
        let err = read_matrix_with("101\n".as_bytes(), &limits).unwrap_err();
        assert!(matches!(err, IoError::LimitExceeded { .. }), "{err}");

        let limits = Limits::default().max_line_bytes(4);
        let err = read_matrix_with("10101\n".as_bytes(), &limits).unwrap_err();
        assert!(matches!(err, IoError::LimitExceeded { .. }), "{err}");
    }

    #[test]
    fn r2_table_rejects_bad_rows() {
        assert!(read_r2_table("snp0 snp1\n".as_bytes()).is_err());
        assert!(read_r2_table("a b 0.5\n".as_bytes()).is_err());
        assert!(read_r2_table("snp0 snp1 xyz\n".as_bytes()).is_err());
    }
}
