//! Hudson's `ms` output format.
//!
//! ```text
//! ms 4 2 -s 3
//! 27473 28364 1234
//!
//! //
//! segsites: 3
//! positions: 0.1043 0.2965 0.7638
//! 010
//! 110
//! 001
//! 000
//!
//! //
//! ...
//! ```
//!
//! Rows are haplotypes (samples), columns are segregating sites — exactly
//! the transpose-free orientation of the paper's genomic matrix `G` once
//! packed SNP-major.

use crate::limits::LineReader;
use crate::{IoError, Limits};
use ld_bitmat::BitMatrix;
use std::io::{BufRead, Write};

/// One `//` replicate block of an `ms` stream.
#[derive(Clone, Debug, PartialEq)]
pub struct MsReplicate {
    /// Relative positions in `[0, 1)`, one per segregating site.
    pub positions: Vec<f64>,
    /// The haplotype matrix (samples × sites).
    pub matrix: BitMatrix,
}

/// Parses every replicate of an `ms` stream with default [`Limits`].
pub fn read_ms<R: BufRead>(reader: R) -> Result<Vec<MsReplicate>, IoError> {
    read_ms_with(reader, &Limits::default())
}

/// Parses every replicate under caller-supplied hard [`Limits`]: the
/// declared `segsites` count, the haplotype-row count and the line length
/// are capped, so a corrupt header cannot trigger an unbounded
/// allocation.
pub fn read_ms_with<R: BufRead>(reader: R, limits: &Limits) -> Result<Vec<MsReplicate>, IoError> {
    let mut replicates = Vec::new();
    let mut lines = LineReader::new(reader, "ms", limits);
    // Scan to each `//` marker, then parse one block.
    let mut pending: Option<(usize, String)> = None;
    loop {
        let marker = match pending.take() {
            Some(l) => Some(l),
            None => {
                let mut found = None;
                while let Some((no, line)) = lines.next_line_owned()? {
                    if line.trim_start().starts_with("//") {
                        found = Some((no, line));
                        break;
                    }
                }
                found
            }
        };
        if marker.is_none() {
            break;
        }

        // segsites line
        let segsites = loop {
            let Some((no, line)) = lines.next_line_owned()? else {
                return Err(IoError::truncated("ms", "EOF before 'segsites:'"));
            };
            let t = line.trim();
            if t.is_empty() {
                continue;
            }
            let Some(rest) = t.strip_prefix("segsites:") else {
                return Err(IoError::parse(
                    "ms",
                    no,
                    format!("expected 'segsites:', got '{t}'"),
                ));
            };
            let n: usize = rest
                .trim()
                .parse()
                .map_err(|_| IoError::parse("ms", no, "invalid segsites count"))?;
            if n > limits.max_sites {
                return Err(IoError::limit("ms", no, "site count", limits.max_sites));
            }
            break n;
        };

        if segsites == 0 {
            replicates.push(MsReplicate {
                positions: Vec::new(),
                matrix: BitMatrix::zeros(0, 0),
            });
            continue;
        }

        // positions line
        let positions = loop {
            let Some((no, line)) = lines.next_line_owned()? else {
                return Err(IoError::truncated("ms", "EOF before 'positions:'"));
            };
            let t = line.trim();
            if t.is_empty() {
                continue;
            }
            let Some(rest) = t.strip_prefix("positions:") else {
                return Err(IoError::parse("ms", no, "expected 'positions:'"));
            };
            let pos: Result<Vec<f64>, _> = rest.split_whitespace().map(str::parse::<f64>).collect();
            let pos = pos.map_err(|_| IoError::parse("ms", no, "invalid position"))?;
            if pos.len() != segsites {
                return Err(IoError::parse(
                    "ms",
                    no,
                    format!("{} positions for {} segsites", pos.len(), segsites),
                ));
            }
            break pos;
        };

        // haplotype rows until blank line, next `//`, or EOF
        let mut rows: Vec<Vec<u8>> = Vec::new();
        while let Some((no, line)) = lines.next_line_owned()? {
            let t = line.trim();
            if t.is_empty() {
                break;
            }
            if t.starts_with("//") {
                pending = Some((no, line));
                break;
            }
            if rows.len() >= limits.max_samples {
                return Err(IoError::limit("ms", no, "sample count", limits.max_samples));
            }
            if t.len() != segsites {
                return Err(IoError::parse(
                    "ms",
                    no,
                    format!("haplotype row has {} chars, expected {}", t.len(), segsites),
                ));
            }
            let row: Result<Vec<u8>, IoError> = t
                .chars()
                .map(|c| match c {
                    '0' => Ok(0u8),
                    '1' => Ok(1u8),
                    other => Err(IoError::parse(
                        "ms",
                        no,
                        format!("invalid allele char '{other}'"),
                    )),
                })
                .collect();
            rows.push(row?);
        }
        if rows.is_empty() {
            return Err(IoError::truncated("ms", "replicate with no haplotype rows"));
        }
        let matrix = BitMatrix::from_rows(rows.len(), segsites, rows.iter())?;
        replicates.push(MsReplicate { positions, matrix });
    }
    Ok(replicates)
}

/// Parses only the first replicate (the common case for LD pipelines).
pub fn read_ms_first<R: BufRead>(reader: R) -> Result<MsReplicate, IoError> {
    read_ms(reader)?
        .into_iter()
        .next()
        .ok_or_else(|| IoError::parse("ms", 0, "no replicates found"))
}

/// Writes replicates in `ms` format (with a minimal synthetic header).
pub fn write_ms<W: Write>(mut w: W, replicates: &[MsReplicate]) -> Result<(), IoError> {
    let (n_samples, n_sites) = replicates
        .first()
        .map(|r| (r.matrix.n_samples(), r.matrix.n_snps()))
        .unwrap_or((0, 0));
    writeln!(w, "ms {} {} -s {}", n_samples, replicates.len(), n_sites)?;
    writeln!(w, "0 0 0")?;
    for rep in replicates {
        writeln!(w)?;
        writeln!(w, "//")?;
        writeln!(w, "segsites: {}", rep.matrix.n_snps())?;
        let pos: Vec<String> = rep.positions.iter().map(|p| format!("{p:.5}")).collect();
        writeln!(w, "positions: {}", pos.join(" "))?;
        for s in 0..rep.matrix.n_samples() {
            let row: String = (0..rep.matrix.n_snps())
                .map(|j| if rep.matrix.get(s, j) { '1' } else { '0' })
                .collect();
            writeln!(w, "{row}")?;
        }
    }
    Ok(())
}

/// Reads an `ms` file from disk (first replicate).
pub fn read_ms_path(path: impl AsRef<std::path::Path>) -> Result<MsReplicate, IoError> {
    let f = std::fs::File::open(path)?;
    read_ms_first(std::io::BufReader::new(f))
}

/// Writes replicates to an `ms` file on disk.
pub fn write_ms_path(
    path: impl AsRef<std::path::Path>,
    replicates: &[MsReplicate],
) -> Result<(), IoError> {
    let f = std::fs::File::create(path)?;
    write_ms(std::io::BufWriter::new(f), replicates)
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "ms 4 2 -s 3\n27473 28364 1234\n\n//\nsegsites: 3\npositions: 0.10430 0.29650 0.76380\n010\n110\n001\n000\n\n//\nsegsites: 2\npositions: 0.50000 0.60000\n01\n11\n10\n00\n";

    #[test]
    fn parses_two_replicates() {
        let reps = read_ms(SAMPLE.as_bytes()).unwrap();
        assert_eq!(reps.len(), 2);
        assert_eq!(reps[0].matrix.n_samples(), 4);
        assert_eq!(reps[0].matrix.n_snps(), 3);
        assert_eq!(reps[0].positions.len(), 3);
        assert!(reps[0].matrix.get(0, 1));
        assert!(!reps[0].matrix.get(0, 0));
        assert_eq!(reps[1].matrix.n_snps(), 2);
        assert_eq!(reps[1].matrix.ones_in_snp(0), 2);
    }

    #[test]
    fn first_helper() {
        let rep = read_ms_first(SAMPLE.as_bytes()).unwrap();
        assert_eq!(rep.matrix.n_snps(), 3);
    }

    #[test]
    fn round_trip() {
        let reps = read_ms(SAMPLE.as_bytes()).unwrap();
        let mut buf = Vec::new();
        write_ms(&mut buf, &reps).unwrap();
        let back = read_ms(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back[0].matrix, reps[0].matrix);
        assert_eq!(back[1].matrix, reps[1].matrix);
    }

    #[test]
    fn rejects_ragged_rows() {
        let bad = "//\nsegsites: 3\npositions: 0.1 0.2 0.3\n010\n11\n";
        let err = read_ms(bad.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("expected 3"));
    }

    #[test]
    fn rejects_bad_allele() {
        let bad = "//\nsegsites: 2\npositions: 0.1 0.2\n0x\n";
        assert!(read_ms(bad.as_bytes()).is_err());
    }

    #[test]
    fn rejects_position_count_mismatch() {
        let bad = "//\nsegsites: 3\npositions: 0.1 0.2\n010\n";
        assert!(read_ms(bad.as_bytes()).is_err());
    }

    #[test]
    fn empty_stream_is_empty() {
        assert!(read_ms("".as_bytes()).unwrap().is_empty());
        assert!(read_ms_first("".as_bytes()).is_err());
    }

    #[test]
    fn zero_segsites_replicate() {
        let s = "//\nsegsites: 0\n";
        let reps = read_ms(s.as_bytes()).unwrap();
        assert_eq!(reps.len(), 1);
        assert_eq!(reps[0].matrix.n_snps(), 0);
    }

    #[test]
    fn path_round_trip() {
        let dir = std::env::temp_dir().join("ld_io_ms_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("test.ms");
        let reps = read_ms(SAMPLE.as_bytes()).unwrap();
        write_ms_path(&path, &reps).unwrap();
        let back = read_ms_path(&path).unwrap();
        assert_eq!(back.matrix, reps[0].matrix);
        std::fs::remove_dir_all(&dir).ok();
    }
}
