//! The directory-backed tile store: one CRC-checked chunk file per
//! [`TileStoreMeta::chunk_file`] name plus a versioned `manifest.json`,
//! all written atomically ([`crate::atomic::write_atomic`]) so a killed
//! import never leaves a torn chunk under a final name.
//!
//! `ld-core` owns the format (chunk codec, manifest schema, integrity
//! rules — see `ld_core::tilestore`); this module only moves bytes
//! between that codec and a directory:
//!
//! * [`import_to_dir`] — streams a [`BitMatrix`] into a store directory
//!   (the `ld-cli import` subcommand's engine);
//! * [`DirTileStore`] — the read side: parses and validates the manifest
//!   on open, then serves verified chunk reads to the out-of-core
//!   drivers. Every failure names the chunk index **and file** (and the
//!   manifest byte length when the file disagrees with it), so a
//!   multi-hour run that dies on a bad sector says which file to
//!   restore.
//!
//! A chunk file is accepted only when its byte length and CRC-32 trailer
//! match the manifest entry *and* the chunk's own header pins it to this
//! store's geometry and position — a chunk transplanted from a
//! same-shaped sibling store fails the manifest CRC audit even though
//! its internal checksum is valid.

use crate::atomic::write_atomic;
use ld_bitmat::{AlignedWords, BitMatrix};
use ld_core::tilestore::{chunk_trailer_crc, decode_chunk, export_matrix};
use ld_core::{LdError, TileManifest, TileSink, TileSource, TileStoreMeta};
use std::path::{Path, PathBuf};

/// The manifest's file name inside a store directory.
pub const MANIFEST_FILE: &str = "manifest.json";

fn store_err(message: String) -> LdError {
    LdError::TileStore { message }
}

/// A [`TileSink`] that writes each chunk (and finally the manifest)
/// atomically into one directory.
struct DirSink {
    dir: PathBuf,
}

impl TileSink for DirSink {
    fn write_chunk(&mut self, index: usize, bytes: &[u8]) -> Result<(), LdError> {
        let path = self.dir.join(TileStoreMeta::chunk_file(index));
        write_atomic(&path, bytes).map_err(|e| {
            store_err(format!(
                "chunk {index}: cannot write {}: {e}",
                path.display()
            ))
        })
    }

    fn finish(&mut self, manifest_json: &str) -> Result<(), LdError> {
        let path = self.dir.join(MANIFEST_FILE);
        write_atomic(&path, manifest_json.as_bytes())
            .map_err(|e| store_err(format!("manifest: cannot write {}: {e}", path.display())))
    }
}

/// Imports `m` into `dir` as a chunked tile store (chunk files plus
/// `manifest.json`, every write atomic). The directory is created if
/// missing; existing chunk files are overwritten. Returns the store's
/// metadata (geometry + fingerprint).
pub fn import_to_dir(
    m: &BitMatrix,
    chunk_snps: usize,
    dir: impl AsRef<Path>,
) -> Result<TileStoreMeta, LdError> {
    let dir = dir.as_ref();
    std::fs::create_dir_all(dir).map_err(|e| {
        store_err(format!(
            "cannot create store directory {}: {e}",
            dir.display()
        ))
    })?;
    let mut sink = DirSink {
        dir: dir.to_path_buf(),
    };
    export_matrix(m, chunk_snps, &mut sink)
}

/// The directory-backed [`TileSource`]: a parsed, CRC-validated manifest
/// plus verified on-demand chunk reads.
#[derive(Debug)]
pub struct DirTileStore {
    dir: PathBuf,
    manifest: TileManifest,
}

impl DirTileStore {
    /// Opens the store at `dir`: reads `manifest.json` and runs the full
    /// manifest validation (schema version, payload CRC-32, geometry
    /// consistency). Chunk files are *not* touched here — each is
    /// verified on its own [`read_chunk`](TileSource::read_chunk), so
    /// opening a terabyte store is instant.
    pub fn open(dir: impl AsRef<Path>) -> Result<Self, LdError> {
        let dir = dir.as_ref().to_path_buf();
        let path = dir.join(MANIFEST_FILE);
        let text = std::fs::read_to_string(&path)
            .map_err(|e| store_err(format!("manifest: cannot read {}: {e}", path.display())))?;
        let manifest = TileManifest::from_json(&text)?;
        Ok(Self { dir, manifest })
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The validated manifest.
    pub fn manifest(&self) -> &TileManifest {
        &self.manifest
    }
}

impl TileSource for DirTileStore {
    fn meta(&self) -> &TileStoreMeta {
        &self.manifest.meta
    }

    fn read_chunk(&self, index: usize) -> Result<AlignedWords, LdError> {
        let Some(entry) = self.manifest.chunks.get(index) else {
            return Err(store_err(format!(
                "chunk {index}: not in the manifest (store has {} chunks)",
                self.manifest.chunks.len()
            )));
        };
        let path = self.dir.join(&entry.file);
        let fail = |what: String| store_err(format!("chunk {index} ({}): {what}", path.display()));
        let bytes = std::fs::read(&path).map_err(|e| fail(format!("cannot read: {e}")))?;
        if bytes.len() as u64 != entry.bytes {
            return Err(fail(format!(
                "file is {} bytes but the manifest records {} (truncated or replaced)",
                bytes.len(),
                entry.bytes
            )));
        }
        // Manifest CRC audit: ties the file to *this* manifest — the
        // chunk's own header/CRC cannot catch a chunk transplanted from
        // a different store with identical geometry.
        match chunk_trailer_crc(&bytes) {
            Some(crc) if crc == entry.crc32 => {}
            Some(crc) => {
                return Err(fail(format!(
                    "CRC-32 trailer {crc:#010x} does not match the manifest's {:#010x} \
                     (chunk from a different store, or damaged)",
                    entry.crc32
                )))
            }
            None => return Err(fail("too short to carry a CRC trailer".to_owned())),
        }
        decode_chunk(&self.manifest.meta, index, &bytes).map_err(|e| match e {
            LdError::TileStore { message } => {
                store_err(format!("{message} (file {})", path.display()))
            }
            other => other,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_core::MemoryTileStore;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("ld_tilestore_{tag}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_matrix(n_samples: usize, n_snps: usize) -> BitMatrix {
        let mut g = BitMatrix::zeros(n_samples, n_snps);
        for j in 0..n_snps {
            for s in 0..n_samples {
                if (s * 13 + j * 7) % 3 == 0 {
                    g.set(s, j, true);
                }
            }
        }
        g
    }

    /// Directory store and in-memory store produce byte-identical chunk
    /// files and manifests, and reads round-trip the matrix words.
    #[test]
    fn dir_store_matches_memory_store() {
        let g = sample_matrix(10, 23);
        let d = tmpdir("roundtrip");
        let meta = import_to_dir(&g, 7, &d).unwrap();
        let mem = MemoryTileStore::from_matrix(&g, 7).unwrap();
        let manifest_disk = std::fs::read_to_string(d.join(MANIFEST_FILE)).unwrap();
        assert_eq!(manifest_disk, mem.manifest_json());
        let store = DirTileStore::open(&d).unwrap();
        assert_eq!(store.meta(), &meta);
        assert_eq!(store.manifest().chunks.len(), meta.n_chunks());
        for c in 0..meta.n_chunks() {
            let file_bytes = std::fs::read(d.join(TileStoreMeta::chunk_file(c))).unwrap();
            assert_eq!(file_bytes, mem.chunk_bytes(c), "chunk {c} bytes differ");
            let disk = store.read_chunk(c).unwrap();
            let (s, e) = meta.chunk_span(c);
            assert_eq!(&disk[..], g.view(s, e).words(), "chunk {c} words differ");
        }
        let _ = std::fs::remove_dir_all(&d);
    }

    /// A missing chunk file is reported with its index and path.
    #[test]
    fn missing_chunk_file_is_named() {
        let g = sample_matrix(6, 10);
        let d = tmpdir("missing");
        import_to_dir(&g, 4, &d).unwrap();
        std::fs::remove_file(d.join(TileStoreMeta::chunk_file(1))).unwrap();
        let store = DirTileStore::open(&d).unwrap();
        let err = store.read_chunk(1).unwrap_err().to_string();
        assert!(err.contains("chunk 1"), "{err}");
        assert!(err.contains("chunk_000001.bin"), "{err}");
        assert!(err.contains("cannot read"), "{err}");
        let _ = std::fs::remove_dir_all(&d);
    }

    /// A truncated chunk file fails the manifest length audit, naming
    /// both sizes.
    #[test]
    fn truncated_chunk_file_is_rejected() {
        let g = sample_matrix(6, 10);
        let d = tmpdir("trunc");
        import_to_dir(&g, 4, &d).unwrap();
        let p = d.join(TileStoreMeta::chunk_file(0));
        let bytes = std::fs::read(&p).unwrap();
        std::fs::write(&p, &bytes[..bytes.len() - 1]).unwrap();
        let store = DirTileStore::open(&d).unwrap();
        let err = store.read_chunk(0).unwrap_err().to_string();
        assert!(err.contains("chunk 0"), "{err}");
        assert!(err.contains("manifest records"), "{err}");
        let _ = std::fs::remove_dir_all(&d);
    }

    /// A same-length corruption passes the size audit but fails CRC.
    #[test]
    fn flipped_byte_in_chunk_file_is_rejected() {
        let g = sample_matrix(6, 10);
        let d = tmpdir("flip");
        import_to_dir(&g, 4, &d).unwrap();
        let p = d.join(TileStoreMeta::chunk_file(2));
        let mut bytes = std::fs::read(&p).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&p, &bytes).unwrap();
        let store = DirTileStore::open(&d).unwrap();
        let err = store.read_chunk(2).unwrap_err().to_string();
        assert!(err.contains("chunk 2"), "{err}");
        assert!(err.contains("CRC-32"), "{err}");
        let _ = std::fs::remove_dir_all(&d);
    }

    /// A chunk copied from a same-shaped store with different data is
    /// caught by the manifest CRC audit.
    #[test]
    fn transplanted_chunk_is_rejected() {
        let a = sample_matrix(6, 10);
        let mut b = sample_matrix(6, 10);
        b.set(0, 0, !b.get(0, 0));
        let da = tmpdir("transplant_a");
        let db = tmpdir("transplant_b");
        import_to_dir(&a, 4, &da).unwrap();
        import_to_dir(&b, 4, &db).unwrap();
        std::fs::copy(
            db.join(TileStoreMeta::chunk_file(0)),
            da.join(TileStoreMeta::chunk_file(0)),
        )
        .unwrap();
        let store = DirTileStore::open(&da).unwrap();
        let err = store.read_chunk(0).unwrap_err().to_string();
        assert!(err.contains("does not match the manifest"), "{err}");
        let _ = std::fs::remove_dir_all(&da);
        let _ = std::fs::remove_dir_all(&db);
    }

    /// A corrupted manifest fails at open, not at first read.
    #[test]
    fn corrupt_manifest_fails_open() {
        let g = sample_matrix(6, 10);
        let d = tmpdir("badmanifest");
        import_to_dir(&g, 4, &d).unwrap();
        let p = d.join(MANIFEST_FILE);
        let mut text = std::fs::read(&p).unwrap();
        let len = text.len();
        text.truncate(len - 2);
        std::fs::write(&p, &text).unwrap();
        let err = DirTileStore::open(&d).unwrap_err().to_string();
        assert!(err.contains("manifest"), "{err}");
        let _ = std::fs::remove_dir_all(&d);
    }

    /// Opening a directory with no manifest names the path.
    #[test]
    fn missing_manifest_is_named() {
        let d = tmpdir("nomanifest");
        let err = DirTileStore::open(&d).unwrap_err().to_string();
        assert!(err.contains("manifest"), "{err}");
        assert!(err.contains("cannot read"), "{err}");
        let _ = std::fs::remove_dir_all(&d);
    }
}
