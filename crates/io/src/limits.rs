//! Hard input limits and the byte-capped line reader.
//!
//! Production batch scans feed these parsers untrusted files. Without
//! caps, a crafted (or merely corrupt) input can make `lines()` buffer a
//! gigabyte-long "line", or declare enough sites/samples to OOM the
//! process before a single genotype is validated. Every text parser in
//! this crate therefore runs behind a [`Limits`] policy (a permissive
//! default via `read_*`, caller-tuned via the `read_*_with` variants) and
//! reads lines through [`LineReader`], which refuses to buffer past the
//! configured byte cap — failures surface as located
//! [`IoError::LimitExceeded`] values, never as unbounded allocation.

use crate::IoError;
use std::io::BufRead;

/// Hard ceilings applied while parsing untrusted inputs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Limits {
    /// Longest accepted text line, in bytes (newline excluded).
    pub max_line_bytes: usize,
    /// Maximum number of SNPs/sites a single input may declare or contain.
    pub max_sites: usize,
    /// Maximum number of samples/haplotypes/individuals.
    pub max_samples: usize,
}

impl Default for Limits {
    /// Permissive production defaults: 64 MiB lines (a 10M-sample VCF row
    /// fits), 100M sites, 16M samples — far above any real dataset, low
    /// enough to stop a runaway allocation long before the OOM killer.
    fn default() -> Self {
        Self {
            max_line_bytes: 64 << 20,
            max_sites: 100_000_000,
            max_samples: 16_000_000,
        }
    }
}

impl Limits {
    /// Replaces the line-length cap.
    pub fn max_line_bytes(mut self, n: usize) -> Self {
        self.max_line_bytes = n;
        self
    }

    /// Replaces the site-count cap.
    pub fn max_sites(mut self, n: usize) -> Self {
        self.max_sites = n;
        self
    }

    /// Replaces the sample-count cap.
    pub fn max_samples(mut self, n: usize) -> Self {
        self.max_samples = n;
        self
    }
}

/// A line reader that never buffers more than the configured cap.
///
/// `BufRead::lines()` happily grows its `String` until the allocator
/// gives out; this reader pulls at most `max_line_bytes + 1` bytes per
/// line and converts an over-long line into a located
/// [`IoError::LimitExceeded`] instead.
pub(crate) struct LineReader<R> {
    inner: R,
    format: &'static str,
    max_line_bytes: usize,
    /// 1-based number of the last line returned.
    line_no: usize,
    buf: Vec<u8>,
}

impl<R: BufRead> LineReader<R> {
    pub(crate) fn new(inner: R, format: &'static str, limits: &Limits) -> Self {
        Self {
            inner,
            format,
            max_line_bytes: limits.max_line_bytes,
            line_no: 0,
            buf: Vec::new(),
        }
    }

    /// Returns the next line as `(1-based line number, contents)` with the
    /// trailing `\n`/`\r\n` stripped, `None` at EOF.
    pub(crate) fn next_line(&mut self) -> Result<Option<(usize, &str)>, IoError> {
        self.buf.clear();
        // Read through a Take so a missing newline cannot buffer the whole
        // stream: one extra byte past the cap is enough to detect overrun.
        let cap = self.max_line_bytes as u64 + 1;
        let n = <&mut R as std::io::Read>::take(&mut self.inner, cap)
            .read_until(b'\n', &mut self.buf)?;
        if n == 0 {
            return Ok(None);
        }
        // Per-parser observability: one line, n raw bytes (newline
        // included) attributed to this reader's format tag. No-op unless
        // the `metrics` feature is on.
        ld_trace::io_record(self.format, 1, n as u64);
        self.line_no += 1;
        let mut end = self.buf.len();
        if self.buf.ends_with(b"\n") {
            end -= 1;
            if self.buf[..end].ends_with(b"\r") {
                end -= 1;
            }
        }
        if end > self.max_line_bytes {
            return Err(IoError::limit(
                self.format,
                self.line_no,
                "line length",
                self.max_line_bytes,
            ));
        }
        let s = std::str::from_utf8(&self.buf[..end])
            .map_err(|_| IoError::parse(self.format, self.line_no, "line is not valid UTF-8"))?;
        Ok(Some((self.line_no, s)))
    }

    /// Like [`LineReader::next_line`] but returns an owned `String`
    /// (needed when the caller must hold the line across further reads).
    pub(crate) fn next_line_owned(&mut self) -> Result<Option<(usize, String)>, IoError> {
        Ok(self.next_line()?.map(|(no, s)| (no, s.to_string())))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reader(s: &str, cap: usize) -> LineReader<&[u8]> {
        let limits = Limits::default().max_line_bytes(cap);
        LineReader::new(s.as_bytes(), "test", &limits)
    }

    #[test]
    fn splits_lines_with_numbers() {
        let mut r = reader("a\nbb\r\nccc", 100);
        assert_eq!(r.next_line().unwrap(), Some((1, "a")));
        assert_eq!(r.next_line().unwrap(), Some((2, "bb")));
        assert_eq!(r.next_line().unwrap(), Some((3, "ccc")));
        assert_eq!(r.next_line().unwrap(), None);
    }

    #[test]
    fn exact_cap_passes_over_cap_fails() {
        let mut r = reader("abcde\n", 5);
        assert_eq!(r.next_line().unwrap(), Some((1, "abcde")));
        let mut r = reader("abcdef\n", 5);
        let err = r.next_line().unwrap_err();
        assert!(
            matches!(err, IoError::LimitExceeded { line: 1, .. }),
            "{err}"
        );
    }

    #[test]
    fn unterminated_long_line_does_not_buffer_everything() {
        // 1 MiB of 'x' with a tiny cap: must fail fast, not buffer 1 MiB
        let big = "x".repeat(1 << 20);
        let mut r = reader(&big, 64);
        assert!(r.next_line().is_err());
    }

    #[test]
    fn rejects_invalid_utf8() {
        let limits = Limits::default();
        let bytes: &[u8] = &[0x66, 0xff, 0xfe, 0x0a];
        let mut r = LineReader::new(bytes, "test", &limits);
        assert!(matches!(r.next_line(), Err(IoError::Parse { .. })));
    }

    #[test]
    fn builder_setters() {
        let l = Limits::default()
            .max_line_bytes(10)
            .max_sites(20)
            .max_samples(30);
        assert_eq!(l.max_line_bytes, 10);
        assert_eq!(l.max_sites, 20);
        assert_eq!(l.max_samples, 30);
    }
}
