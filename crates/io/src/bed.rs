//! PLINK binary triples: `.bed` (2-bit genotypes) + `.bim` (variants) +
//! `.fam` (individuals).
//!
//! The `.bed` layout is the SNP-major variant (third magic byte `0x01`):
//! magic `6C 1B 01`, then `ceil(n_individuals / 4)` bytes per variant,
//! lowest two bits = first individual. This is byte-identical to what
//! PLINK 1.9 reads, so datasets generated here can feed an actual PLINK
//! install and vice versa.

use crate::limits::LineReader;
use crate::{IoError, Limits};
use ld_bitmat::GenotypeMatrix;
use std::collections::HashSet;
use std::io::{BufRead, Read, Write};
use std::path::Path;

/// `.bed` magic bytes (SNP-major).
pub const BED_MAGIC: [u8; 3] = [0x6c, 0x1b, 0x01];

/// One `.bim` row.
#[derive(Clone, Debug, PartialEq)]
pub struct BimRecord {
    /// Chromosome code.
    pub chrom: String,
    /// Variant identifier.
    pub id: String,
    /// Genetic distance (cM), usually 0.
    pub cm: f64,
    /// Base-pair position.
    pub pos: u64,
    /// Allele 1 (usually minor).
    pub a1: String,
    /// Allele 2 (usually major).
    pub a2: String,
}

/// One `.fam` row (the six PLINK columns).
#[derive(Clone, Debug, PartialEq)]
pub struct FamRecord {
    /// Family ID.
    pub fid: String,
    /// Individual ID.
    pub iid: String,
    /// Paternal ID (0 = unknown).
    pub father: String,
    /// Maternal ID (0 = unknown).
    pub mother: String,
    /// Sex code (1 male, 2 female, 0 unknown).
    pub sex: u8,
    /// Phenotype (-9 = missing).
    pub phenotype: String,
}

/// Writes a `.bed` stream.
pub fn write_bed<W: Write>(mut w: W, g: &GenotypeMatrix) -> Result<(), IoError> {
    w.write_all(&BED_MAGIC)?;
    for j in 0..g.n_snps() {
        w.write_all(&g.snp_to_bed_bytes(j))?;
    }
    Ok(())
}

/// Reads a `.bed` stream given the dimensions from `.fam`/`.bim`, under
/// default [`Limits`].
pub fn read_bed<R: Read>(
    mut r: R,
    n_individuals: usize,
    n_snps: usize,
) -> Result<GenotypeMatrix, IoError> {
    read_bed_with(&mut r, n_individuals, n_snps, &Limits::default())
}

/// Reads a `.bed` stream under caller-supplied hard [`Limits`]. Since the
/// dimensions come from the companion `.fam`/`.bim` files they are
/// validated here before the first genotype byte is buffered, and every
/// short read surfaces as a typed [`IoError::Truncated`] rather than a
/// bare I/O error.
pub fn read_bed_with<R: Read>(
    mut r: R,
    n_individuals: usize,
    n_snps: usize,
    limits: &Limits,
) -> Result<GenotypeMatrix, IoError> {
    if n_individuals > limits.max_samples {
        return Err(IoError::limit("bed", 0, "sample count", limits.max_samples));
    }
    if n_snps > limits.max_sites {
        return Err(IoError::limit("bed", 0, "site count", limits.max_sites));
    }
    let mut magic = [0u8; 3];
    r.read_exact(&mut magic)
        .map_err(|_| IoError::truncated("bed", "3-byte magic header"))?;
    ld_trace::io_record("bed", 0, 3);
    if magic != BED_MAGIC {
        return Err(IoError::parse(
            "bed",
            0,
            format!("bad magic {magic:02x?} (expected {BED_MAGIC:02x?}, SNP-major)"),
        ));
    }
    let bytes_per_snp = n_individuals.div_ceil(4);
    let mut buf = vec![0u8; bytes_per_snp];
    let mut cols = Vec::with_capacity(n_snps);
    for j in 0..n_snps {
        r.read_exact(&mut buf).map_err(|_| {
            IoError::truncated(
                "bed",
                format!("short read at variant {j} of {n_snps} ({bytes_per_snp} bytes/variant)"),
            )
        })?;
        // One "line" per variant record for the binary format; bytes are
        // the SNP-major payload actually consumed.
        ld_trace::io_record("bed", 1, bytes_per_snp as u64);
        cols.push(GenotypeMatrix::snp_from_bed_bytes(n_individuals, &buf)?);
    }
    Ok(GenotypeMatrix::from_columns(n_individuals, cols)?)
}

/// Writes a `.bim` file body.
pub fn write_bim<W: Write>(mut w: W, records: &[BimRecord]) -> Result<(), IoError> {
    for r in records {
        writeln!(
            w,
            "{}\t{}\t{}\t{}\t{}\t{}",
            r.chrom, r.id, r.cm, r.pos, r.a1, r.a2
        )?;
    }
    Ok(())
}

/// Reads a `.bim` file body with default [`Limits`].
pub fn read_bim<R: BufRead>(r: R) -> Result<Vec<BimRecord>, IoError> {
    read_bim_with(r, &Limits::default())
}

/// Reads a `.bim` file body under caller-supplied hard [`Limits`]
/// (variant count capped by `max_sites`).
pub fn read_bim_with<R: BufRead>(r: R, limits: &Limits) -> Result<Vec<BimRecord>, IoError> {
    let mut out = Vec::new();
    let mut lines = LineReader::new(r, "bim", limits);
    while let Some((no, line)) = lines.next_line()? {
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        if out.len() >= limits.max_sites {
            return Err(IoError::limit("bim", no, "site count", limits.max_sites));
        }
        let f: Vec<&str> = t.split_whitespace().collect();
        if f.len() != 6 {
            return Err(IoError::parse(
                "bim",
                no,
                format!("{} columns (expected 6)", f.len()),
            ));
        }
        out.push(BimRecord {
            chrom: f[0].to_string(),
            id: f[1].to_string(),
            cm: f[2]
                .parse()
                .map_err(|_| IoError::parse("bim", no, "invalid cM"))?,
            pos: f[3]
                .parse()
                .map_err(|_| IoError::parse("bim", no, "invalid position"))?,
            a1: f[4].to_string(),
            a2: f[5].to_string(),
        });
    }
    Ok(out)
}

/// Writes a `.fam` file body.
pub fn write_fam<W: Write>(mut w: W, records: &[FamRecord]) -> Result<(), IoError> {
    for r in records {
        writeln!(
            w,
            "{}\t{}\t{}\t{}\t{}\t{}",
            r.fid, r.iid, r.father, r.mother, r.sex, r.phenotype
        )?;
    }
    Ok(())
}

/// Reads a `.fam` file body with default [`Limits`].
pub fn read_fam<R: BufRead>(r: R) -> Result<Vec<FamRecord>, IoError> {
    read_fam_with(r, &Limits::default())
}

/// Reads a `.fam` file body under caller-supplied hard [`Limits`]: the
/// individual count is capped by `max_samples` and a repeated
/// `(FID, IID)` pair is a located [`IoError::DuplicateSample`].
pub fn read_fam_with<R: BufRead>(r: R, limits: &Limits) -> Result<Vec<FamRecord>, IoError> {
    let mut out = Vec::new();
    let mut seen: HashSet<(String, String)> = HashSet::new();
    let mut lines = LineReader::new(r, "fam", limits);
    while let Some((no, line)) = lines.next_line()? {
        let t = line.trim();
        if t.is_empty() {
            continue;
        }
        if out.len() >= limits.max_samples {
            return Err(IoError::limit(
                "fam",
                no,
                "sample count",
                limits.max_samples,
            ));
        }
        let f: Vec<&str> = t.split_whitespace().collect();
        if f.len() != 6 {
            return Err(IoError::parse(
                "fam",
                no,
                format!("{} columns (expected 6)", f.len()),
            ));
        }
        if !seen.insert((f[0].to_string(), f[1].to_string())) {
            return Err(IoError::DuplicateSample {
                format: "fam",
                line: no,
                name: format!("{} {}", f[0], f[1]),
            });
        }
        out.push(FamRecord {
            fid: f[0].to_string(),
            iid: f[1].to_string(),
            father: f[2].to_string(),
            mother: f[3].to_string(),
            sex: f[4].parse().unwrap_or(0),
            phenotype: f[5].to_string(),
        });
    }
    Ok(out)
}

/// Synthetic `.bim`/`.fam` metadata for simulated matrices.
pub fn synthetic_metadata(g: &GenotypeMatrix) -> (Vec<BimRecord>, Vec<FamRecord>) {
    let bim = (0..g.n_snps())
        .map(|j| BimRecord {
            chrom: "1".into(),
            id: format!("snp{j}"),
            cm: 0.0,
            pos: (j as u64 + 1) * 1000,
            a1: "A".into(),
            a2: "T".into(),
        })
        .collect();
    let fam = (0..g.n_individuals())
        .map(|i| FamRecord {
            fid: format!("F{i}"),
            iid: format!("I{i}"),
            father: "0".into(),
            mother: "0".into(),
            sex: 0,
            phenotype: "-9".into(),
        })
        .collect();
    (bim, fam)
}

/// Writes the full triple next to `prefix` (`prefix.bed/.bim/.fam`).
pub fn write_plink_triple(
    prefix: impl AsRef<Path>,
    g: &GenotypeMatrix,
    bim: &[BimRecord],
    fam: &[FamRecord],
) -> Result<(), IoError> {
    let p = prefix.as_ref();
    write_bed(
        std::io::BufWriter::new(std::fs::File::create(with_ext(p, "bed"))?),
        g,
    )?;
    write_bim(
        std::io::BufWriter::new(std::fs::File::create(with_ext(p, "bim"))?),
        bim,
    )?;
    write_fam(
        std::io::BufWriter::new(std::fs::File::create(with_ext(p, "fam"))?),
        fam,
    )?;
    Ok(())
}

/// Reads the full triple from `prefix.bed/.bim/.fam`.
pub fn read_plink_triple(
    prefix: impl AsRef<Path>,
) -> Result<(GenotypeMatrix, Vec<BimRecord>, Vec<FamRecord>), IoError> {
    let p = prefix.as_ref();
    let bim = read_bim(std::io::BufReader::new(std::fs::File::open(with_ext(
        p, "bim",
    ))?))?;
    let fam = read_fam(std::io::BufReader::new(std::fs::File::open(with_ext(
        p, "fam",
    ))?))?;
    let g = read_bed(
        std::io::BufReader::new(std::fs::File::open(with_ext(p, "bed"))?),
        fam.len(),
        bim.len(),
    )?;
    Ok((g, bim, fam))
}

fn with_ext(p: &Path, ext: &str) -> std::path::PathBuf {
    let mut out = p.to_path_buf();
    let name = format!(
        "{}.{ext}",
        p.file_name()
            .map(|s| s.to_string_lossy())
            .unwrap_or_default()
    );
    out.set_file_name(name);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_bitmat::Genotype;

    fn toy() -> GenotypeMatrix {
        use Genotype::*;
        GenotypeMatrix::from_columns(
            5,
            [
                vec![HomA1, Het, HomA2, Missing, Het],
                vec![HomA2, HomA2, Het, HomA1, Missing],
            ],
        )
        .unwrap()
    }

    #[test]
    fn bed_round_trip() {
        let g = toy();
        let mut buf = Vec::new();
        write_bed(&mut buf, &g).unwrap();
        assert_eq!(&buf[..3], &BED_MAGIC);
        assert_eq!(buf.len(), 3 + 2 * 2); // 2 snps × ceil(5/4)=2 bytes
        let back = read_bed(buf.as_slice(), 5, 2).unwrap();
        for i in 0..5 {
            for j in 0..2 {
                assert_eq!(back.get(i, j), g.get(i, j), "({i},{j})");
            }
        }
    }

    #[test]
    fn bed_rejects_bad_magic_and_truncation() {
        let mut buf = Vec::new();
        write_bed(&mut buf, &toy()).unwrap();
        let mut bad = buf.clone();
        bad[2] = 0x00; // individual-major flag: unsupported
        assert!(read_bed(bad.as_slice(), 5, 2).is_err());
        let err = read_bed(&buf[..5], 5, 2).unwrap_err();
        assert!(matches!(err, IoError::Truncated { .. }), "{err}");
        let err = read_bed(&buf[..2], 5, 2).unwrap_err();
        assert!(matches!(err, IoError::Truncated { .. }), "{err}");
    }

    #[test]
    fn bed_enforces_declared_dimension_limits() {
        let limits = Limits::default().max_samples(4);
        let err = read_bed_with(&[][..], 5, 2, &limits).unwrap_err();
        assert!(matches!(err, IoError::LimitExceeded { .. }), "{err}");
        let limits = Limits::default().max_sites(1);
        let err = read_bed_with(&[][..], 5, 2, &limits).unwrap_err();
        assert!(matches!(err, IoError::LimitExceeded { .. }), "{err}");
    }

    #[test]
    fn fam_rejects_duplicate_individuals() {
        let dup = "F0 I0 0 0 1 -9\nF0 I0 0 0 2 -9\n";
        let err = read_fam(dup.as_bytes()).unwrap_err();
        assert!(
            matches!(err, IoError::DuplicateSample { line: 2, .. }),
            "{err}"
        );
    }

    #[test]
    fn bim_fam_round_trip() {
        let (bim, fam) = synthetic_metadata(&toy());
        let mut b = Vec::new();
        write_bim(&mut b, &bim).unwrap();
        assert_eq!(read_bim(b.as_slice()).unwrap(), bim);
        let mut f = Vec::new();
        write_fam(&mut f, &fam).unwrap();
        assert_eq!(read_fam(f.as_slice()).unwrap(), fam);
    }

    #[test]
    fn bim_rejects_wrong_columns() {
        assert!(read_bim("1 snp0 0".as_bytes()).is_err());
        assert!(read_fam("F I 0 0 1".as_bytes()).is_err());
    }

    #[test]
    fn triple_round_trip_on_disk() {
        let dir = std::env::temp_dir().join("ld_io_bed_test");
        std::fs::create_dir_all(&dir).unwrap();
        let prefix = dir.join("cohort");
        let g = toy();
        let (bim, fam) = synthetic_metadata(&g);
        write_plink_triple(&prefix, &g, &bim, &fam).unwrap();
        let (g2, bim2, fam2) = read_plink_triple(&prefix).unwrap();
        assert_eq!(bim2, bim);
        assert_eq!(fam2, fam);
        for i in 0..5 {
            for j in 0..2 {
                assert_eq!(g2.get(i, j), g.get(i, j));
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
