//! # ld-io — genomic file formats
//!
//! Parsers and writers for the formats the compared tools consume
//! (§VI of the paper):
//!
//! * [`ms`] — Hudson's `ms` coalescent-simulator output (what the paper's
//!   Datasets B and C were generated as): `segsites:`/`positions:` blocks
//!   of 0/1 haplotype rows, multiple replicates per stream.
//! * [`vcf`] — a minimal VCF subset: `GT`-first FORMAT, haploid or phased/
//!   unphased diploid genotypes, biallelic SNVs (what an LD tool needs
//!   from 1000-Genomes-style files).
//! * [`bed`] — PLINK binary triples `.bed`/`.bim`/`.fam` in SNP-major
//!   2-bit encoding (the input PLINK 1.9 benchmarks on).
//! * [`text`] — plain 0/1 matrices and the PLINK-style `--r2` pair-table
//!   output format.
//!
//! All readers take `io::Read`/`io::BufRead`, writers take `io::Write`;
//! path helpers wrap them with buffered files.
//!
//! Durable artifacts are written **atomically**: [`atomic::write_atomic`]
//! stages to a temp sibling, fsyncs, then renames — a crashed or cancelled
//! writer never leaves a truncated file under the final name. The same
//! helper backs [`checkpoint::AtomicFileSink`], the filesystem
//! implementation of `ld-core`'s checkpoint persistence for interruptible
//! runs.
//!
//! ## Hardened against bad input
//!
//! Every text parser enforces hard input limits ([`Limits`]: line length,
//! site count, sample count) through a byte-capped line reader, detects
//! duplicate sample identifiers, and reports binary short-reads as typed
//! truncation errors — malformed or hostile inputs fail with a located
//! [`IoError`], never an OOM or panic. The `read_*_with` variants accept
//! caller-tuned limits; the plain `read_*` forms use permissive defaults.

#![warn(missing_docs)]

pub mod atomic;
pub mod bed;
pub mod checkpoint;
mod error;
pub mod fasta;
pub mod ldmatrix;
mod limits;
pub mod ms;
pub mod ped;
pub mod text;
pub mod tilestore;
pub mod vcf;

pub use error::IoError;
pub use limits::Limits;
