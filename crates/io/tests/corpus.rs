//! Malformed-input corpus: every fixture under `tests/corpus/` must fail
//! with a typed, non-empty [`IoError`] — never a panic, abort, or OOM.
//!
//! The corpus covers truncation, ragged shapes, bad characters, limit
//! violations, duplicate samples and binary short-reads across every
//! format this crate parses. Two adapters additionally exercise the
//! parsers against streams that fail mid-read and streams that deliver
//! one byte at a time (a `BufReader` over a hostile transport).

use ld_io::{bed, ms, ped, text, vcf, IoError, Limits};
use std::io::{BufReader, Read};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

/// Parses one fixture by extension; returns the parse outcome.
fn parse_fixture(path: &std::path::Path) -> Result<(), IoError> {
    let bytes = std::fs::read(path).expect("fixture readable");
    let ext = path
        .extension()
        .and_then(|e| e.to_str())
        .expect("fixture has extension");
    match ext {
        "ms" => ms::read_ms(bytes.as_slice()).map(|_| ()),
        "vcf" => vcf::read_vcf(bytes.as_slice()).map(|_| ()),
        "txt" => text::read_matrix(bytes.as_slice()).map(|_| ()),
        "bed" => bed::read_bed(bytes.as_slice(), 5, 2).map(|_| ()),
        "fam" => bed::read_fam(bytes.as_slice()).map(|_| ()),
        "map" => ped::read_map(bytes.as_slice()).map(|_| ()),
        other => panic!("unhandled fixture extension '{other}'"),
    }
}

#[test]
fn every_corpus_fixture_fails_with_a_located_error() {
    let dir = corpus_dir();
    let mut checked = 0usize;
    let mut entries: Vec<_> = std::fs::read_dir(&dir)
        .expect("corpus directory exists")
        .map(|e| e.expect("dir entry").path())
        .collect();
    entries.sort();
    for path in entries {
        let err = match parse_fixture(&path) {
            Err(e) => e,
            Ok(()) => panic!("{} parsed cleanly but is malformed", path.display()),
        };
        let msg = err.to_string();
        assert!(!msg.is_empty(), "{}: empty error message", path.display());
        checked += 1;
    }
    assert!(checked >= 15, "corpus shrank: only {checked} fixtures");
}

#[test]
fn corpus_errors_carry_the_expected_variants() {
    let dir = corpus_dir();
    let case = |name: &str| parse_fixture(&dir.join(name)).unwrap_err();

    assert!(matches!(
        case("huge_segsites.ms"),
        IoError::LimitExceeded { .. }
    ));
    assert!(matches!(
        case("missing_positions.ms"),
        IoError::Truncated { .. }
    ));
    assert!(matches!(case("no_rows.ms"), IoError::Truncated { .. }));
    assert!(matches!(case("bad_segsites.ms"), IoError::Parse { .. }));
    assert!(matches!(
        case("dup_sample.vcf"),
        IoError::DuplicateSample { .. }
    ));
    assert!(matches!(
        case("dup_individual.fam"),
        IoError::DuplicateSample { .. }
    ));
    assert!(matches!(case("truncated.bed"), IoError::Truncated { .. }));
    assert!(matches!(case("bad_magic.bed"), IoError::Parse { .. }));
    assert!(matches!(case("ragged.txt"), IoError::Parse { .. }));
}

// ---------------------------------------------------------------------
// Hostile stream adapters
// ---------------------------------------------------------------------

/// Delivers `ok` bytes, then fails every read with an I/O error.
struct FailingReader<'a> {
    data: &'a [u8],
    pos: usize,
    ok: usize,
}

impl Read for FailingReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.pos >= self.ok {
            return Err(std::io::Error::other("injected transport failure"));
        }
        let n = buf
            .len()
            .min(self.ok - self.pos)
            .min(self.data.len() - self.pos);
        buf[..n].copy_from_slice(&self.data[self.pos..self.pos + n]);
        self.pos += n;
        Ok(n)
    }
}

/// Delivers at most one byte per `read` call (extreme short reads).
struct OneByteReader<'a>(&'a [u8]);

impl Read for OneByteReader<'_> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.0.is_empty() || buf.is_empty() {
            return Ok(0);
        }
        buf[0] = self.0[0];
        self.0 = &self.0[1..];
        Ok(1)
    }
}

const GOOD_MS: &str = "//\nsegsites: 3\npositions: 0.1 0.2 0.3\n010\n110\n001\n000\n";

#[test]
fn mid_stream_transport_failure_surfaces_as_io_error() {
    for ok in [0, 1, 5, 20] {
        let r = BufReader::new(FailingReader {
            data: GOOD_MS.as_bytes(),
            pos: 0,
            ok,
        });
        let err = ms::read_ms(r).expect_err("stream fails mid-parse");
        assert!(
            matches!(err, IoError::Io(_)),
            "ok={ok}: expected Io, got {err}"
        );
    }
}

#[test]
fn one_byte_reads_still_parse_correctly() {
    let r = BufReader::new(OneByteReader(GOOD_MS.as_bytes()));
    let reps = ms::read_ms(r).expect("short reads are not errors");
    assert_eq!(reps.len(), 1);
    assert_eq!(reps[0].matrix.n_samples(), 4);
    assert_eq!(reps[0].matrix.n_snps(), 3);
}

#[test]
fn truncated_prefixes_of_a_valid_bed_never_panic() {
    // 3-byte magic + 2 variants × 2 bytes = 7 bytes total
    let full: &[u8] = &[
        0x6c,
        0x1b,
        0x01,
        0b1101_1000,
        0b0000_0010,
        0b0111_0011,
        0b0000_0001,
    ];
    assert!(bed::read_bed(full, 5, 2).is_ok());
    for cut in 0..full.len() {
        let err = bed::read_bed(&full[..cut], 5, 2).expect_err("prefix is short");
        assert!(matches!(err, IoError::Truncated { .. }), "cut={cut}: {err}");
    }
}

#[test]
fn tightened_limits_reject_otherwise_valid_input() {
    let limits = Limits::default().max_sites(2);
    let err = ms::read_ms_with(GOOD_MS.as_bytes(), &limits).unwrap_err();
    assert!(matches!(err, IoError::LimitExceeded { .. }), "{err}");

    let limits = Limits::default().max_samples(3);
    let err = ms::read_ms_with(GOOD_MS.as_bytes(), &limits).unwrap_err();
    assert!(matches!(err, IoError::LimitExceeded { .. }), "{err}");

    let limits = Limits::default().max_line_bytes(8);
    let err = ms::read_ms_with(GOOD_MS.as_bytes(), &limits).unwrap_err();
    assert!(matches!(err, IoError::LimitExceeded { .. }), "{err}");
}
