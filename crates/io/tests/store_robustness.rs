//! Fault-injection corpus for the on-disk tile store.
//!
//! Exhaustive, not sampled: **every** truncation prefix and **every**
//! single-bit flip of a chunk file and of the manifest must surface as a
//! typed [`LdError::TileStore`] — never a panic, never silently wrong
//! words — and chunk-level failures must name the chunk that failed.
//! The chunk CRC-32 trailer covers header and payload; the manifest's
//! own CRC covers its payload; the manifest's recorded per-chunk sizes
//! and CRCs catch truncation and transplants before decode.

use ld_bitmat::BitMatrix;
use ld_core::{LdError, TileSource};
use ld_io::tilestore::{import_to_dir, DirTileStore, MANIFEST_FILE};
use std::path::{Path, PathBuf};

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ld_store_rob_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn sample_matrix() -> BitMatrix {
    let (n_samples, n_snps) = (10usize, 5usize);
    let mut g = BitMatrix::zeros(n_samples, n_snps);
    for j in 0..n_snps {
        for s in 0..n_samples {
            if (s * 7 + j * 3) % 4 == 0 {
                g.set(s, j, true);
            }
        }
    }
    g
}

fn assert_tile_err(res: Result<impl Sized, LdError>, what: &str) -> String {
    match res {
        Err(LdError::TileStore { message }) => {
            assert!(!message.is_empty(), "{what}: empty message");
            message
        }
        Err(other) => panic!("{what}: wrong error variant: {other}"),
        Ok(_) => panic!("{what}: accepted"),
    }
}

/// Every truncation prefix and every single-bit flip of a chunk file is
/// a typed error naming the damaged chunk; the pristine bytes read back
/// fine before and after.
#[test]
fn chunk_file_survives_no_truncation_or_bit_flip() {
    let dir = tmpdir("chunk");
    let meta = import_to_dir(&sample_matrix(), 2, &dir).expect("import");
    let store = DirTileStore::open(&dir).expect("open");
    let target = 1usize; // an interior chunk
    let path = dir.join(ld_core::TileStoreMeta::chunk_file(target));
    let pristine = std::fs::read(&path).expect("chunk bytes");
    store.read_chunk(target).expect("pristine chunk reads");

    for cut in 0..pristine.len() {
        std::fs::write(&path, &pristine[..cut]).unwrap();
        let msg = assert_tile_err(
            store.read_chunk(target),
            &format!("truncation to {cut} bytes"),
        );
        assert!(
            msg.contains(&format!("chunk {target}")),
            "truncation to {cut}: error does not name the chunk: {msg}"
        );
    }
    for byte in 0..pristine.len() {
        for bit in 0..8u8 {
            let mut bad = pristine.clone();
            bad[byte] ^= 1 << bit;
            std::fs::write(&path, &bad).unwrap();
            let msg = assert_tile_err(
                store.read_chunk(target),
                &format!("bit {bit} of byte {byte} flipped"),
            );
            assert!(
                msg.contains(&format!("chunk {target}")),
                "flip {byte}.{bit}: error does not name the chunk: {msg}"
            );
        }
    }

    // restore: the store is intact again, and so is every other chunk
    std::fs::write(&path, &pristine).unwrap();
    for c in 0..meta.n_chunks() {
        store.read_chunk(c).expect("restored store reads");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Every truncation prefix and every single-bit flip of the manifest
/// makes the store refuse to open with a typed error.
#[test]
fn manifest_survives_no_truncation_or_bit_flip() {
    let dir = tmpdir("manifest");
    import_to_dir(&sample_matrix(), 2, &dir).expect("import");
    let path = dir.join(MANIFEST_FILE);
    let pristine = std::fs::read(&path).expect("manifest bytes");
    DirTileStore::open(&dir).expect("pristine manifest opens");

    let reject = |bytes: &[u8], what: &str| {
        std::fs::write(&path, bytes).unwrap();
        let msg = assert_tile_err(DirTileStore::open(&dir), what);
        assert!(
            msg.contains("manifest"),
            "{what}: error does not name the manifest: {msg}"
        );
    };
    for cut in 0..pristine.len() {
        reject(&pristine[..cut], &format!("truncation to {cut} bytes"));
    }
    for byte in 0..pristine.len() {
        for bit in 0..8u8 {
            let mut bad = pristine.clone();
            bad[byte] ^= 1 << bit;
            reject(&bad, &format!("bit {bit} of byte {byte} flipped"));
        }
    }

    std::fs::write(&path, &pristine).unwrap();
    DirTileStore::open(&dir).expect("restored manifest opens");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A missing or unreadable chunk file is a typed error that names both
/// the chunk index and the path — the operator learns *which* of
/// thousands of chunks to restore.
#[test]
fn missing_and_unreadable_chunks_are_named() {
    let dir = tmpdir("missing");
    let meta = import_to_dir(&sample_matrix(), 2, &dir).expect("import");
    let store = DirTileStore::open(&dir).expect("open");
    let target = meta.n_chunks() - 1;
    let path = dir.join(ld_core::TileStoreMeta::chunk_file(target));
    std::fs::remove_file(&path).unwrap();
    let msg = assert_tile_err(store.read_chunk(target), "missing chunk file");
    assert!(
        msg.contains(&format!("chunk {target}")) && msg.contains(&path.display().to_string()),
        "missing chunk: message names neither chunk nor path: {msg}"
    );
    // an index past the manifest is also typed and named
    let msg = assert_tile_err(store.read_chunk(meta.n_chunks()), "out-of-range chunk");
    assert!(msg.contains("not in the manifest"), "{msg}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// A chunk transplanted from a *different* store of identical geometry is
/// rejected by the manifest CRC audit even though the file is internally
/// self-consistent.
#[test]
fn transplanted_chunk_from_another_store_is_rejected() {
    fn other_matrix() -> BitMatrix {
        let mut g = sample_matrix();
        g.set(0, 2, !g.get(0, 2));
        g
    }
    let dir_a = tmpdir("transplant_a");
    let dir_b = tmpdir("transplant_b");
    import_to_dir(&sample_matrix(), 2, &dir_a).expect("import a");
    import_to_dir(&other_matrix(), 2, &dir_b).expect("import b");
    let name = ld_core::TileStoreMeta::chunk_file(1);
    std::fs::copy(dir_b.join(&name), dir_a.join(&name)).unwrap();
    let store = DirTileStore::open(&dir_a).expect("manifest itself is intact");
    let msg = assert_tile_err(store.read_chunk(1), "transplanted chunk");
    assert!(
        msg.contains("chunk 1") && msg.contains("does not match the manifest"),
        "{msg}"
    );
    let _ = std::fs::remove_dir_all(&dir_a);
    let _ = std::fs::remove_dir_all(&dir_b);
}

fn walk(dir: &Path) -> Vec<PathBuf> {
    let mut v: Vec<_> = std::fs::read_dir(dir)
        .expect("store dir")
        .map(|e| e.expect("entry").path())
        .collect();
    v.sort();
    v
}

/// The store directory holds exactly the manifest plus one file per
/// chunk — nothing stray for an operator to wonder about, no temp files
/// left behind by the atomic writes.
#[test]
fn store_directory_layout_is_exactly_manifest_plus_chunks() {
    let dir = tmpdir("layout");
    let meta = import_to_dir(&sample_matrix(), 2, &dir).expect("import");
    let mut expect: Vec<PathBuf> = (0..meta.n_chunks())
        .map(|c| dir.join(ld_core::TileStoreMeta::chunk_file(c)))
        .collect();
    expect.push(dir.join(MANIFEST_FILE));
    expect.sort();
    assert_eq!(walk(&dir), expect);
    let _ = std::fs::remove_dir_all(&dir);
}
