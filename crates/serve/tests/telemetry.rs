//! Telemetry-plane integration: the `metrics` and `dump_trace` opcodes,
//! the plain-HTTP scrape endpoint, the structured request log's
//! lifecycle contract, and JSON-escaping of hostile panel names
//! end-to-end through `health`.

use ld_serve::protocol::{Request, StatCode, Status};
use ld_serve::registry::{PanelRegistry, PanelSource};
use ld_serve::server::{ServeConfig, Server, ServerHandle};
use ld_serve::Client;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ld_serve_tel_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn write_panel(dir: &Path, name: &str, n_samples: usize, n_snps: usize, seed: u64) -> PathBuf {
    let mut state = seed | 1;
    let mut text = String::new();
    for _ in 0..n_samples {
        for _ in 0..n_snps {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            text.push(if (state >> 33) & 1 == 1 { '1' } else { '0' });
        }
        text.push('\n');
    }
    let path = dir.join(format!("{name}.txt"));
    std::fs::write(&path, text).expect("write panel");
    path
}

fn registry_with(dir: &Path, names: &[&str]) -> PanelRegistry {
    let engine = ld_core::LdEngine::new()
        .threads(1)
        .nan_policy(ld_core::NanPolicy::Zero);
    let mut registry = PanelRegistry::new(engine, 1 << 20);
    for (i, name) in names.iter().enumerate() {
        let panel = write_panel(dir, &format!("p{i}"), 16, 12, 42 + i as u64);
        assert!(registry.add_source(*name, PanelSource::TextFile(panel)));
    }
    registry
}

fn start(tag: &str, cfg: ServeConfig, names: &[&str]) -> (ServerHandle, PathBuf) {
    let dir = temp_dir(tag);
    let registry = registry_with(&dir, names);
    let server = Server::bind(cfg, registry).expect("bind");
    let handle = server.spawn().expect("spawn");
    (handle, dir)
}

fn connect(handle: &ServerHandle) -> Client {
    Client::connect(&handle.addr().to_string(), Duration::from_secs(5)).expect("connect")
}

#[test]
fn metrics_opcode_returns_prometheus_text() {
    let (handle, dir) = start("metrics_op", ServeConfig::default(), &["toy"]);
    let mut c = connect(&handle);
    // generate one served query so counters move
    let resp = c
        .request(&Request::Pair {
            panel: "toy".into(),
            stat: StatCode::RSquared,
            i: 0,
            j: 1,
        })
        .expect("pair");
    assert_eq!(resp.status, Status::Ok);
    let resp = c.request(&Request::Metrics).expect("metrics");
    assert_eq!(resp.status, Status::Ok);
    let text = String::from_utf8(resp.body).expect("utf-8 exposition");
    for needle in [
        "# TYPE gemm_ld_requests_accepted_total counter",
        "# TYPE gemm_ld_request_queue_seconds histogram",
        "gemm_ld_queue_depth ",
        "gemm_ld_uptime_seconds ",
        "gemm_ld_workers ",
        "gemm_ld_registry_budget_bytes ",
    ] {
        assert!(text.contains(needle), "missing {needle:?} in exposition");
    }
    // every line is a comment or `name[{labels}] value`
    for line in text.lines() {
        assert!(
            line.starts_with('#') || line.rsplit_once(' ').is_some(),
            "malformed exposition line: {line:?}"
        );
    }
    handle.shutdown_and_wait();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn http_endpoint_serves_metrics_and_health() {
    let cfg = ServeConfig {
        metrics_addr: Some("127.0.0.1:0".to_string()),
        ..ServeConfig::default()
    };
    let (handle, dir) = start("http", cfg, &["toy"]);
    let maddr = handle.metrics_addr().expect("metrics addr bound");
    let get = |path: &str| -> String {
        let mut s = TcpStream::connect(maddr).expect("connect metrics port");
        s.set_read_timeout(Some(Duration::from_secs(5)))
            .expect("timeout");
        write!(s, "GET {path} HTTP/1.0\r\nHost: x\r\n\r\n").expect("send");
        let mut out = String::new();
        s.read_to_string(&mut out).expect("read response");
        out
    };
    let metrics = get("/metrics");
    assert!(metrics.starts_with("HTTP/1.0 200 OK\r\n"), "{metrics}");
    assert!(metrics.contains("text/plain; version=0.0.4"));
    assert!(metrics.contains("gemm_ld_requests_accepted_total"));
    let health = get("/health");
    assert!(health.starts_with("HTTP/1.0 200 OK\r\n"));
    assert!(health.contains("application/json"));
    assert!(health.contains("\"state\": \"serving\""));
    let missing = get("/nope");
    assert!(missing.starts_with("HTTP/1.0 404"));
    handle.shutdown_and_wait();
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn dump_trace_opcode_requires_an_armed_recorder() {
    let (handle, dir) = start("dump_trace", ServeConfig::default(), &["toy"]);
    let mut c = connect(&handle);
    let resp = c.request(&Request::DumpTrace).expect("dump-trace");
    // No recorder armed in the test process (and with `metrics` off the
    // recorder is compiled out entirely): a typed NotFound either way.
    assert_eq!(resp.status, Status::NotFound, "body: {}", resp.message());
    #[cfg(feature = "metrics")]
    {
        ld_trace::recorder::start(ld_trace::recorder::RecorderConfig::for_threads(1));
        let resp = c.request(&Request::DumpTrace).expect("dump-trace armed");
        assert_eq!(resp.status, Status::Ok, "body: {}", resp.message());
        let json = String::from_utf8(resp.body).expect("utf-8 trace");
        assert!(
            json.contains("\"traceEvents\""),
            "not a Chrome trace: {json}"
        );
        // the recorder must still be armed after the live snapshot
        let again = c.request(&Request::DumpTrace).expect("second dump");
        assert_eq!(again.status, Status::Ok);
        let _ = ld_trace::recorder::stop();
    }
    handle.shutdown_and_wait();
    let _ = std::fs::remove_dir_all(dir);
}

/// Pulls `"key":value` (number) or `"key":"value"` (string) out of a
/// hand-rolled JSON line — enough structure for the contract checks;
/// the CI leg runs the real schema validator over the same file.
fn field<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\":");
    let rest = &line[line.find(&tag)? + tag.len()..];
    if let Some(stripped) = rest.strip_prefix('"') {
        stripped.split('"').next()
    } else {
        rest.split([',', '}']).next()
    }
}

#[test]
fn request_log_records_full_lifecycles() {
    let dir = temp_dir("reqlog");
    let log_path = dir.join("requests.jsonl");
    let cfg = ServeConfig {
        request_log: Some(log_path.to_string_lossy().into_owned()),
        fault_panel: true,
        ..ServeConfig::default()
    };
    let registry = registry_with(&dir, &["toy"]);
    let server = Server::bind(cfg, registry).expect("bind");
    let handle = server.spawn().expect("spawn");
    let mut c = connect(&handle);
    // ok query, not-found query, inline health, contained panic
    let ok = c
        .request(&Request::Pair {
            panel: "toy".into(),
            stat: StatCode::RSquared,
            i: 0,
            j: 1,
        })
        .expect("pair");
    assert_eq!(ok.status, Status::Ok);
    let nf = c
        .request(&Request::Pair {
            panel: "ghost".into(),
            stat: StatCode::RSquared,
            i: 0,
            j: 1,
        })
        .expect("pair ghost");
    assert_eq!(nf.status, Status::NotFound);
    assert_eq!(
        c.request(&Request::Health).expect("health").status,
        Status::Ok
    );
    let boom = c
        .request(&Request::Pair {
            panel: "__panic__".into(),
            stat: StatCode::RSquared,
            i: 0,
            j: 1,
        })
        .expect("panic panel");
    assert_eq!(boom.status, Status::Internal);
    handle.shutdown_and_wait();

    let text = std::fs::read_to_string(&log_path).expect("read request log");
    let lines: Vec<&str> = text.lines().collect();
    assert!(lines.len() >= 10, "expected a full log, got:\n{text}");
    let rank = |ev: &str| match ev {
        "accept" => 0,
        "admit" | "shed" => 1,
        "start" => 2,
        "timeout" | "panic" => 3,
        "finish" => 4,
        other => panic!("unknown event {other:?}"),
    };
    let mut per_id: std::collections::BTreeMap<u64, Vec<&str>> = Default::default();
    for (i, line) in lines.iter().enumerate() {
        assert!(
            line.starts_with("{\"ts_ms\":") && line.ends_with('}'),
            "line {i}: {line}"
        );
        assert_eq!(
            field(line, "seq").expect("seq").parse::<u64>().ok(),
            Some(i as u64)
        );
        let id: u64 = field(line, "id").expect("id").parse().expect("numeric id");
        per_id
            .entry(id)
            .or_default()
            .push(field(line, "event").expect("event"));
    }
    assert_eq!(per_id.len(), 4, "one lifecycle per request:\n{text}");
    let mut saw_panic = false;
    for (id, events) in &per_id {
        assert_eq!(events[0], "accept", "id {id} must open with accept");
        let terminal = events.last().expect("events");
        assert!(
            matches!(*terminal, "finish" | "shed" | "timeout"),
            "id {id} must close terminally, got {events:?}"
        );
        for pair in events.windows(2) {
            assert!(
                rank(pair[0]) < rank(pair[1]),
                "id {id}: event order violated: {events:?}"
            );
        }
        saw_panic |= events.contains(&"panic");
    }
    assert!(
        saw_panic,
        "the __panic__ lifecycle must log a panic event:\n{text}"
    );
    // the panicking request still finished with status internal
    let internal = lines
        .iter()
        .any(|l| field(l, "event") == Some("finish") && field(l, "status") == Some("internal"));
    assert!(internal, "panic must close as finish/internal:\n{text}");
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn health_json_escapes_hostile_panel_names() {
    let dir = temp_dir("escape");
    let hostile = "evil\"panel\\name\twith\nnewline";
    let registry = registry_with(&dir, &[hostile]);
    let server = Server::bind(ServeConfig::default(), registry).expect("bind");
    let handle = server.spawn().expect("spawn");
    let mut c = connect(&handle);
    let resp = c.request(&Request::Health).expect("health");
    assert_eq!(resp.status, Status::Ok);
    let body = String::from_utf8(resp.body).expect("utf-8 health");
    assert!(
        body.contains(r#"evil\"panel\\name\twith\nnewline"#),
        "panel name not escaped: {body}"
    );
    assert!(
        !body.contains("with\nnewline"),
        "raw newline leaked into JSON"
    );
    handle.shutdown_and_wait();
    let _ = std::fs::remove_dir_all(dir);
}
