//! Panel-cache behavior: LRU eviction under the memory budget,
//! evict-then-shed ordering, and fingerprint (content) keying.

use ld_core::{CancelToken, Deadline, LdEngine, LdStats, NanPolicy};
use ld_serve::registry::{PanelRegistry, PanelSource, RegistryError};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ld_serve_reg_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn write_panel(dir: &Path, name: &str, n_samples: usize, n_snps: usize, seed: u64) -> PathBuf {
    let mut state = seed | 1;
    let mut text = String::new();
    for _ in 0..n_samples {
        for _ in 0..n_snps {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            text.push(if (state >> 33) & 1 == 1 { '1' } else { '0' });
        }
        text.push('\n');
    }
    let path = dir.join(format!("{name}.txt"));
    let mut f = std::fs::File::create(&path).expect("create panel");
    f.write_all(text.as_bytes()).expect("write panel");
    path
}

fn engine() -> LdEngine {
    LdEngine::new().threads(1).nan_policy(NanPolicy::Zero)
}

/// Resident bytes of an n-SNP panel: the upper triangle incl. diagonal.
fn triangle_bytes(n: usize) -> usize {
    n * (n + 1) / 2 * 8
}

fn ctl() -> (CancelToken, Deadline) {
    (CancelToken::new(), Deadline::after(Duration::from_secs(30)))
}

const N: usize = 32; // every test panel is 32 SNPs

fn registry_with_panels(dir: &Path, budget: usize, panels: &[(&str, u64)]) -> PanelRegistry {
    let mut reg = PanelRegistry::new(engine(), budget);
    for (name, seed) in panels {
        let path = write_panel(dir, name, 24, N, *seed);
        assert!(reg.add_source(*name, PanelSource::TextFile(path)));
    }
    reg
}

#[test]
fn hits_and_misses_are_counted_and_keyed_by_content() {
    let dir = temp_dir("hits");
    let reg = registry_with_panels(&dir, 10 * triangle_bytes(N), &[("a", 1), ("b", 2)]);
    let (tok, dl) = ctl();

    let m1 = reg
        .get("a", LdStats::RSquared, &tok, dl)
        .expect("first load");
    let m2 = reg.get("a", LdStats::RSquared, &tok, dl).expect("hit");
    assert!(
        std::sync::Arc::ptr_eq(&m1, &m2),
        "hit must return the resident Arc"
    );

    // A different statistic on the same panel is a distinct cache entry.
    let _ = reg.get("a", LdStats::D, &tok, dl).expect("D load");
    // A different panel is a miss.
    let _ = reg.get("b", LdStats::RSquared, &tok, dl).expect("b load");

    let snap = reg.snapshot();
    assert_eq!(snap.resident.len(), 3);
    assert_eq!(snap.stats.hits, 1);
    assert_eq!(snap.stats.misses, 3);
    assert_eq!(snap.stats.evictions, 0);
    assert_eq!(snap.used_bytes, 3 * triangle_bytes(N));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn two_names_with_identical_content_share_one_resident_panel() {
    let dir = temp_dir("alias");
    // Same seed -> byte-identical files -> same fingerprint.
    let reg = registry_with_panels(&dir, 10 * triangle_bytes(N), &[("x", 7), ("y", 7)]);
    let (tok, dl) = ctl();

    let mx = reg.get("x", LdStats::RSquared, &tok, dl).expect("x");
    let my = reg.get("y", LdStats::RSquared, &tok, dl).expect("y");
    assert!(
        std::sync::Arc::ptr_eq(&mx, &my),
        "identical content must share one resident triangle"
    );
    let snap = reg.snapshot();
    assert_eq!(snap.resident.len(), 1, "one entry despite two names");
    assert_eq!(snap.used_bytes, triangle_bytes(N));
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn lru_eviction_removes_least_recently_used_first() {
    let dir = temp_dir("lru");
    // Budget fits exactly two resident panels.
    let reg = registry_with_panels(
        &dir,
        2 * triangle_bytes(N),
        // distinct odd seeds: `seed | 1` must not collide, or two
        // panels would share a fingerprint and alias in the cache
        &[("a", 1), ("b", 5), ("c", 9)],
    );
    let (tok, dl) = ctl();

    let ma = reg.get("a", LdStats::RSquared, &tok, dl).expect("a");
    let _mb = reg.get("b", LdStats::RSquared, &tok, dl).expect("b");
    // Touch `a` so `b` becomes least-recently-used.
    let _ = reg.get("a", LdStats::RSquared, &tok, dl).expect("a hit");
    // Admitting `c` must evict `b`, not `a`.
    let _mc = reg.get("c", LdStats::RSquared, &tok, dl).expect("c");

    let snap = reg.snapshot();
    assert_eq!(snap.stats.evictions, 1);
    assert_eq!(snap.resident.len(), 2);
    let fa = reg.meta("a").expect("a meta").fingerprint;
    let fb = reg.meta("b").expect("b meta").fingerprint;
    let fc = reg.meta("c").expect("c meta").fingerprint;
    let resident: Vec<u64> = snap.resident.iter().map(|(f, _, _)| *f).collect();
    assert!(
        resident.contains(&fa),
        "recently-touched panel must survive"
    );
    assert!(
        resident.contains(&fc),
        "newly-admitted panel must be resident"
    );
    assert!(!resident.contains(&fb), "LRU panel must be evicted");

    // The evicted panel's Arc stays usable by in-flight holders.
    assert_eq!(ma.n_snps(), N);
    // Re-requesting the evicted panel recomputes it (a miss + eviction).
    let _ = reg.get("b", LdStats::RSquared, &tok, dl).expect("b again");
    assert_eq!(reg.snapshot().stats.evictions, 2);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn evict_then_shed_order_is_respected() {
    let dir = temp_dir("shed");
    // Budget fits ONE 32-SNP panel but not the 96-SNP one.
    let big = write_panel(&temp_dir("shed_big"), "big", 24, 96, 9);
    let mut reg = registry_with_panels(&dir, triangle_bytes(N) + 64, &[("small", 1)]);
    assert!(reg.add_source("big", PanelSource::TextFile(big.clone())));
    let (tok, dl) = ctl();

    let _ = reg
        .get("small", LdStats::RSquared, &tok, dl)
        .expect("small");
    assert_eq!(reg.snapshot().resident.len(), 1);

    // The big panel cannot fit even into an empty cache: the registry
    // must FIRST evict the resident panel, THEN shed.
    let err = reg
        .get("big", LdStats::RSquared, &tok, dl)
        .expect_err("must shed");
    match err {
        RegistryError::BudgetExceeded { need, budget, .. } => {
            assert_eq!(need, triangle_bytes(96));
            assert_eq!(budget, triangle_bytes(N) + 64);
        }
        other => panic!("expected BudgetExceeded, got {other}"),
    }
    let snap = reg.snapshot();
    assert_eq!(snap.stats.evictions, 1, "eviction happens before the shed");
    assert_eq!(snap.stats.sheds, 1);
    assert_eq!(
        snap.resident.len(),
        0,
        "cache was emptied trying to make room"
    );
    assert_eq!(snap.used_bytes, 0, "failed admission must not leak budget");

    // The daemon degrades, it does not die: the small panel reloads.
    let _ = reg
        .get("small", LdStats::RSquared, &tok, dl)
        .expect("small again");
    let _ = std::fs::remove_dir_all(dir);
    if let Some(parent) = big.parent() {
        let _ = std::fs::remove_dir_all(parent);
    }
}

#[test]
fn unknown_panel_and_unparseable_source_are_typed() {
    let dir = temp_dir("typed");
    let mut reg = registry_with_panels(&dir, 10 * triangle_bytes(N), &[]);
    let garbled = dir.join("bad.txt");
    std::fs::write(&garbled, "01x01\n10101\n").expect("write garbled");
    assert!(reg.add_source("bad", PanelSource::TextFile(garbled)));
    let (tok, dl) = ctl();

    match reg.get("nope", LdStats::RSquared, &tok, dl) {
        Err(RegistryError::UnknownPanel(p)) => assert_eq!(p, "nope"),
        other => panic!("expected UnknownPanel, got {other:?}", other = other.err()),
    }
    match reg.get("bad", LdStats::RSquared, &tok, dl) {
        Err(RegistryError::Load { panel, .. }) => assert_eq!(panel, "bad"),
        other => panic!("expected Load error, got {other:?}", other = other.err()),
    }
    // A failed load must not leak reserved budget.
    assert_eq!(reg.snapshot().used_bytes, 0);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn tile_store_panels_load_with_manifest_fingerprint() {
    let dir = temp_dir("store");
    // Build a matrix, import it as a PR 8 tile store, and register both
    // the store and the equivalent text file: same content, same
    // fingerprint, one resident triangle.
    let text_path = write_panel(&dir, "flat", 24, N, 5);
    let g = {
        let f = std::fs::File::open(&text_path).expect("open");
        ld_io::text::read_matrix(std::io::BufReader::new(f)).expect("parse")
    };
    let store_dir = dir.join("store");
    ld_io::tilestore::import_to_dir(&g, 8, &store_dir).expect("import");

    let mut reg = PanelRegistry::new(engine(), 10 * triangle_bytes(N));
    assert!(reg.add_source("flat", PanelSource::TextFile(text_path)));
    assert!(reg.add_source("store", PanelSource::TileStore(store_dir.clone())));
    // `detect` classifies directories as tile stores.
    assert!(matches!(
        PanelSource::detect(&store_dir),
        PanelSource::TileStore(_)
    ));
    let (tok, dl) = ctl();

    let ms = reg
        .get("store", LdStats::RSquared, &tok, dl)
        .expect("store");
    let mt = reg.get("flat", LdStats::RSquared, &tok, dl).expect("text");
    assert!(
        std::sync::Arc::ptr_eq(&ms, &mt),
        "store and text of the same content must share one resident panel"
    );
    assert_eq!(
        reg.meta("store").expect("meta").fingerprint,
        reg.meta("flat").expect("meta").fingerprint
    );
    let _ = std::fs::remove_dir_all(dir);
}
