//! Malformed-frame corpus: every entry must yield a *typed* error
//! response (never a panic, never a wedged daemon), and the server must
//! answer a well-formed request immediately afterwards.
//!
//! Satellite of the serve PR — the wire-level analogue of the PR 8
//! store-corruption corpus in `crates/io/tests/corpus.rs`.

use ld_serve::protocol::{Request, Response, StatCode, Status, MAGIC, MAX_REQUEST_PAYLOAD};
use ld_serve::registry::{PanelRegistry, PanelSource};
use ld_serve::server::{DrainOutcome, ServeConfig, Server, ServerHandle};
use ld_serve::Client;
use std::io::Write as _;
use std::net::Shutdown;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ld_serve_corpus_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Deterministic 0/1 text panel (rows = samples).
fn write_panel(dir: &Path, name: &str, n_samples: usize, n_snps: usize, seed: u64) -> PathBuf {
    let mut state = seed | 1;
    let mut text = String::new();
    for _ in 0..n_samples {
        for _ in 0..n_snps {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            text.push(if (state >> 33) & 1 == 1 { '1' } else { '0' });
        }
        text.push('\n');
    }
    let path = dir.join(format!("{name}.txt"));
    let mut f = std::fs::File::create(&path).expect("create panel");
    f.write_all(text.as_bytes()).expect("write panel");
    path
}

fn start_server(tag: &str) -> (ServerHandle, PathBuf) {
    let dir = temp_dir(tag);
    let panel = write_panel(&dir, "toy", 16, 12, 42);
    let engine = ld_core::LdEngine::new()
        .threads(1)
        .nan_policy(ld_core::NanPolicy::Zero);
    let mut registry = PanelRegistry::new(engine, 1 << 20);
    assert!(registry.add_source("toy", PanelSource::TextFile(panel)));
    let cfg = ServeConfig {
        frame_timeout: Duration::from_millis(300),
        ..ServeConfig::default()
    };
    let server = Server::bind(cfg, registry).expect("bind");
    let handle = server.spawn().expect("spawn");
    (handle, dir)
}

fn connect(handle: &ServerHandle) -> Client {
    Client::connect(&handle.addr().to_string(), Duration::from_secs(5)).expect("connect")
}

/// A well-formed pair request must succeed — proves the daemon survived
/// whatever the corpus threw at it.
fn assert_still_serving(handle: &ServerHandle) {
    let mut c = connect(handle);
    let resp = c
        .request(&Request::Pair {
            panel: "toy".into(),
            stat: StatCode::RSquared,
            i: 0,
            j: 1,
        })
        .expect("valid request after corpus entry");
    assert_eq!(resp.status, Status::Ok, "body: {}", resp.message());
    assert_eq!(resp.body.len(), 8);
}

/// Sends raw bytes, half-closes the write side so the server sees EOF,
/// and reads whatever response (if any) comes back.
fn send_and_collect(handle: &ServerHandle, bytes: &[u8]) -> Option<Response> {
    let mut c = connect(handle);
    c.send_raw_bytes(bytes).expect("send corpus bytes");
    c.stream().shutdown(Shutdown::Write).expect("half-close");
    c.read_response().ok()
}

fn valid_payload() -> Vec<u8> {
    Request::Pair {
        panel: "toy".into(),
        stat: StatCode::RSquared,
        i: 0,
        j: 1,
    }
    .encode()
}

fn framed(payload: &[u8]) -> Vec<u8> {
    let mut b = (payload.len() as u32).to_le_bytes().to_vec();
    b.extend_from_slice(payload);
    b
}

#[test]
fn corpus_every_malformation_yields_typed_error_and_daemon_survives() {
    let (handle, dir) = start_server("sweep");

    // --- stream-level damage: typed BadRequest, then close ---------

    // 1. Truncated frame: prefix promises 100 bytes, 10 arrive then EOF.
    let mut truncated = 100u32.to_le_bytes().to_vec();
    truncated.extend_from_slice(&[0u8; 10]);
    let resp = send_and_collect(&handle, &truncated).expect("response to truncation");
    assert_eq!(resp.status, Status::BadRequest, "{}", resp.message());
    assert_still_serving(&handle);

    // 2. Oversized declared length: rejected before any allocation.
    let oversized = ((MAX_REQUEST_PAYLOAD + 1) as u32).to_le_bytes().to_vec();
    let resp = send_and_collect(&handle, &oversized).expect("response to oversize");
    assert_eq!(resp.status, Status::BadRequest, "{}", resp.message());
    assert!(resp.message().contains("oversized"), "{}", resp.message());
    assert_still_serving(&handle);

    // 3. Truncated length prefix itself (2 of 4 bytes, then EOF).
    let resp = send_and_collect(&handle, &[7, 0]).expect("response to short prefix");
    assert_eq!(resp.status, Status::BadRequest, "{}", resp.message());
    assert_still_serving(&handle);

    // --- payload-level damage: typed BadRequest, connection SURVIVES

    let payload_cases: Vec<(&str, Vec<u8>)> = vec![
        ("empty payload", Vec::new()),
        ("bad magic", {
            let mut p = valid_payload();
            p[0] ^= 0xFF;
            p
        }),
        ("bad opcode", {
            let mut p = valid_payload();
            p[4] = 0x7E;
            p
        }),
        ("bit-flipped stat byte", {
            let mut p = valid_payload();
            p[5] = 0xEE;
            p
        }),
        ("truncated body", {
            let mut p = valid_payload();
            p.truncate(p.len() - 3);
            p
        }),
        ("trailing garbage", {
            let mut p = valid_payload();
            p.extend_from_slice(b"zzz");
            p
        }),
        ("invalid utf-8 panel name", {
            let mut p = MAGIC.to_vec();
            p.push(1); // OP_PAIR
            p.push(0); // stat
            p.extend_from_slice(&2u16.to_le_bytes());
            p.extend_from_slice(&[0xFF, 0xFE]); // not UTF-8
            p.extend_from_slice(&0u32.to_le_bytes());
            p.extend_from_slice(&1u32.to_le_bytes());
            p
        }),
    ];

    for (label, payload) in payload_cases {
        let mut c = connect(&handle);
        c.send_raw_bytes(&framed(&payload)).expect("send");
        let resp = c.read_response().expect(label);
        assert_eq!(
            resp.status,
            Status::BadRequest,
            "{label}: {}",
            resp.message()
        );
        // Same connection keeps working: payload damage never poisons
        // the stream.
        let ok = c
            .request(&Request::Pair {
                panel: "toy".into(),
                stat: StatCode::RSquared,
                i: 1,
                j: 2,
            })
            .unwrap_or_else(|e| panic!("{label}: follow-up failed: {e}"));
        assert_eq!(ok.status, Status::Ok, "{label}: follow-up not Ok");
    }

    assert_still_serving(&handle);
    assert_eq!(handle.shutdown_and_wait(), DrainOutcome::Drained);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn half_open_connection_is_detected_and_reaped() {
    let (handle, dir) = start_server("halfopen");

    // Start a frame, then go silent (no close, no more bytes): the
    // frame timeout must fire and answer with a typed error.
    let mut c = connect(&handle);
    c.send_raw_bytes(&20u32.to_le_bytes()).expect("send prefix");
    c.send_raw_bytes(&[1, 2, 3]).expect("send partial body");
    // Do NOT close; just wait past the server's frame timeout.
    let resp = c.read_response().expect("typed half-open response");
    assert_eq!(resp.status, Status::BadRequest, "{}", resp.message());

    // The stalled connection consumed no worker: the pool still serves.
    assert_still_serving(&handle);
    assert_eq!(handle.shutdown_and_wait(), DrainOutcome::Drained);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn random_bitflip_sweep_never_kills_the_daemon() {
    let (handle, dir) = start_server("bitflip");
    let base = valid_payload();
    // Flip every bit of the valid payload, one at a time. Every result
    // must be a typed response (Ok for no-op flips that still decode,
    // BadRequest/NotFound otherwise) — never a dead server.
    for bit in 0..base.len() * 8 {
        let mut p = base.clone();
        p[bit / 8] ^= 1 << (bit % 8);
        let mut c = connect(&handle);
        c.send_raw_bytes(&framed(&p)).expect("send");
        let resp = c.read_response().unwrap_or_else(|e| {
            panic!("bit {bit}: no typed response ({e})");
        });
        assert!(
            matches!(
                resp.status,
                Status::Ok | Status::BadRequest | Status::NotFound
            ),
            "bit {bit}: unexpected status {:?}",
            resp.status
        );
    }
    assert_still_serving(&handle);
    assert_eq!(handle.shutdown_and_wait(), DrainOutcome::Drained);
    let _ = std::fs::remove_dir_all(dir);
}
