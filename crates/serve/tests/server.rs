//! End-to-end daemon behavior: byte-identity with the one-shot CLI
//! table writer, typed load-shedding, worker-panic isolation, deadline
//! enforcement, and the graceful drain.

use ld_core::{LdEngine, LdStats, NanPolicy};
use ld_serve::protocol::{Request, StatCode, Status};
use ld_serve::registry::{PanelRegistry, PanelSource};
use ld_serve::server::{DrainOutcome, ServeConfig, Server, ServerHandle};
use ld_serve::{request_with_retry, Client};
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::Duration;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ld_serve_e2e_{}_{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

fn write_panel(dir: &Path, name: &str, n_samples: usize, n_snps: usize, seed: u64) -> PathBuf {
    let mut state = seed | 1;
    let mut text = String::new();
    for _ in 0..n_samples {
        for _ in 0..n_snps {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            text.push(if (state >> 33) & 1 == 1 { '1' } else { '0' });
        }
        text.push('\n');
    }
    let path = dir.join(format!("{name}.txt"));
    let mut f = std::fs::File::create(&path).expect("create panel");
    f.write_all(text.as_bytes()).expect("write panel");
    path
}

fn engine() -> LdEngine {
    LdEngine::new().threads(1).nan_policy(NanPolicy::Zero)
}

fn start(tag: &str, cfg: ServeConfig) -> (ServerHandle, PathBuf) {
    let dir = temp_dir(tag);
    let panel = write_panel(&dir, "toy", 20, 16, 11);
    let mut registry = PanelRegistry::new(engine(), 1 << 20);
    assert!(registry.add_source("toy", PanelSource::TextFile(panel)));
    let handle = Server::bind(cfg, registry)
        .expect("bind")
        .spawn()
        .expect("spawn");
    (handle, dir)
}

fn connect(handle: &ServerHandle) -> Client {
    Client::connect(&handle.addr().to_string(), Duration::from_secs(10)).expect("connect")
}

fn pair_req(i: u32, j: u32) -> Request {
    Request::Pair {
        panel: "toy".into(),
        stat: StatCode::RSquared,
        i,
        j,
    }
}

/// The exact bytes `gemm-ld r2 -o` writes for this panel.
fn expected_table(dir: &Path, min_r2: f64) -> String {
    let f = std::fs::File::open(dir.join("toy.txt")).expect("open panel");
    let g = ld_io::text::read_matrix(std::io::BufReader::new(f)).expect("parse panel");
    let m = engine().stat_matrix(&g, LdStats::RSquared);
    let mut out = String::from("SNP_A\tSNP_B\tR2\n");
    for (i, j, v) in m.iter_pairs() {
        if !v.is_nan() && v >= min_r2 {
            out.push_str(&format!("snp{i}\tsnp{j}\t{v:.6}\n"));
        }
    }
    out
}

#[test]
fn region_response_is_byte_identical_to_cli_table() {
    let (handle, dir) = start("bytes", ServeConfig::default());
    let mut c = connect(&handle);
    for &min_r2 in &[0.0, 0.2, 0.5] {
        let resp = c
            .request(&Request::Region {
                panel: "toy".into(),
                stat: StatCode::RSquared,
                row0: 0,
                row1: 0, // whole panel
                min_r2,
            })
            .expect("region");
        assert_eq!(resp.status, Status::Ok, "{}", resp.message());
        assert_eq!(
            String::from_utf8(resp.body).expect("utf8"),
            expected_table(&dir, min_r2),
            "served region must match the one-shot CLI bytes (min_r2={min_r2})"
        );
    }
    assert_eq!(handle.shutdown_and_wait(), DrainOutcome::Drained);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn pair_response_matches_the_matrix_value() {
    let (handle, dir) = start("pair", ServeConfig::default());
    let f = std::fs::File::open(dir.join("toy.txt")).expect("open panel");
    let g = ld_io::text::read_matrix(std::io::BufReader::new(f)).expect("parse panel");
    let m = engine().stat_matrix(&g, LdStats::RSquared);

    let mut c = connect(&handle);
    for (i, j) in [(0u32, 1u32), (3, 7), (15, 2)] {
        let resp = c.request(&pair_req(i, j)).expect("pair");
        assert_eq!(resp.status, Status::Ok, "{}", resp.message());
        let bytes: [u8; 8] = resp.body.as_slice().try_into().expect("8-byte f64");
        let got = f64::from_bits(u64::from_le_bytes(bytes));
        assert_eq!(got, m.get(i as usize, j as usize), "pair ({i},{j})");
    }
    // Out-of-range indices: typed BadRequest, daemon keeps serving.
    let resp = c.request(&pair_req(0, 999)).expect("oob");
    assert_eq!(resp.status, Status::BadRequest);
    let resp = c.request(&pair_req(0, 1)).expect("after oob");
    assert_eq!(resp.status, Status::Ok);

    // Unknown panel: typed NotFound.
    let resp = c
        .request(&Request::Pair {
            panel: "missing".into(),
            stat: StatCode::RSquared,
            i: 0,
            j: 1,
        })
        .expect("unknown panel");
    assert_eq!(resp.status, Status::NotFound);

    assert_eq!(handle.shutdown_and_wait(), DrainOutcome::Drained);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn overload_sheds_with_typed_responses_and_recovers() {
    // One slow worker, queue depth 1: concurrent requests MUST shed.
    let cfg = ServeConfig {
        workers: 1,
        queue_depth: 1,
        inject_delay: Duration::from_millis(150),
        ..ServeConfig::default()
    };
    let (handle, dir) = start("shed", cfg);
    let addr = handle.addr().to_string();

    let clients: Vec<_> = (0..6)
        .map(|k| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr, Duration::from_secs(10)).expect("connect");
                c.request(&pair_req(0, (k + 1) as u32)).expect("response")
            })
        })
        .collect();
    let mut ok = 0usize;
    let mut shed = 0usize;
    for t in clients {
        let resp = t.join().expect("client thread");
        match resp.status {
            Status::Ok => ok += 1,
            Status::Shed => {
                shed += 1;
                assert!(
                    resp.message().contains("queue full"),
                    "shed must name the exhausted resource: {}",
                    resp.message()
                );
            }
            other => panic!("unexpected status {other:?}: {}", resp.message()),
        }
    }
    assert!(ok >= 1, "some requests must be served");
    assert!(shed >= 1, "overload must shed, not stall");

    // Load gone: the daemon recovers without restart.
    std::thread::sleep(Duration::from_millis(400));
    let mut c = connect(&handle);
    let resp = c.request(&pair_req(0, 1)).expect("after overload");
    assert_eq!(resp.status, Status::Ok);

    // A retrying client rides out the shed with jittered backoff.
    let backoff = ld_parallel::Backoff::new(Duration::from_millis(10), Duration::from_millis(100));
    let resp = request_with_retry(&addr, &pair_req(0, 2), 5, Duration::from_secs(10), &backoff)
        .expect("retry");
    assert_eq!(resp.status, Status::Ok);

    assert_eq!(handle.shutdown_and_wait(), DrainOutcome::Drained);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn worker_panic_poisons_only_that_request() {
    let cfg = ServeConfig {
        fault_panel: true,
        ..ServeConfig::default()
    };
    let (handle, dir) = start("panic", cfg);
    let mut c = connect(&handle);

    let resp = c
        .request(&Request::Pair {
            panel: "__panic__".into(),
            stat: StatCode::RSquared,
            i: 0,
            j: 1,
        })
        .expect("panic request still answered");
    assert_eq!(resp.status, Status::Internal, "{}", resp.message());
    assert!(
        resp.message().contains("isolated"),
        "message should state the containment: {}",
        resp.message()
    );

    // Same connection, next request: the pool is intact.
    let resp = c.request(&pair_req(0, 1)).expect("after panic");
    assert_eq!(resp.status, Status::Ok);

    assert_eq!(handle.shutdown_and_wait(), DrainOutcome::Drained);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn expired_deadline_yields_typed_timeout() {
    let cfg = ServeConfig {
        workers: 1,
        request_timeout: Duration::from_millis(30),
        inject_delay: Duration::from_millis(120),
        ..ServeConfig::default()
    };
    let (handle, dir) = start("deadline", cfg);
    let addr = handle.addr().to_string();

    // Two back-to-back requests on one worker: the second sits in the
    // queue past its deadline and must be answered Timeout, not run.
    let t1 = {
        let addr = addr.clone();
        std::thread::spawn(move || {
            let mut c = Client::connect(&addr, Duration::from_secs(10)).expect("c1");
            c.request(&pair_req(0, 1)).expect("r1")
        })
    };
    std::thread::sleep(Duration::from_millis(20));
    let mut c2 = connect(&handle);
    let r2 = c2.request(&pair_req(0, 2)).expect("r2");
    let r1 = t1.join().expect("t1");

    let statuses = [r1.status, r2.status];
    assert!(
        statuses.contains(&Status::Timeout),
        "a queued request past its deadline must time out, got {statuses:?}"
    );
    assert_eq!(handle.shutdown_and_wait(), DrainOutcome::Drained);
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn drain_completes_in_flight_work_with_identical_bytes() {
    let cfg = ServeConfig {
        workers: 1,
        inject_delay: Duration::from_millis(200),
        drain_timeout: Duration::from_secs(10),
        ..ServeConfig::default()
    };
    let (handle, dir) = start("drain", cfg);
    let expected = expected_table(&dir, 0.0);
    let addr = handle.addr().to_string();

    // Put a region request in flight, then trip shutdown mid-compute.
    let inflight = std::thread::spawn(move || {
        let mut c = Client::connect(&addr, Duration::from_secs(10)).expect("connect");
        c.request(&Request::Region {
            panel: "toy".into(),
            stat: StatCode::RSquared,
            row0: 0,
            row1: 0,
            min_r2: 0.0,
        })
        .expect("in-flight response")
    });
    std::thread::sleep(Duration::from_millis(60));
    let token = handle.shutdown_token();
    token.cancel_with_reason("test shutdown");

    let resp = inflight.join().expect("in-flight thread");
    assert_eq!(
        resp.status,
        Status::Ok,
        "in-flight work must complete during drain: {}",
        resp.message()
    );
    assert_eq!(
        String::from_utf8(resp.body).expect("utf8"),
        expected,
        "drained response must be byte-identical to the one-shot table"
    );
    assert_eq!(handle.wait(), DrainOutcome::Drained);

    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn drain_deadline_abandons_stragglers_with_typed_responses() {
    let cfg = ServeConfig {
        workers: 1,
        inject_delay: Duration::from_millis(800),
        drain_timeout: Duration::from_millis(50),
        ..ServeConfig::default()
    };
    let (handle, dir) = start("hard", cfg);
    let addr = handle.addr().to_string();

    // One executing + one queued, then shutdown with a drain window far
    // shorter than the injected delay.
    let threads: Vec<_> = (0..2)
        .map(|k| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&addr, Duration::from_secs(10)).expect("connect");
                c.request(&pair_req(0, (k + 1) as u32)).expect("response")
            })
        })
        .collect();
    std::thread::sleep(Duration::from_millis(100));
    handle.shutdown_token().cancel_with_reason("test shutdown");

    let outcome = handle.wait();
    assert!(
        matches!(outcome, DrainOutcome::DeadlineExceeded { abandoned } if abandoned >= 1),
        "drain must report abandoned work, got {outcome:?}"
    );
    // Every client still gets a typed response — nothing hangs.
    // (Ok if it finished, ShuttingDown if abandoned in the queue,
    // Timeout if the hard stop cancelled its compute mid-slab.)
    for t in threads {
        let resp = t.join().expect("client");
        assert!(
            matches!(
                resp.status,
                Status::Ok | Status::ShuttingDown | Status::Timeout
            ),
            "unexpected status {:?}: {}",
            resp.status,
            resp.message()
        );
    }
    let _ = std::fs::remove_dir_all(dir);
}

#[test]
fn health_reports_state_and_new_connections_refused_after_drain() {
    let (handle, dir) = start("health", ServeConfig::default());
    let mut c = connect(&handle);
    let resp = c.request(&Request::Health).expect("health");
    assert_eq!(resp.status, Status::Ok);
    let body = String::from_utf8(resp.body).expect("utf8");
    for needle in [
        "\"state\": \"serving\"",
        "\"queue_depth\"",
        "\"panels\"",
        "\"requests\"",
        "\"latency\"",
        "\"toy\"",
    ] {
        assert!(body.contains(needle), "health missing {needle}: {body}");
    }

    let addr = handle.addr();
    assert_eq!(handle.shutdown_and_wait(), DrainOutcome::Drained);
    // Listener closed: a fresh connect must fail fast.
    let refused = std::net::TcpStream::connect_timeout(&addr, Duration::from_millis(500));
    assert!(refused.is_err(), "daemon must stop accepting after drain");
    let _ = std::fs::remove_dir_all(dir);
}
