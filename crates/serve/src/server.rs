//! The daemon: listener, admission controller, worker pool, drain.
//!
//! ## Threading model
//!
//! One accept loop (the thread that calls [`Server::run`]) polls a
//! non-blocking listener. Each admitted connection gets a cheap reader
//! thread that decodes frames and *responds* — it never computes. Point
//! and region queries go through the admission controller into a
//! bounded queue consumed by a fixed worker pool; workers compute and
//! hand the response back over a channel, so a slow or dead client can
//! only ever wedge its own reader (bounded further by a write timeout),
//! never a worker.
//!
//! ## Admission and shedding
//!
//! Every query is accepted or refused *immediately*:
//!
//! * queue full → typed [`Status::Shed`] response, connection kept;
//! * panel memory budget exhausted after LRU eviction → `Shed`;
//! * per-request deadline expired while queued → [`Status::Timeout`]
//!   (counted as shed work — the queue never stalls on dead weight);
//! * daemon draining → [`Status::ShuttingDown`].
//!
//! Workers run each request under `catch_unwind`: a panic poisons only
//! that request ([`Status::Internal`]), mirroring the PR 2 containment
//! in `ld-parallel`. Each request carries a `Deadline` and a
//! `CancelToken` child of the server's hard-stop token; the fused engine
//! polls both at slab granularity.
//!
//! ## Lifecycle
//!
//! Tripping the shutdown token (SIGINT/SIGTERM in the CLI) stops the
//! accept loop, closes the listener, and drains: queued and executing
//! requests complete and their responses are written. If the drain
//! deadline expires first, the hard-stop token cancels in-flight
//! compute at the next slab boundary and remaining queued requests are
//! answered `ShuttingDown`. [`DrainOutcome`] reports which of the two
//! happened — the CLI maps it to exit code 0 (clean) or 5 (interrupted).

use crate::http;
use crate::protocol::{write_frame, ProtoError, Request, Response, Status, MAX_REQUEST_PAYLOAD};
use crate::registry::{PanelRegistry, RegistryError};
use crate::reqlog::{Event, RequestLog};
use ld_core::{CancelToken, Deadline, LdError, LdMatrix};
use ld_trace::prometheus::PromGauge;
use ld_trace::telemetry::{record_served, ServeOp, ServeOutcome};
use ld_trace::Counter;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::io::{self, Read};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::mpsc::{self, RecvTimeoutError, SyncSender};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, PoisonError};
use std::time::{Duration, Instant};

/// Daemon tuning knobs; the defaults suit a loopback test instance.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address (`host:port`; port 0 picks a free port).
    pub addr: String,
    /// Request worker threads (the compute concurrency).
    pub workers: usize,
    /// Bounded request-queue depth; one more query is a `Shed`.
    pub queue_depth: usize,
    /// Concurrent connection bound; one more connect is shed at accept.
    pub max_connections: usize,
    /// Per-request deadline, enforced in the queue and at every slab.
    pub request_timeout: Duration,
    /// Socket write timeout — a client that stops reading is abandoned
    /// after this long, freeing its reader thread.
    pub write_timeout: Duration,
    /// A started frame must complete within this window (half-open
    /// connection detection).
    pub frame_timeout: Duration,
    /// How long `run` waits for in-flight work after shutdown before
    /// abandoning it.
    pub drain_timeout: Duration,
    /// Fault-injection aid: hold every request this long in the worker
    /// before computing (makes overload and drain windows deterministic
    /// in tests and CI; zero in production).
    pub inject_delay: Duration,
    /// Fault-injection aid: a query for panel `"__panic__"` panics the
    /// worker, exercising request isolation end-to-end.
    pub fault_panel: bool,
    /// Optional plain-HTTP listener (`host:port`, port 0 picks a free
    /// port) answering `GET /metrics` with the Prometheus text
    /// exposition and `GET /health` with the health JSON.
    pub metrics_addr: Option<String>,
    /// Optional structured JSON-lines request log (append-only); one
    /// event per lifecycle transition, see [`crate::reqlog`].
    pub request_log: Option<String>,
    /// Mirror requests whose total latency exceeds this many
    /// milliseconds to stderr on their terminal log event.
    pub slow_ms: Option<u64>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            addr: "127.0.0.1:0".to_string(),
            workers: 2,
            queue_depth: 64,
            max_connections: 256,
            request_timeout: Duration::from_secs(30),
            write_timeout: Duration::from_secs(10),
            frame_timeout: Duration::from_secs(10),
            drain_timeout: Duration::from_secs(30),
            inject_delay: Duration::ZERO,
            fault_panel: false,
            metrics_addr: None,
            request_log: None,
            slow_ms: None,
        }
    }
}

/// How a drain ended.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DrainOutcome {
    /// Every accepted request was answered before shutdown completed.
    Drained,
    /// The drain deadline expired; `abandoned` accepted requests were
    /// cancelled (each still received a typed response).
    DeadlineExceeded {
        /// Requests still in flight when the deadline hit.
        abandoned: usize,
    },
}

/// One admitted query traveling from a reader thread to a worker.
struct Job {
    req: Request,
    resp_tx: SyncSender<Response>,
    accepted: Instant,
    deadline: Deadline,
    token: CancelToken,
    /// Request id threading the log events of one lifecycle together.
    id: u64,
    op: ServeOp,
    fingerprint: Option<u64>,
}

struct Shared {
    cfg: ServeConfig,
    registry: PanelRegistry,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    /// Stops the accept loop and starts the drain.
    shutdown: CancelToken,
    /// Cancels in-flight compute once the drain deadline expires.
    hard_stop: CancelToken,
    /// Accepted (queued or executing) requests not yet answered.
    in_flight: AtomicUsize,
    conns: AtomicUsize,
    started: Instant,
    /// Structured request log, when `--request-log` is set.
    reqlog: Option<RequestLog>,
    /// Next request id (log correlation only; never on the wire).
    req_ids: AtomicU64,
}

impl Shared {
    fn next_id(&self) -> u64 {
        self.req_ids.fetch_add(1, Ordering::Relaxed)
    }

    fn log(&self, ev: &Event<'_>) {
        if let Some(log) = &self.reqlog {
            log.log(ev);
        }
    }
}

/// A bound, not-yet-running daemon. [`Server::run`] blocks the calling
/// thread until shutdown; [`Server::spawn`] runs it on its own thread.
pub struct Server {
    listener: TcpListener,
    /// The metrics HTTP listener, pre-bound so `bind` fails fast on a
    /// bad `metrics_addr` and a `:0` port is resolvable before `run`.
    metrics_listener: Option<(TcpListener, SocketAddr)>,
    shared: Arc<Shared>,
}

/// Handle to a spawned server: its bound address and shutdown control.
pub struct ServerHandle {
    addr: SocketAddr,
    metrics_addr: Option<SocketAddr>,
    shutdown: CancelToken,
    join: std::thread::JoinHandle<DrainOutcome>,
}

impl ServerHandle {
    /// The bound address (resolves port 0).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The bound metrics HTTP address, when `metrics_addr` was set.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_addr
    }

    /// The token that initiates graceful shutdown when tripped.
    pub fn shutdown_token(&self) -> CancelToken {
        self.shutdown.clone()
    }

    /// Trips shutdown and waits for the drain to finish.
    pub fn shutdown_and_wait(self) -> DrainOutcome {
        self.shutdown.cancel_with_reason("shutdown requested");
        self.wait()
    }

    /// Waits for the server thread (a panic there — a bug, the request
    /// path never unwinds into it — reports as a zero-abandon timeout).
    pub fn wait(self) -> DrainOutcome {
        self.join
            .join()
            .unwrap_or(DrainOutcome::DeadlineExceeded { abandoned: 0 })
    }
}

impl Server {
    /// Binds the listener and prepares the shared state. The daemon is
    /// not serving until [`run`](Server::run) / [`spawn`](Server::spawn).
    pub fn bind(cfg: ServeConfig, registry: PanelRegistry) -> io::Result<Server> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let metrics_listener = match &cfg.metrics_addr {
            Some(addr) => {
                let l = TcpListener::bind(addr)?;
                l.set_nonblocking(true)?;
                let resolved = l.local_addr()?;
                Some((l, resolved))
            }
            None => None,
        };
        let reqlog = match &cfg.request_log {
            Some(path) => Some(RequestLog::open(Path::new(path), cfg.slow_ms)?),
            None => None,
        };
        let shared = Arc::new(Shared {
            cfg,
            registry,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: CancelToken::new(),
            hard_stop: CancelToken::new(),
            in_flight: AtomicUsize::new(0),
            conns: AtomicUsize::new(0),
            started: Instant::now(),
            reqlog,
            req_ids: AtomicU64::new(0),
        });
        Ok(Server {
            listener,
            metrics_listener,
            shared,
        })
    }

    /// The bound address (resolves a `:0` bind).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// The bound metrics HTTP address, when `metrics_addr` was set.
    pub fn metrics_addr(&self) -> Option<SocketAddr> {
        self.metrics_listener.as_ref().map(|(_, a)| *a)
    }

    /// The token that initiates graceful shutdown when tripped.
    pub fn shutdown_token(&self) -> CancelToken {
        self.shared.shutdown.clone()
    }

    /// Runs the daemon on this thread: accepts until the shutdown token
    /// trips, then drains and reports how the drain ended.
    pub fn run(self) -> DrainOutcome {
        let shared = Arc::clone(&self.shared);
        let workers: Vec<_> = (0..shared.cfg.workers.max(1))
            .map(|_| {
                let s = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&s))
            })
            .collect();

        // Scrape endpoint: keeps answering through the drain (operators
        // watch the drain happen), dies when hard_stop trips below.
        let http_thread = self.metrics_listener.map(|(listener, _)| {
            let s = Arc::clone(&shared);
            let stop = shared.hard_stop.clone();
            std::thread::spawn(move || {
                http::serve_http(listener, stop, move |path| match path {
                    "/metrics" => Some((metrics_text(&s), http::CONTENT_TYPE_PROM)),
                    "/health" => Some((health_json(&s), "application/json")),
                    _ => None,
                })
            })
        });

        // Accept loop.
        while !shared.shutdown.is_cancelled() {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    if shared.conns.load(Ordering::Relaxed) >= shared.cfg.max_connections {
                        shed_connection(stream, &shared.cfg);
                        continue;
                    }
                    shared.conns.fetch_add(1, Ordering::Relaxed);
                    let s = Arc::clone(&shared);
                    std::thread::spawn(move || {
                        connection_loop(stream, &s);
                        s.conns.fetch_sub(1, Ordering::Relaxed);
                    });
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(10));
                }
                Err(_) => std::thread::sleep(Duration::from_millis(10)),
            }
        }
        // Stop accepting: close the socket so new connects are refused.
        drop(self.listener);

        // Drain in-flight work under the drain deadline.
        let drain_until = Instant::now() + shared.cfg.drain_timeout;
        let outcome = loop {
            let pending = shared.in_flight.load(Ordering::Acquire);
            if pending == 0 {
                break DrainOutcome::Drained;
            }
            if Instant::now() >= drain_until {
                shared
                    .hard_stop
                    .cancel_with_reason("drain deadline exceeded");
                break DrainOutcome::DeadlineExceeded { abandoned: pending };
            }
            std::thread::sleep(Duration::from_millis(10));
        };

        // Release the pool: abandoned jobs get ShuttingDown responses on
        // the way out, then workers exit.
        shared.hard_stop.cancel_with_reason("server stopped");
        shared.queue_cv.notify_all();
        for w in workers {
            let _ = w.join();
        }
        if let Some(h) = http_thread {
            let _ = h.join();
        }
        outcome
    }

    /// Runs the daemon on a background thread.
    pub fn spawn(self) -> io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let metrics_addr = self.metrics_addr();
        let shutdown = self.shutdown_token();
        let join = std::thread::spawn(move || self.run());
        Ok(ServerHandle {
            addr,
            metrics_addr,
            shutdown,
            join,
        })
    }
}

/// Best-effort `Shed` for a connection over the connection bound.
fn shed_connection(stream: TcpStream, cfg: &ServeConfig) {
    let _ = stream.set_write_timeout(Some(cfg.write_timeout));
    let mut stream = stream;
    let resp = Response::error(
        Status::Shed,
        format!("connection limit reached ({})", cfg.max_connections),
    );
    ld_trace::add(Counter::RequestsShed, 1);
    let _ = write_frame(&mut stream, &resp.encode());
}

/// Why the connection read loop stopped.
enum ConnRead {
    Frame(Vec<u8>),
    /// Peer closed, or the daemon is shutting down and the connection
    /// is idle — close silently.
    Close,
    /// Stream-level damage: respond (best effort) and close.
    Fatal(ProtoError),
}

/// Reads one frame, polling so an idle connection notices shutdown and
/// a half-open one trips the frame timeout.
fn read_frame_polled(stream: &mut TcpStream, shared: &Shared) -> ConnRead {
    let mut prefix = [0u8; 4];
    let mut frame_started: Option<Instant> = None;
    if let Some(stop) = read_polled(stream, &mut prefix, &mut frame_started, shared, true) {
        return stop;
    }
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_REQUEST_PAYLOAD {
        return ConnRead::Fatal(ProtoError::Oversized {
            len: len as u64,
            max: MAX_REQUEST_PAYLOAD,
        });
    }
    let mut payload = vec![0u8; len];
    if let Some(stop) = read_polled(stream, &mut payload, &mut frame_started, shared, false) {
        return stop;
    }
    ConnRead::Frame(payload)
}

/// Fills `buf`, honoring shutdown (idle boundary only) and the frame
/// timeout (once any frame byte arrived). Returns `None` on success.
fn read_polled(
    stream: &mut TcpStream,
    buf: &mut [u8],
    frame_started: &mut Option<Instant>,
    shared: &Shared,
    at_boundary: bool,
) -> Option<ConnRead> {
    let mut filled = 0;
    while filled < buf.len() {
        if shared.hard_stop.is_cancelled() {
            return Some(ConnRead::Close);
        }
        match stream.read(&mut buf[filled..]) {
            Ok(0) => {
                return if at_boundary && filled == 0 {
                    Some(ConnRead::Close)
                } else {
                    Some(ConnRead::Fatal(ProtoError::Truncated {
                        expected: buf.len(),
                        got: filled,
                    }))
                }
            }
            Ok(n) => {
                filled += n;
                if frame_started.is_none() {
                    *frame_started = Some(Instant::now());
                }
            }
            Err(e)
                if e.kind() == io::ErrorKind::WouldBlock || e.kind() == io::ErrorKind::TimedOut =>
            {
                match *frame_started {
                    // Idle between frames: shutdown closes the connection.
                    None => {
                        if shared.shutdown.is_cancelled() {
                            return Some(ConnRead::Close);
                        }
                    }
                    // Mid-frame stall: a half-open peer trips the frame
                    // timeout and gets a typed error.
                    Some(t0) if t0.elapsed() >= shared.cfg.frame_timeout => {
                        return Some(ConnRead::Fatal(ProtoError::Truncated {
                            expected: buf.len() + if at_boundary { 0 } else { 4 },
                            got: filled,
                        }));
                    }
                    Some(_) => {}
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Some(ConnRead::Fatal(ProtoError::Io(e))),
        }
    }
    None
}

/// Serves one connection until it closes, errors, or the daemon drains.
fn connection_loop(mut stream: TcpStream, shared: &Shared) {
    if stream
        .set_read_timeout(Some(Duration::from_millis(50)))
        .is_err()
        || stream
            .set_write_timeout(Some(shared.cfg.write_timeout))
            .is_err()
    {
        return;
    }
    loop {
        let payload = match read_frame_polled(&mut stream, shared) {
            ConnRead::Frame(p) => p,
            ConnRead::Close => return,
            ConnRead::Fatal(e) => {
                let resp = Response::error(Status::BadRequest, e.to_string());
                let _ = write_frame(&mut stream, &resp.encode());
                return;
            }
        };
        let req = match Request::decode(&payload) {
            Ok(r) => r,
            Err(e) => {
                // Payload-level damage: typed error, connection survives.
                let resp = Response::error(Status::BadRequest, e.to_string());
                if write_frame(&mut stream, &resp.encode()).is_err() {
                    return;
                }
                continue;
            }
        };
        // Health, metrics, and trace dumps are answered inline on the
        // reader thread: they read shared state, never compute, and must
        // stay responsive even when the queue is saturated.
        let resp = match req {
            Request::Health => inline_request(shared, ServeOp::Health, || {
                Response::ok(health_json(shared).into_bytes())
            }),
            Request::Metrics => inline_request(shared, ServeOp::Metrics, || {
                Response::ok(metrics_text(shared).into_bytes())
            }),
            Request::DumpTrace => inline_request(shared, ServeOp::DumpTrace, dump_trace_response),
            query => dispatch_query(query, shared),
        };
        if write_frame(&mut stream, &resp.encode()).is_err() {
            // Slow or dead client: abandon the connection. The worker
            // already moved on — only this reader thread is affected.
            return;
        }
    }
}

/// Serves an opcode that never queues (`health`/`metrics`/`dump_trace`)
/// directly on the reader thread, with full telemetry and log coverage:
/// `accept` then `finish`, latency labelled by outcome.
fn inline_request(shared: &Shared, op: ServeOp, f: impl FnOnce() -> Response) -> Response {
    let id = shared.next_id();
    let t0 = Instant::now();
    shared.log(&Event {
        id,
        event: "accept",
        opcode: op.name(),
        ..Event::default()
    });
    let resp = f();
    let total_ns = elapsed_ns(t0.elapsed());
    record_served(op, outcome_of(resp.status), 0, total_ns, total_ns);
    shared.log(&Event {
        id,
        event: "finish",
        opcode: op.name(),
        status: Some(status_name(resp.status)),
        service_ns: Some(total_ns),
        total_ns: Some(total_ns),
        ..Event::default()
    });
    resp
}

/// The `dump_trace` body: a Chrome/Perfetto JSON snapshot of the live
/// recorder, or `NotFound` when no recorder is armed in this process.
fn dump_trace_response() -> Response {
    match ld_trace::recorder::snapshot_live() {
        Some(snap) => Response::ok(ld_trace::export::chrome_trace_json(&snap).into_bytes()),
        None => Response::error(
            Status::NotFound,
            "no trace recorder armed in this process (start the daemon with tracing enabled)",
        ),
    }
}

/// Admission control: enqueue or shed, then wait for the worker's answer.
fn dispatch_query(req: Request, shared: &Shared) -> Response {
    let id = shared.next_id();
    let op = op_of(&req);
    let t0 = Instant::now();
    let panel = req_panel(&req).map(str::to_string);
    let fingerprint = panel
        .as_deref()
        .and_then(|p| shared.registry.meta(p))
        .map(|m| m.fingerprint);
    shared.log(&Event {
        id,
        event: "accept",
        opcode: op.name(),
        panel: panel.as_deref(),
        fingerprint,
        ..Event::default()
    });
    if shared.shutdown.is_cancelled() {
        let total_ns = elapsed_ns(t0.elapsed());
        record_served(op, ServeOutcome::ShuttingDown, 0, 0, total_ns);
        shared.log(&Event {
            id,
            event: "finish",
            opcode: op.name(),
            status: Some("shutting_down"),
            total_ns: Some(total_ns),
            detail: Some("daemon is draining"),
            ..Event::default()
        });
        return Response::error(Status::ShuttingDown, "daemon is draining");
    }
    let (resp_tx, resp_rx) = mpsc::sync_channel::<Response>(1);
    let job = Job {
        req,
        resp_tx,
        accepted: Instant::now(),
        deadline: Deadline::after(shared.cfg.request_timeout),
        token: shared.hard_stop.child(),
        id,
        op,
        fingerprint,
    };
    {
        let mut q = lock(&shared.queue);
        if q.len() >= shared.cfg.queue_depth {
            ld_trace::add(Counter::RequestsShed, 1);
            // Shed latency is recorded too — labelled by outcome, so it
            // never pollutes the success histogram.
            let total_ns = elapsed_ns(t0.elapsed());
            record_served(op, ServeOutcome::Shed, 0, 0, total_ns);
            shared.log(&Event {
                id,
                event: "shed",
                opcode: op.name(),
                panel: panel.as_deref(),
                fingerprint,
                status: Some("shed"),
                total_ns: Some(total_ns),
                detail: Some("request queue full"),
                ..Event::default()
            });
            return Response::error(
                Status::Shed,
                format!("request queue full (depth {})", shared.cfg.queue_depth),
            );
        }
        shared.in_flight.fetch_add(1, Ordering::AcqRel);
        ld_trace::add(Counter::RequestsAccepted, 1);
        q.push_back(job);
    }
    shared.log(&Event {
        id,
        event: "admit",
        opcode: op.name(),
        panel: panel.as_deref(),
        fingerprint,
        ..Event::default()
    });
    shared.queue_cv.notify_one();
    // Generous grace over the request deadline: the worker itself
    // answers Timeout at the deadline, so this only fires if the pool
    // wedges outright — which the panic containment makes a bug, not an
    // expected path.
    let grace = shared.cfg.request_timeout + shared.cfg.drain_timeout + Duration::from_secs(5);
    match resp_rx.recv_timeout(grace) {
        Ok(resp) => resp,
        Err(RecvTimeoutError::Timeout) => {
            Response::error(Status::Timeout, "request timed out in the server")
        }
        Err(RecvTimeoutError::Disconnected) => {
            Response::error(Status::Internal, "worker abandoned the request")
        }
    }
}

/// One worker: pop, guard, compute under `catch_unwind`, answer.
fn worker_loop(shared: &Shared) {
    loop {
        let job = {
            let mut q = lock(&shared.queue);
            loop {
                if let Some(j) = q.pop_front() {
                    break j;
                }
                if shared.hard_stop.is_cancelled()
                    || (shared.shutdown.is_cancelled() && q.is_empty())
                {
                    return;
                }
                let (guard, _) = shared
                    .queue_cv
                    .wait_timeout(q, Duration::from_millis(50))
                    .unwrap_or_else(PoisonError::into_inner);
                q = guard;
            }
        };
        let queue_ns = elapsed_ns(job.accepted.elapsed());
        let panel = req_panel(&job.req);
        let mut ran = false;
        let mut service_ns = 0u64;
        let resp = if shared.hard_stop.is_cancelled() {
            Response::error(
                Status::ShuttingDown,
                "drain deadline exceeded before the request ran",
            )
        } else if job.deadline.expired() {
            // Shed, don't stall: dead weight never reaches a worker.
            Response::error(Status::Timeout, "deadline expired in the request queue")
        } else {
            ran = true;
            shared.log(&Event {
                id: job.id,
                event: "start",
                opcode: job.op.name(),
                panel,
                fingerprint: job.fingerprint,
                queue_ns: Some(queue_ns),
                ..Event::default()
            });
            let svc0 = Instant::now();
            if !shared.cfg.inject_delay.is_zero() {
                std::thread::sleep(shared.cfg.inject_delay);
            }
            let outcome = catch_unwind(AssertUnwindSafe(|| handle_query(&job, shared)));
            service_ns = elapsed_ns(svc0.elapsed());
            outcome.unwrap_or_else(|payload| {
                let msg = panic_message(payload.as_ref()).to_string();
                shared.log(&Event {
                    id: job.id,
                    event: "panic",
                    opcode: job.op.name(),
                    panel,
                    fingerprint: job.fingerprint,
                    detail: Some(&msg),
                    ..Event::default()
                });
                Response::error(
                    Status::Internal,
                    format!(
                        "worker panicked handling the request: {msg} (request isolated; \
                         the pool keeps serving)"
                    ),
                )
            })
        };
        match resp.status {
            Status::Shed | Status::Timeout | Status::ShuttingDown => {
                ld_trace::add(Counter::RequestsShed, 1);
            }
            Status::Internal => ld_trace::add(Counter::RequestsFailed, 1),
            _ => {}
        }
        let total_ns = elapsed_ns(job.accepted.elapsed());
        // Outcome-labelled latency: only Ok feeds the legacy success
        // histogram; shed/timeout/error land in their own series.
        record_served(
            job.op,
            outcome_of(resp.status),
            queue_ns,
            if ran { service_ns } else { 0 },
            total_ns,
        );
        // Terminal log event: a queue-deadline expiry is `timeout`;
        // everything else (including a contained panic) closes with
        // `finish` carrying the terminal status.
        let event = if !ran && resp.status == Status::Timeout {
            "timeout"
        } else {
            "finish"
        };
        shared.log(&Event {
            id: job.id,
            event,
            opcode: job.op.name(),
            panel,
            fingerprint: job.fingerprint,
            status: Some(status_name(resp.status)),
            queue_ns: Some(queue_ns),
            service_ns: if ran { Some(service_ns) } else { None },
            total_ns: Some(total_ns),
            ..Event::default()
        });
        let _ = job.resp_tx.try_send(resp);
        shared.in_flight.fetch_sub(1, Ordering::AcqRel);
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

/// Computes the answer for an admitted query. Runs inside
/// `catch_unwind`; every error path returns a typed response.
fn handle_query(job: &Job, shared: &Shared) -> Response {
    match &job.req {
        // Inline opcodes never reach the queue; answering them here too
        // keeps a misrouted job harmless rather than a panic.
        Request::Health => Response::ok(health_json(shared).into_bytes()),
        Request::Metrics => Response::ok(metrics_text(shared).into_bytes()),
        Request::DumpTrace => dump_trace_response(),
        Request::Pair { panel, stat, i, j } => {
            if shared.cfg.fault_panel && panel == "__panic__" {
                panic!("fault injection: __panic__ panel requested");
            }
            let m = match shared
                .registry
                .get(panel, stat.to_stat(), &job.token, job.deadline)
            {
                Ok(m) => m,
                Err(e) => return registry_response(&e),
            };
            let (i, j) = (*i as usize, *j as usize);
            let n = m.n_snps();
            if i >= n || j >= n {
                return Response::error(
                    Status::BadRequest,
                    format!("pair ({i}, {j}) out of range: panel has {n} SNPs"),
                );
            }
            Response::ok(m.get(i, j).to_bits().to_le_bytes().to_vec())
        }
        Request::Region {
            panel,
            stat,
            row0,
            row1,
            min_r2,
        } => {
            if shared.cfg.fault_panel && panel == "__panic__" {
                panic!("fault injection: __panic__ panel requested");
            }
            let m = match shared
                .registry
                .get(panel, stat.to_stat(), &job.token, job.deadline)
            {
                Ok(m) => m,
                Err(e) => return registry_response(&e),
            };
            let n = m.n_snps();
            let (r0, r1) = if *row0 == 0 && *row1 == 0 {
                (0, n)
            } else {
                (*row0 as usize, *row1 as usize)
            };
            if r0 >= r1 || r1 > n {
                return Response::error(
                    Status::BadRequest,
                    format!("region [{r0}, {r1}) out of range: panel has {n} SNPs"),
                );
            }
            Response::ok(region_table(&m, r0, r1, *min_r2).into_bytes())
        }
    }
}

/// Formats the pair table of rows `[r0, r1)` — for the whole panel these
/// are the exact bytes `gemm-ld r2 -o` writes, which the CI serve leg
/// asserts byte-for-byte.
fn region_table(m: &LdMatrix, r0: usize, r1: usize, min_r2: f64) -> String {
    let mut out = String::with_capacity(64 + (r1 - r0) * 24);
    out.push_str("SNP_A\tSNP_B\tR2\n");
    for i in r0..r1 {
        for j in (i + 1)..r1 {
            let v = m.get(i, j);
            if !v.is_nan() && v >= min_r2 {
                let _ = writeln!(out, "snp{i}\tsnp{j}\t{v:.6}");
            }
        }
    }
    out
}

/// Maps registry failures onto the wire status taxonomy.
fn registry_response(e: &RegistryError) -> Response {
    match e {
        RegistryError::UnknownPanel(_) => Response::error(Status::NotFound, e.to_string()),
        // evict-then-shed: eviction already happened inside the registry
        RegistryError::BudgetExceeded { .. } => Response::error(Status::Shed, e.to_string()),
        RegistryError::Busy { .. } => Response::error(Status::Timeout, e.to_string()),
        RegistryError::Compute(LdError::Cancelled { reason, .. }) => Response::error(
            Status::Timeout,
            format!("panel compute cancelled: {reason}"),
        ),
        RegistryError::Load { .. } | RegistryError::Compute(_) => {
            Response::error(Status::Internal, e.to_string())
        }
    }
}

/// The telemetry opcode label for a request.
fn op_of(req: &Request) -> ServeOp {
    match req {
        Request::Health => ServeOp::Health,
        Request::Pair { .. } => ServeOp::Pair,
        Request::Region { .. } => ServeOp::Region,
        Request::Metrics => ServeOp::Metrics,
        Request::DumpTrace => ServeOp::DumpTrace,
    }
}

/// The panel a request addresses, when it addresses one.
fn req_panel(req: &Request) -> Option<&str> {
    match req {
        Request::Pair { panel, .. } | Request::Region { panel, .. } => Some(panel),
        Request::Health | Request::Metrics | Request::DumpTrace => None,
    }
}

/// Maps the wire status onto the telemetry outcome label.
fn outcome_of(status: Status) -> ServeOutcome {
    match status {
        Status::Ok => ServeOutcome::Ok,
        Status::Shed => ServeOutcome::Shed,
        Status::BadRequest => ServeOutcome::BadRequest,
        Status::NotFound => ServeOutcome::NotFound,
        Status::Internal => ServeOutcome::Internal,
        Status::Timeout => ServeOutcome::Timeout,
        Status::ShuttingDown => ServeOutcome::ShuttingDown,
    }
}

/// Stable lowercase status name for log lines (same vocabulary as the
/// telemetry outcome labels).
fn status_name(status: Status) -> &'static str {
    outcome_of(status).name()
}

fn elapsed_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// The Prometheus text exposition: every `ld-trace` counter, the
/// outcome/opcode/queue histograms and rolling windows, plus live
/// server gauges (queue, pool, connections, registry occupancy).
fn metrics_text(shared: &Shared) -> String {
    let snap = shared.registry.snapshot();
    let mut gauges = vec![
        PromGauge::new(
            "gemm_ld_uptime_seconds",
            "Seconds since the daemon started",
            shared.started.elapsed().as_secs_f64(),
        ),
        PromGauge::new(
            "gemm_ld_draining",
            "1 while the daemon is draining, 0 while serving",
            u8::from(shared.shutdown.is_cancelled()) as f64,
        ),
        PromGauge::new(
            "gemm_ld_queue_depth",
            "Jobs waiting in the request queue",
            lock(&shared.queue).len() as f64,
        ),
        PromGauge::new(
            "gemm_ld_in_flight_requests",
            "Accepted requests not yet answered",
            shared.in_flight.load(Ordering::Relaxed) as f64,
        ),
        PromGauge::new(
            "gemm_ld_connections",
            "Open client connections",
            shared.conns.load(Ordering::Relaxed) as f64,
        ),
        PromGauge::new(
            "gemm_ld_workers",
            "Request worker threads",
            shared.cfg.workers.max(1) as f64,
        ),
        PromGauge::new(
            "gemm_ld_panels_resident",
            "Panels resident in the registry cache",
            snap.resident.len() as f64,
        ),
        PromGauge::new(
            "gemm_ld_registry_used_bytes",
            "Bytes of resident panel matrices",
            snap.used_bytes as f64,
        ),
        PromGauge::new(
            "gemm_ld_registry_budget_bytes",
            "Registry memory budget",
            snap.budget_bytes as f64,
        ),
    ];
    for (fingerprint, _stats, bytes) in &snap.resident {
        gauges.push(PromGauge {
            name: "gemm_ld_panel_resident_bytes".into(),
            help: "Resident bytes per panel, labelled by checkpoint fingerprint",
            labels: format!("fingerprint=\"{fingerprint:016x}\""),
            value: *bytes as f64,
        });
    }
    ld_trace::prometheus::render_global(&gauges)
}

/// The `health` body: live queue/pool state, registry occupancy, the
/// serve counters and latency quantiles from `ld-trace`.
fn health_json(shared: &Shared) -> String {
    let snap = shared.registry.snapshot();
    let lat = ld_trace::LatencySummary::capture();
    let state = if shared.shutdown.is_cancelled() {
        "draining"
    } else {
        "serving"
    };
    let mut s = String::with_capacity(512);
    s.push('{');
    let _ = write!(s, "\"state\": \"{state}\"");
    let _ = write!(
        s,
        ", \"uptime_ms\": {}",
        shared.started.elapsed().as_millis()
    );
    let _ = write!(s, ", \"queue_depth\": {}", lock(&shared.queue).len());
    let _ = write!(
        s,
        ", \"in_flight\": {}",
        shared.in_flight.load(Ordering::Relaxed)
    );
    let _ = write!(s, ", \"workers\": {}", shared.cfg.workers.max(1));
    let _ = write!(
        s,
        ", \"connections\": {}",
        shared.conns.load(Ordering::Relaxed)
    );
    s.push_str(", \"panels\": {\"registered\": [");
    for (i, name) in snap.sources.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        // the one shared escaping helper — also used by the request log
        let _ = write!(s, "\"{}\"", ld_trace::escape_json(name));
    }
    let _ = write!(
        s,
        "], \"resident\": {}, \"used_bytes\": {}, \"budget_bytes\": {}, \
         \"hits\": {}, \"misses\": {}, \"evictions\": {}, \"sheds\": {}}}",
        snap.resident.len(),
        snap.used_bytes,
        snap.budget_bytes,
        snap.stats.hits,
        snap.stats.misses,
        snap.stats.evictions,
        snap.stats.sheds,
    );
    let _ = write!(
        s,
        ", \"requests\": {{\"accepted\": {}, \"shed\": {}, \"failed\": {}, \
         \"panels_evicted\": {}}}",
        ld_trace::get(Counter::RequestsAccepted),
        ld_trace::get(Counter::RequestsShed),
        ld_trace::get(Counter::RequestsFailed),
        ld_trace::get(Counter::PanelsEvicted),
    );
    let _ = write!(s, ", \"latency\": {{\"count\": {}", lat.count);
    match lat.p50_ns() {
        Some(v) => {
            let _ = write!(s, ", \"p50_ns\": {v}");
        }
        None => s.push_str(", \"p50_ns\": null"),
    }
    match lat.p99_ns() {
        Some(v) => {
            let _ = write!(s, ", \"p99_ns\": {v}");
        }
        None => s.push_str(", \"p99_ns\": null"),
    }
    s.push_str("}}");
    s
}

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}
