//! Minimal plain-HTTP/1.0 endpoint for Prometheus scrapes.
//!
//! Deliberately tiny: `GET /metrics` and `GET /health` only, one
//! response per connection (`Connection: close`), no keep-alive, no
//! TLS, no chunking. A scraper is the only intended client; the LDS1
//! socket remains the real API. Each connection is handled on its own
//! short-lived thread with read/write timeouts so a stalled scraper
//! can never block the next scrape, and the accept loop polls the
//! daemon's stop token so the listener dies with the server.

use ld_core::CancelToken;
use std::io::{Read, Write};
use std::net::{TcpListener, TcpStream};
use std::time::{Duration, Instant};

/// Content type of the Prometheus text exposition format v0.0.4.
pub(crate) const CONTENT_TYPE_PROM: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Largest request head (request line + headers) we bother reading.
const MAX_HEAD: usize = 8 * 1024;

/// Accepts scrape connections until `stop` trips. `render` maps a
/// request path to `(body, content-type)`, or `None` for 404; it runs
/// on the per-connection thread, so it may take locks but must not
/// block indefinitely.
pub(crate) fn serve_http<F>(listener: TcpListener, stop: CancelToken, render: F)
where
    F: Fn(&str) -> Option<(String, &'static str)> + Send + Sync + Clone + 'static,
{
    while !stop.is_cancelled() {
        match listener.accept() {
            Ok((stream, _peer)) => {
                let render = render.clone();
                std::thread::spawn(move || handle(stream, &render));
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(50));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(50)),
        }
    }
}

/// Serves exactly one request on `stream`; every error path just drops
/// the connection (the scraper retries on its next interval).
fn handle<F>(mut stream: TcpStream, render: &F)
where
    F: Fn(&str) -> Option<(String, &'static str)>,
{
    let timeout = Some(Duration::from_secs(2));
    if stream.set_read_timeout(timeout).is_err() || stream.set_write_timeout(timeout).is_err() {
        return;
    }
    let head = match read_head(&mut stream) {
        Some(h) => h,
        None => return,
    };
    let request_line = head.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let (method, path) = match (parts.next(), parts.next()) {
        (Some(m), Some(p)) => (m, p),
        _ => return,
    };
    let (status, body, ctype) = if method != "GET" {
        (
            "405 Method Not Allowed",
            "only GET is supported\n".to_string(),
            "text/plain; charset=utf-8",
        )
    } else {
        // strip any query string: scrapers sometimes append one
        let path = path.split('?').next().unwrap_or(path);
        match render(path) {
            Some((body, ctype)) => ("200 OK", body, ctype),
            None => (
                "404 Not Found",
                "try /metrics or /health\n".to_string(),
                "text/plain; charset=utf-8",
            ),
        }
    };
    let _ = write!(
        stream,
        "HTTP/1.0 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

/// Reads until the end of the request head (`\r\n\r\n`), `MAX_HEAD`
/// bytes, or a 2-second budget — whichever comes first.
fn read_head(stream: &mut TcpStream) -> Option<String> {
    let started = Instant::now();
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_HEAD {
            break;
        }
        if started.elapsed() > Duration::from_secs(2) {
            return None;
        }
        match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                return None
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(_) => return None,
        }
    }
    String::from_utf8(buf).ok()
}
