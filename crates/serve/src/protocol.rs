//! The `LDS1` wire protocol: length-prefixed frames, strictly decoded.
//!
//! Every message — request or response — is one frame:
//!
//! ```text
//! ┌──────────────┬───────────────────────────────┐
//! │ len: u32 LE  │ payload (len bytes)           │
//! └──────────────┴───────────────────────────────┘
//! payload: [ magic "LDS1" (4) ][ opcode/status (1) ][ body ... ]
//! ```
//!
//! Requests are tiny and bounded ([`MAX_REQUEST_PAYLOAD`]); responses
//! carry pair tables and are bounded only by [`MAX_RESPONSE_PAYLOAD`].
//! All integers are little-endian; `min_r2` travels as raw `f64` bits so
//! a threshold round-trips exactly.
//!
//! Decoding is **strict and total**: every malformed byte sequence maps
//! to a typed [`ProtoError`] naming what is wrong (bad magic, unknown
//! opcode, truncated body, trailing garbage, non-UTF-8 panel name …) —
//! never a panic, never a silent truncation. The server answers a
//! decode failure with a [`Status::BadRequest`] response carrying the
//! error text and keeps the connection; only a corrupt *length prefix*
//! (oversized frame) forces a close, because the stream can no longer
//! be re-synchronized. The malformed-frame corpus in `tests/corpus.rs`
//! walks exactly these guarantees.

use std::fmt;
use std::io::{self, Read, Write};

/// Frame payload magic; rejects line-oriented or foreign traffic early.
pub const MAGIC: [u8; 4] = *b"LDS1";

/// Upper bound on a request payload. Requests carry at most a statistic
/// code, four integers and a panel name, so anything larger is garbage
/// — and bounding the prefix means a hostile client cannot make the
/// server allocate by sending a huge length.
pub const MAX_REQUEST_PAYLOAD: usize = 4 * 1024;

/// Upper bound on a response payload a client will accept (region pair
/// tables are large; 1 GiB is far above any panel the daemon serves).
pub const MAX_RESPONSE_PAYLOAD: usize = 1 << 30;

/// Statistic selector carried by queries (mirrors `ld_core::LdStats`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, Default)]
#[repr(u8)]
pub enum StatCode {
    /// Squared Pearson correlation r².
    #[default]
    RSquared = 0,
    /// Raw disequilibrium coefficient D.
    D = 1,
    /// Lewontin's D′.
    DPrime = 2,
}

impl StatCode {
    /// Decodes a wire byte.
    pub fn from_u8(b: u8) -> Result<Self, ProtoError> {
        match b {
            0 => Ok(StatCode::RSquared),
            1 => Ok(StatCode::D),
            2 => Ok(StatCode::DPrime),
            other => Err(ProtoError::BadStat(other)),
        }
    }

    /// The engine-side statistic this code selects.
    pub fn to_stat(self) -> ld_core::LdStats {
        match self {
            StatCode::RSquared => ld_core::LdStats::RSquared,
            StatCode::D => ld_core::LdStats::D,
            StatCode::DPrime => ld_core::LdStats::DPrime,
        }
    }
}

/// A decoded client request.
#[derive(Clone, Debug, PartialEq)]
pub enum Request {
    /// Liveness + stats probe; answered inline, never queued.
    Health,
    /// One LD value for SNP pair `(i, j)` of `panel`.
    Pair {
        /// Registered panel name.
        panel: String,
        /// Statistic to compute.
        stat: StatCode,
        /// First SNP index.
        i: u32,
        /// Second SNP index.
        j: u32,
    },
    /// The pair table of rows `[row0, row1)` of `panel` — the exact
    /// bytes `gemm-ld r2` writes for that region (header included).
    Region {
        /// Registered panel name.
        panel: String,
        /// Statistic to compute.
        stat: StatCode,
        /// First row of the half-open region.
        row0: u32,
        /// One past the last row (0 = the whole panel).
        row1: u32,
        /// Threshold: pairs with `value < min_r2` (or NaN) are omitted.
        min_r2: f64,
    },
    /// Prometheus text exposition (v0.0.4) of every counter, gauge and
    /// histogram; answered inline, never queued. Same bytes the
    /// `--metrics-addr` HTTP listener serves on `GET /metrics`.
    Metrics,
    /// Live flight-recorder snapshot as Chrome trace-event JSON
    /// (Perfetto-loadable); answered inline without disarming the
    /// recorder. `NotFound` when no recorder is armed.
    DumpTrace,
}

const OP_HEALTH: u8 = 0;
const OP_PAIR: u8 = 1;
const OP_REGION: u8 = 2;
const OP_METRICS: u8 = 3;
const OP_DUMP_TRACE: u8 = 4;

impl Request {
    /// Encodes the request payload (frame it with [`write_frame`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(32);
        p.extend_from_slice(&MAGIC);
        match self {
            Request::Health => p.push(OP_HEALTH),
            Request::Metrics => p.push(OP_METRICS),
            Request::DumpTrace => p.push(OP_DUMP_TRACE),
            Request::Pair { panel, stat, i, j } => {
                p.push(OP_PAIR);
                p.push(*stat as u8);
                p.extend_from_slice(&i.to_le_bytes());
                p.extend_from_slice(&j.to_le_bytes());
                put_name(&mut p, panel);
            }
            Request::Region {
                panel,
                stat,
                row0,
                row1,
                min_r2,
            } => {
                p.push(OP_REGION);
                p.push(*stat as u8);
                p.extend_from_slice(&row0.to_le_bytes());
                p.extend_from_slice(&row1.to_le_bytes());
                p.extend_from_slice(&min_r2.to_bits().to_le_bytes());
                put_name(&mut p, panel);
            }
        }
        p
    }

    /// Strictly decodes a request payload.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtoError> {
        let mut c = Cursor::new(payload);
        let magic = c.bytes::<4>()?;
        if magic != MAGIC {
            return Err(ProtoError::BadMagic(magic));
        }
        let op = c.u8()?;
        let req = match op {
            OP_HEALTH => Request::Health,
            OP_METRICS => Request::Metrics,
            OP_DUMP_TRACE => Request::DumpTrace,
            OP_PAIR => {
                let stat = StatCode::from_u8(c.u8()?)?;
                let i = c.u32()?;
                let j = c.u32()?;
                let panel = c.name()?;
                Request::Pair { panel, stat, i, j }
            }
            OP_REGION => {
                let stat = StatCode::from_u8(c.u8()?)?;
                let row0 = c.u32()?;
                let row1 = c.u32()?;
                let min_r2 = f64::from_bits(c.u64()?);
                let panel = c.name()?;
                Request::Region {
                    panel,
                    stat,
                    row0,
                    row1,
                    min_r2,
                }
            }
            other => return Err(ProtoError::BadOpcode(other)),
        };
        c.finish()?;
        Ok(req)
    }
}

/// Response status — the typed outcome taxonomy every reply leads with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum Status {
    /// The query succeeded; the body is the result.
    Ok = 0,
    /// Admission control rejected the request — queue full, or the
    /// panel memory budget is exhausted even after eviction. Retry
    /// with backoff; the body names the exhausted resource.
    Shed = 1,
    /// The frame decoded but the request is unusable (malformed frame,
    /// unknown statistic, out-of-range indices).
    BadRequest = 2,
    /// The named panel is not registered with this daemon.
    NotFound = 3,
    /// The request was accepted but failed inside the server (worker
    /// panic, panel load failure). The request was isolated; the
    /// server keeps serving.
    Internal = 4,
    /// The per-request deadline expired before the result was ready.
    Timeout = 5,
    /// The daemon is draining and no longer accepts new work.
    ShuttingDown = 6,
}

impl Status {
    /// Decodes a wire byte.
    pub fn from_u8(b: u8) -> Result<Self, ProtoError> {
        Ok(match b {
            0 => Status::Ok,
            1 => Status::Shed,
            2 => Status::BadRequest,
            3 => Status::NotFound,
            4 => Status::Internal,
            5 => Status::Timeout,
            6 => Status::ShuttingDown,
            other => return Err(ProtoError::BadStatus(other)),
        })
    }

    /// Stable lowercase name (used in logs and the bench report).
    pub fn name(self) -> &'static str {
        match self {
            Status::Ok => "ok",
            Status::Shed => "shed",
            Status::BadRequest => "bad-request",
            Status::NotFound => "not-found",
            Status::Internal => "internal",
            Status::Timeout => "timeout",
            Status::ShuttingDown => "shutting-down",
        }
    }
}

/// A decoded server response: a typed status plus a status-specific
/// body (result bytes for [`Status::Ok`], a UTF-8 message otherwise).
#[derive(Clone, Debug, PartialEq)]
pub struct Response {
    /// Outcome class.
    pub status: Status,
    /// Result bytes (`Ok`) or a human-readable error message.
    pub body: Vec<u8>,
}

impl Response {
    /// An `Ok` response carrying `body`.
    pub fn ok(body: Vec<u8>) -> Self {
        Self {
            status: Status::Ok,
            body,
        }
    }

    /// An error response with a message body.
    pub fn error(status: Status, message: impl Into<String>) -> Self {
        Self {
            status,
            body: message.into().into_bytes(),
        }
    }

    /// The body as UTF-8 (error messages; lossy for robustness).
    pub fn message(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }

    /// Encodes the response payload (frame it with [`write_frame`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut p = Vec::with_capacity(5 + self.body.len());
        p.extend_from_slice(&MAGIC);
        p.push(self.status as u8);
        p.extend_from_slice(&self.body);
        p
    }

    /// Strictly decodes a response payload.
    pub fn decode(payload: &[u8]) -> Result<Self, ProtoError> {
        let mut c = Cursor::new(payload);
        let magic = c.bytes::<4>()?;
        if magic != MAGIC {
            return Err(ProtoError::BadMagic(magic));
        }
        let status = Status::from_u8(c.u8()?)?;
        Ok(Response {
            status,
            body: c.rest().to_vec(),
        })
    }
}

/// Why a frame or payload failed to decode. Every variant renders a
/// located, human-readable message — this text is what travels back in
/// a [`Status::BadRequest`] body.
#[derive(Debug)]
pub enum ProtoError {
    /// The transport failed mid-frame.
    Io(io::Error),
    /// The peer closed the connection cleanly between frames.
    Closed,
    /// The peer closed (or stalled past the frame deadline) mid-frame.
    Truncated {
        /// Bytes expected still on the wire.
        expected: usize,
        /// Bytes actually received.
        got: usize,
    },
    /// The length prefix exceeds the admissible payload size; the
    /// stream cannot be re-synchronized and must be closed.
    Oversized {
        /// Declared payload length.
        len: u64,
        /// Maximum admissible payload.
        max: usize,
    },
    /// The payload is shorter than a fixed field requires.
    Short {
        /// Bytes the field needs.
        need: usize,
        /// Bytes remaining.
        got: usize,
    },
    /// The payload does not start with `LDS1`.
    BadMagic([u8; 4]),
    /// Unknown request opcode.
    BadOpcode(u8),
    /// Unknown response status byte.
    BadStatus(u8),
    /// Unknown statistic selector.
    BadStat(u8),
    /// The panel name is not valid UTF-8.
    BadName,
    /// Decoding finished with unconsumed payload bytes.
    Trailing {
        /// Leftover byte count.
        extra: usize,
    },
}

impl ProtoError {
    /// True when the *stream* is beyond recovery (corrupt length prefix
    /// or transport failure) and the connection must be closed after
    /// the error response; payload-level errors keep the connection.
    pub fn poisons_stream(&self) -> bool {
        matches!(
            self,
            ProtoError::Io(_)
                | ProtoError::Closed
                | ProtoError::Truncated { .. }
                | ProtoError::Oversized { .. }
        )
    }
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Io(e) => write!(f, "transport error: {e}"),
            ProtoError::Closed => write!(f, "connection closed"),
            ProtoError::Truncated { expected, got } => {
                write!(f, "truncated frame: expected {expected} bytes, got {got}")
            }
            ProtoError::Oversized { len, max } => {
                write!(f, "oversized frame: {len} bytes declared, max {max}")
            }
            ProtoError::Short { need, got } => {
                write!(f, "short payload: field needs {need} bytes, {got} left")
            }
            ProtoError::BadMagic(m) => write!(f, "bad magic {m:02x?} (expected \"LDS1\")"),
            ProtoError::BadOpcode(b) => write!(f, "unknown opcode {b}"),
            ProtoError::BadStatus(b) => write!(f, "unknown status byte {b}"),
            ProtoError::BadStat(b) => write!(f, "unknown statistic code {b} (0=r2 1=d 2=dprime)"),
            ProtoError::BadName => write!(f, "panel name is not valid UTF-8"),
            ProtoError::Trailing { extra } => {
                write!(f, "{extra} trailing bytes after a complete request")
            }
        }
    }
}

impl std::error::Error for ProtoError {}

impl From<io::Error> for ProtoError {
    fn from(e: io::Error) -> Self {
        ProtoError::Io(e)
    }
}

/// Writes one frame (length prefix + payload).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidInput, "payload exceeds u32 framing"))?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame payload, admitting at most `max` bytes.
///
/// A clean EOF *before* any prefix byte is [`ProtoError::Closed`]; EOF
/// mid-prefix or mid-payload is [`ProtoError::Truncated`]. An admissible
/// read timeout surfaces as `Io` — the server's connection loop converts
/// idle-poll timeouts into shutdown checks and mid-frame timeouts into a
/// half-open-connection error.
pub fn read_frame(r: &mut impl Read, max: usize) -> Result<Vec<u8>, ProtoError> {
    let mut prefix = [0u8; 4];
    read_exact_or(r, &mut prefix, true)?;
    let len = u32::from_le_bytes(prefix) as usize;
    if len > max {
        return Err(ProtoError::Oversized {
            len: len as u64,
            max,
        });
    }
    let mut payload = vec![0u8; len];
    read_exact_or(r, &mut payload, false)?;
    Ok(payload)
}

/// `read_exact` distinguishing clean close (only when `at_boundary` and
/// zero bytes arrived) from mid-frame truncation.
fn read_exact_or(r: &mut impl Read, buf: &mut [u8], at_boundary: bool) -> Result<(), ProtoError> {
    let mut filled = 0;
    while filled < buf.len() {
        match r.read(&mut buf[filled..]) {
            Ok(0) => {
                return if at_boundary && filled == 0 {
                    Err(ProtoError::Closed)
                } else {
                    Err(ProtoError::Truncated {
                        expected: buf.len(),
                        got: filled,
                    })
                }
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(e) => return Err(ProtoError::Io(e)),
        }
    }
    Ok(())
}

fn put_name(p: &mut Vec<u8>, name: &str) {
    let bytes = name.as_bytes();
    let len = bytes.len().min(u16::MAX as usize) as u16;
    p.extend_from_slice(&len.to_le_bytes());
    p.extend_from_slice(&bytes[..len as usize]);
}

/// Strict little-endian payload reader.
struct Cursor<'a> {
    data: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(data: &'a [u8]) -> Self {
        Self { data, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], ProtoError> {
        let got = self.data.len() - self.pos;
        if got < n {
            return Err(ProtoError::Short { need: n, got });
        }
        let s = &self.data[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    fn bytes<const N: usize>(&mut self) -> Result<[u8; N], ProtoError> {
        let mut out = [0u8; N];
        out.copy_from_slice(self.take(N)?);
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, ProtoError> {
        Ok(u16::from_le_bytes(self.bytes::<2>()?))
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        Ok(u32::from_le_bytes(self.bytes::<4>()?))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        Ok(u64::from_le_bytes(self.bytes::<8>()?))
    }

    fn name(&mut self) -> Result<String, ProtoError> {
        let len = self.u16()? as usize;
        let bytes = self.take(len)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| ProtoError::BadName)
    }

    fn rest(&mut self) -> &'a [u8] {
        let s = &self.data[self.pos..];
        self.pos = self.data.len();
        s
    }

    fn finish(self) -> Result<(), ProtoError> {
        let extra = self.data.len() - self.pos;
        if extra != 0 {
            return Err(ProtoError::Trailing { extra });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(req: Request) {
        assert_eq!(Request::decode(&req.encode()).unwrap(), req);
    }

    #[test]
    fn requests_roundtrip() {
        roundtrip(Request::Health);
        roundtrip(Request::Metrics);
        roundtrip(Request::DumpTrace);
        roundtrip(Request::Pair {
            panel: "p1".into(),
            stat: StatCode::D,
            i: 3,
            j: 9,
        });
        roundtrip(Request::Region {
            panel: "panel-α".into(),
            stat: StatCode::DPrime,
            row0: 0,
            row1: 100,
            min_r2: 0.25,
        });
    }

    #[test]
    fn min_r2_bits_roundtrip_exactly() {
        let r = Request::Region {
            panel: "p".into(),
            stat: StatCode::RSquared,
            row0: 0,
            row1: 0,
            min_r2: 0.1 + 0.2, // not representable: bits must survive
        };
        match Request::decode(&r.encode()).unwrap() {
            Request::Region { min_r2, .. } => {
                assert_eq!(min_r2.to_bits(), (0.1f64 + 0.2).to_bits())
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn responses_roundtrip() {
        let r = Response::ok(b"SNP_A\tSNP_B\tR2\n".to_vec());
        assert_eq!(Response::decode(&r.encode()).unwrap(), r);
        let e = Response::error(Status::Shed, "queue full (depth 8)");
        let d = Response::decode(&e.encode()).unwrap();
        assert_eq!(d.status, Status::Shed);
        assert_eq!(d.message(), "queue full (depth 8)");
    }

    #[test]
    fn decode_rejects_each_malformation_with_a_typed_error() {
        // too short for magic
        assert!(matches!(
            Request::decode(b"LD"),
            Err(ProtoError::Short { .. })
        ));
        // wrong magic
        assert!(matches!(
            Request::decode(b"XXXX\x00"),
            Err(ProtoError::BadMagic(_))
        ));
        // unknown opcode
        assert!(matches!(
            Request::decode(b"LDS1\x7f"),
            Err(ProtoError::BadOpcode(0x7f))
        ));
        // unknown stat
        let mut p = Request::Pair {
            panel: "p".into(),
            stat: StatCode::RSquared,
            i: 0,
            j: 1,
        }
        .encode();
        p[5] = 9;
        assert!(matches!(Request::decode(&p), Err(ProtoError::BadStat(9))));
        // truncated body
        let full = Request::Pair {
            panel: "p".into(),
            stat: StatCode::RSquared,
            i: 0,
            j: 1,
        }
        .encode();
        assert!(matches!(
            Request::decode(&full[..full.len() - 1]),
            Err(ProtoError::Short { .. })
        ));
        // trailing garbage
        let mut t = full.clone();
        t.push(0);
        assert!(matches!(
            Request::decode(&t),
            Err(ProtoError::Trailing { extra: 1 })
        ));
        // non-UTF-8 name
        let mut bad = Request::Pair {
            panel: "ab".into(),
            stat: StatCode::RSquared,
            i: 0,
            j: 1,
        }
        .encode();
        let n = bad.len();
        bad[n - 1] = 0xff;
        bad[n - 2] = 0xfe;
        assert!(matches!(Request::decode(&bad), Err(ProtoError::BadName)));
    }

    #[test]
    fn frames_roundtrip_and_bound_length() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r, 64).unwrap(), b"hello");
        assert!(matches!(read_frame(&mut r, 64), Err(ProtoError::Closed)));
        // oversized prefix is typed and names the bound
        let mut big = Vec::new();
        big.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(
            read_frame(&mut &big[..], 64),
            Err(ProtoError::Oversized { max: 64, .. })
        ));
        // mid-frame EOF is truncation, not a clean close
        let mut cut = Vec::new();
        write_frame(&mut cut, b"hello").unwrap();
        cut.truncate(6);
        assert!(matches!(
            read_frame(&mut &cut[..], 64),
            Err(ProtoError::Truncated { .. })
        ));
    }

    #[test]
    fn stream_poisoning_is_classified() {
        assert!(ProtoError::Oversized { len: 99, max: 4 }.poisons_stream());
        assert!(ProtoError::Truncated {
            expected: 8,
            got: 2
        }
        .poisons_stream());
        assert!(!ProtoError::BadOpcode(9).poisons_stream());
        assert!(!ProtoError::Trailing { extra: 3 }.poisons_stream());
    }
}
