//! The panel registry: fingerprint-keyed LRU cache of resident
//! [`LdMatrix`] panels under a global memory budget.
//!
//! A daemon is configured with named panel *sources* — text inputs
//! (`.ms`/`.vcf`/`.txt`) or chunked tile-store directories (PR 8). A
//! query names a panel; the registry returns the resident statistic
//! matrix, computing it on first touch through the fused engine (with
//! the caller's `CancelToken`/`Deadline` enforced at slab granularity).
//!
//! Residency is keyed by **content, not name**: the cache key is the
//! checkpoint fingerprint (`ld_core::matrix_fingerprint`, also stamped
//! into tile-store manifests) plus the statistic, so two names bound to
//! identical data share one resident triangle, and a panel re-registered
//! after its file changed can never serve stale answers.
//!
//! ## Graceful degradation: evict, then shed
//!
//! Resident triangles are charged against a byte budget. When admitting
//! a new panel would exceed it, least-recently-used panels are evicted
//! first (each counted in `panels_evicted`); only when the cache is
//! empty and the panel *still* does not fit does the registry refuse
//! with [`RegistryError::BudgetExceeded`] — which the server answers as
//! a typed `Shed`, never an OOM kill. Evicted triangles stay alive for
//! requests already holding their `Arc`; the budget models steady-state
//! residency, not transient peaks.

use ld_core::{
    CancelToken, Deadline, LdEngine, LdError, LdMatrix, LdStats, RunControl, TileSource,
};
use ld_io::tilestore::DirTileStore;
use std::collections::HashMap;
use std::fmt;
use std::io::BufReader;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Condvar, Mutex};

/// Where a named panel's genotype data lives.
#[derive(Clone, Debug)]
pub enum PanelSource {
    /// A text input (`.ms`, `.vcf`, `.txt`/`.mat`) loaded whole.
    TextFile(PathBuf),
    /// A chunked on-disk tile store streamed out-of-core.
    TileStore(PathBuf),
}

impl PanelSource {
    /// Classifies `path`: directories are tile stores, files are text
    /// inputs.
    pub fn detect(path: impl AsRef<Path>) -> Self {
        let p = path.as_ref().to_path_buf();
        if p.is_dir() {
            PanelSource::TileStore(p)
        } else {
            PanelSource::TextFile(p)
        }
    }

    /// The underlying path.
    pub fn path(&self) -> &Path {
        match self {
            PanelSource::TextFile(p) | PanelSource::TileStore(p) => p,
        }
    }
}

/// Identity of a loaded panel (learned on first touch, then memoized).
#[derive(Clone, Copy, Debug)]
pub struct PanelMeta {
    /// Whole-matrix FNV-1a fingerprint (the checkpoint fingerprint).
    pub fingerprint: u64,
    /// SNP count.
    pub n_snps: usize,
    /// Sample count.
    pub n_samples: usize,
}

/// Why the registry could not produce a panel.
#[derive(Debug)]
pub enum RegistryError {
    /// No source registered under this name.
    UnknownPanel(String),
    /// The panel cannot fit the memory budget even with the cache
    /// emptied — the caller must shed the request.
    BudgetExceeded {
        /// Panel name.
        panel: String,
        /// Bytes the resident triangle needs.
        need: usize,
        /// The configured budget.
        budget: usize,
    },
    /// Reading or parsing the panel source failed.
    Load {
        /// Panel name.
        panel: String,
        /// Located failure description.
        message: String,
    },
    /// The engine failed (or was cancelled) while computing the panel.
    Compute(LdError),
    /// A concurrent request is loading this panel and the caller's
    /// deadline expired while waiting for it.
    Busy {
        /// Panel name.
        panel: String,
    },
}

impl fmt::Display for RegistryError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RegistryError::UnknownPanel(p) => write!(f, "unknown panel '{p}'"),
            RegistryError::BudgetExceeded {
                panel,
                need,
                budget,
            } => write!(
                f,
                "panel '{panel}' needs {need} resident bytes, budget is {budget} \
                 (cache already emptied)"
            ),
            RegistryError::Load { panel, message } => {
                write!(f, "panel '{panel}': {message}")
            }
            RegistryError::Compute(e) => write!(f, "panel compute failed: {e}"),
            RegistryError::Busy { panel } => write!(
                f,
                "deadline expired waiting for a concurrent load of panel '{panel}'"
            ),
        }
    }
}

impl std::error::Error for RegistryError {}

/// Monotonic cache statistics (see [`PanelRegistry::snapshot`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RegistryStats {
    /// Queries answered from a resident panel.
    pub hits: u64,
    /// Queries that had to load + compute their panel.
    pub misses: u64,
    /// Panels evicted to make room under the budget.
    pub evictions: u64,
    /// Loads refused because the panel exceeds the whole budget.
    pub sheds: u64,
}

/// Point-in-time registry state for the health endpoint and tests.
#[derive(Clone, Debug)]
pub struct RegistrySnapshot {
    /// Resident `(fingerprint, statistic, bytes)` triples, LRU first.
    pub resident: Vec<(u64, LdStats, usize)>,
    /// Bytes currently charged against the budget.
    pub used_bytes: usize,
    /// The configured budget.
    pub budget_bytes: usize,
    /// Registered source names, sorted.
    pub sources: Vec<String>,
    /// Hit/miss/evict/shed counts.
    pub stats: RegistryStats,
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct CacheKey {
    fingerprint: u64,
    stat: LdStats,
}

struct Entry {
    matrix: Arc<LdMatrix>,
    bytes: usize,
    last_used: u64,
}

#[derive(Default)]
struct Inner {
    meta: HashMap<String, PanelMeta>,
    cache: HashMap<CacheKey, Entry>,
    loading: Vec<(String, LdStats)>,
    used_bytes: usize,
    clock: u64,
    stats: RegistryStats,
}

/// The registry: panel sources, the fingerprint-keyed LRU cache, and
/// the engine that computes panels on miss. Shared across the worker
/// pool behind an `Arc`; all methods take `&self`.
pub struct PanelRegistry {
    engine: LdEngine,
    budget_bytes: usize,
    sources: HashMap<String, PanelSource>,
    inner: Mutex<Inner>,
    loaded: Condvar,
}

impl PanelRegistry {
    /// A registry computing panels with `engine` under `budget_bytes`
    /// of resident-triangle budget.
    pub fn new(engine: LdEngine, budget_bytes: usize) -> Self {
        Self {
            engine,
            budget_bytes,
            sources: HashMap::new(),
            inner: Mutex::new(Inner::default()),
            loaded: Condvar::new(),
        }
    }

    /// Registers `name` → `source`. Returns `false` (and keeps the old
    /// binding) when the name is already taken.
    pub fn add_source(&mut self, name: impl Into<String>, source: PanelSource) -> bool {
        use std::collections::hash_map::Entry as MapEntry;
        match self.sources.entry(name.into()) {
            MapEntry::Occupied(_) => false,
            MapEntry::Vacant(v) => {
                v.insert(source);
                true
            }
        }
    }

    /// Registered panel names, sorted.
    pub fn names(&self) -> Vec<String> {
        let mut v: Vec<String> = self.sources.keys().cloned().collect();
        v.sort_unstable();
        v
    }

    /// The configured resident-byte budget.
    pub fn budget_bytes(&self) -> usize {
        self.budget_bytes
    }

    /// Identity of `name` if it has been loaded at least once.
    pub fn meta(&self, name: &str) -> Option<PanelMeta> {
        lock(&self.inner).meta.get(name).copied()
    }

    /// The resident statistic matrix for panel `name`, loading and
    /// computing it on first touch. `token`/`deadline` bound the load:
    /// the engine polls them at every slab, and a request waiting on a
    /// concurrent load of the same panel gives up at the deadline.
    pub fn get(
        &self,
        name: &str,
        stat: LdStats,
        token: &CancelToken,
        deadline: Deadline,
    ) -> Result<Arc<LdMatrix>, RegistryError> {
        let source = self
            .sources
            .get(name)
            .ok_or_else(|| RegistryError::UnknownPanel(name.to_string()))?;

        // Fast path / load coordination.
        {
            let mut inner = lock(&self.inner);
            loop {
                if let Some(m) = inner.meta.get(name).copied() {
                    let key = CacheKey {
                        fingerprint: m.fingerprint,
                        stat,
                    };
                    if let Some(found) = touch(&mut inner, &key) {
                        inner.stats.hits += 1;
                        return Ok(found);
                    }
                }
                let slot = (name.to_string(), stat);
                if !inner.loading.contains(&slot) {
                    inner.loading.push(slot);
                    inner.stats.misses += 1;
                    break;
                }
                // another request is computing this panel: wait for it
                let remaining = deadline.remaining();
                if remaining.is_zero() || token.is_cancelled() {
                    return Err(RegistryError::Busy {
                        panel: name.to_string(),
                    });
                }
                let (guard, _timeout) = self
                    .loaded
                    .wait_timeout(inner, remaining.min(std::time::Duration::from_millis(100)))
                    .unwrap_or_else(std::sync::PoisonError::into_inner);
                inner = guard;
            }
        }

        // Slow path: this request owns the load. Always clear the
        // loading slot and wake waiters, whatever happens below.
        let result = self.load_and_admit(name, source, stat, token, deadline);
        let mut inner = lock(&self.inner);
        inner.loading.retain(|(n, s)| !(n == name && *s == stat));
        self.loaded.notify_all();
        drop(inner);
        result
    }

    /// Loads the source, computes the statistic matrix, and admits it
    /// to the cache under the budget (evict-then-shed).
    fn load_and_admit(
        &self,
        name: &str,
        source: &PanelSource,
        stat: LdStats,
        token: &CancelToken,
        deadline: Deadline,
    ) -> Result<Arc<LdMatrix>, RegistryError> {
        let ctl = RunControl::new().with_token(token).with_deadline(deadline);
        let (meta, matrix) = match source {
            PanelSource::TextFile(path) => {
                let g = load_text_panel(name, path)?;
                let view = ld_bitmat::BitMatrixView::from(&g);
                let meta = PanelMeta {
                    fingerprint: ld_core::matrix_fingerprint(&view),
                    n_snps: g.n_snps(),
                    n_samples: g.n_samples(),
                };
                self.reserve(name, meta)?;
                let m = self
                    .engine
                    .try_stat_matrix_with(&g, stat, &ctl)
                    .map_err(|e| self.unreserve_on(meta, e))?;
                (meta, m)
            }
            PanelSource::TileStore(dir) => {
                let store = DirTileStore::open(dir).map_err(|e| RegistryError::Load {
                    panel: name.to_string(),
                    message: e.to_string(),
                })?;
                let sm = store.meta();
                let meta = PanelMeta {
                    fingerprint: sm.fingerprint,
                    n_snps: sm.n_snps,
                    n_samples: sm.n_samples,
                };
                self.reserve(name, meta)?;
                let m = self
                    .engine
                    .try_stat_matrix_outofcore_with(&store, stat, &ctl)
                    .map_err(|e| self.unreserve_on(meta, e))?;
                (meta, m)
            }
        };

        let bytes = triangle_bytes(meta.n_snps);
        let matrix = Arc::new(matrix);
        let mut inner = lock(&self.inner);
        inner.meta.insert(name.to_string(), meta);
        let key = CacheKey {
            fingerprint: meta.fingerprint,
            stat,
        };
        // A concurrent load of a same-fingerprint alias may have won the
        // race; keep the resident one and release our reservation.
        if let Some(existing) = touch(&mut inner, &key) {
            inner.used_bytes = inner.used_bytes.saturating_sub(bytes);
            return Ok(existing);
        }
        inner.clock += 1;
        let last_used = inner.clock;
        inner.cache.insert(
            key,
            Entry {
                matrix: Arc::clone(&matrix),
                bytes,
                last_used,
            },
        );
        Ok(matrix)
    }

    /// Charges `meta`'s triangle against the budget, evicting LRU
    /// panels first and shedding only when eviction cannot make room.
    fn reserve(&self, name: &str, meta: PanelMeta) -> Result<(), RegistryError> {
        let need = triangle_bytes(meta.n_snps);
        let mut inner = lock(&self.inner);
        while inner.used_bytes.saturating_add(need) > self.budget_bytes {
            let Some((&victim, _)) = inner
                .cache
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, e)| (k, e.last_used))
            else {
                break; // cache empty: nothing left to evict
            };
            if let Some(e) = inner.cache.remove(&victim) {
                inner.used_bytes = inner.used_bytes.saturating_sub(e.bytes);
                inner.stats.evictions += 1;
                ld_trace::add(ld_trace::Counter::PanelsEvicted, 1);
            }
        }
        if inner.used_bytes.saturating_add(need) > self.budget_bytes {
            inner.stats.sheds += 1;
            return Err(RegistryError::BudgetExceeded {
                panel: name.to_string(),
                need,
                budget: self.budget_bytes,
            });
        }
        inner.used_bytes += need;
        Ok(())
    }

    /// Releases a reservation after a failed compute and wraps the error.
    fn unreserve_on(&self, meta: PanelMeta, e: LdError) -> RegistryError {
        let bytes = triangle_bytes(meta.n_snps);
        let mut inner = lock(&self.inner);
        inner.used_bytes = inner.used_bytes.saturating_sub(bytes);
        RegistryError::Compute(e)
    }

    /// Current cache state + counters.
    pub fn snapshot(&self) -> RegistrySnapshot {
        let inner = lock(&self.inner);
        let mut resident: Vec<(u64, LdStats, usize, u64)> = inner
            .cache
            .iter()
            .map(|(k, e)| (k.fingerprint, k.stat, e.bytes, e.last_used))
            .collect();
        resident.sort_by_key(|&(_, _, _, used)| used);
        RegistrySnapshot {
            resident: resident
                .into_iter()
                .map(|(fp, s, b, _)| (fp, s, b))
                .collect(),
            used_bytes: inner.used_bytes,
            budget_bytes: self.budget_bytes,
            sources: {
                let mut v: Vec<String> = self.sources.keys().cloned().collect();
                v.sort_unstable();
                v
            },
            stats: inner.stats,
        }
    }
}

/// Bytes of a resident packed triangle for `n` SNPs.
pub fn triangle_bytes(n: usize) -> usize {
    n.saturating_add(1).saturating_mul(n).saturating_mul(8) / 2
}

/// Loads a text panel, dispatching on extension exactly like the CLI.
fn load_text_panel(name: &str, path: &Path) -> Result<ld_bitmat::BitMatrix, RegistryError> {
    let load_err = |message: String| RegistryError::Load {
        panel: name.to_string(),
        message,
    };
    let ext = path.extension().and_then(|e| e.to_str()).unwrap_or("");
    let file = std::fs::File::open(path)
        .map_err(|e| load_err(format!("cannot open {}: {e}", path.display())))?;
    let r = BufReader::new(file);
    match ext {
        "ms" => Ok(ld_io::ms::read_ms_first(r)
            .map_err(|e| load_err(e.to_string()))?
            .matrix),
        "vcf" => Ok(ld_io::vcf::read_vcf(r)
            .map_err(|e| load_err(e.to_string()))?
            .matrix),
        "txt" | "mat" | "" => ld_io::text::read_matrix(r).map_err(|e| load_err(e.to_string())),
        other => Err(load_err(format!(
            "unsupported panel extension '.{other}' (expected ms/vcf/txt or a store directory)"
        ))),
    }
}

fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Bumps `key`'s recency and returns its matrix when resident.
fn touch(inner: &mut Inner, key: &CacheKey) -> Option<Arc<LdMatrix>> {
    inner.clock += 1;
    let clock = inner.clock;
    inner.cache.get_mut(key).map(|e| {
        e.last_used = clock;
        Arc::clone(&e.matrix)
    })
}
