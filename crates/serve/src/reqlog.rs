//! Structured JSON-lines request log.
//!
//! One line per lifecycle transition, append-only, flushed per event so
//! a crash loses at most the event being written. The lifecycle contract
//! (enforced by the CI checker against `schemas/request_log.schema.json`):
//!
//! ```text
//! accept ─┬─ shed                       (admission refused; terminal)
//!         ├─ finish                     (inline op, or refused pre-queue)
//!         └─ admit ─┬─ timeout          (expired while queued; terminal)
//!                   ├─ finish           (abandoned during drain)
//!                   └─ start ─┬─ finish
//!                             └─ panic ── finish (status "internal")
//! ```
//!
//! Event ranks are strictly increasing per request id — `accept` (0),
//! `admit`/`shed` (1), `start` (2), `timeout`/`panic` (3), `finish` (4)
//! — with exactly one terminal event (`shed`, `timeout`, or `finish`).
//! `seq` is a global, gap-free line number assigned under the file lock,
//! so file order and `seq` order agree even with many writer threads;
//! `mono_ns` is the process-monotonic clock (`ld_trace::histogram::now_ns`)
//! and is what ordering assertions should use, `ts_ms` is wall time for
//! humans and log correlation.
//!
//! Requests slower than the configured `--slow-ms` threshold are
//! mirrored to stderr on their terminal event.

use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::{self, Write as _};
use std::path::Path;
use std::sync::Mutex;
use std::time::{SystemTime, UNIX_EPOCH};

/// One lifecycle transition. Optional fields are omitted from the JSON
/// line entirely (never emitted as `null`).
#[derive(Debug, Default)]
pub struct Event<'a> {
    /// Per-request id (unique within the daemon process).
    pub id: u64,
    /// Transition name: `accept`/`admit`/`shed`/`start`/`timeout`/`panic`/`finish`.
    pub event: &'static str,
    /// Wire opcode name (`health`, `pair`, `region`, `metrics`, `dump_trace`).
    pub opcode: &'static str,
    /// Panel name, when the request addresses one.
    pub panel: Option<&'a str>,
    /// Panel checkpoint fingerprint (hex), when the panel is registered.
    pub fingerprint: Option<u64>,
    /// Terminal status name, on `shed`/`timeout`/`finish`.
    pub status: Option<&'static str>,
    /// Time spent queued, known from `start` onward.
    pub queue_ns: Option<u64>,
    /// Time spent computing, on terminal events of requests that ran.
    pub service_ns: Option<u64>,
    /// Accept-to-answer wall time, on terminal events.
    pub total_ns: Option<u64>,
    /// Free-form context (panic message, shed reason).
    pub detail: Option<&'a str>,
}

struct Inner {
    file: File,
    seq: u64,
}

/// Append-only JSON-lines sink shared by every server thread.
pub struct RequestLog {
    inner: Mutex<Inner>,
    slow_ns: Option<u64>,
}

impl RequestLog {
    /// Opens (creating or appending) the log at `path`. `slow_ms`
    /// mirrors terminal events of slower requests to stderr.
    pub fn open(path: &Path, slow_ms: Option<u64>) -> io::Result<RequestLog> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(RequestLog {
            inner: Mutex::new(Inner { file, seq: 0 }),
            slow_ns: slow_ms.map(|ms| ms.saturating_mul(1_000_000)),
        })
    }

    /// Appends one event as a single JSON line (one `write` syscall, so
    /// concurrent writers never interleave bytes).
    pub fn log(&self, ev: &Event<'_>) {
        let ts_ms = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .map(|d| d.as_millis() as u64)
            .unwrap_or(0);
        let mono_ns = ld_trace::histogram::now_ns();
        let mut guard = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        let seq = guard.seq;
        guard.seq += 1;
        let mut line = String::with_capacity(192);
        let _ = write!(
            line,
            "{{\"ts_ms\":{ts_ms},\"mono_ns\":{mono_ns},\"seq\":{seq},\"id\":{},\
             \"event\":\"{}\",\"opcode\":\"{}\"",
            ev.id, ev.event, ev.opcode
        );
        if let Some(panel) = ev.panel {
            let _ = write!(line, ",\"panel\":\"{}\"", ld_trace::escape_json(panel));
        }
        if let Some(fp) = ev.fingerprint {
            let _ = write!(line, ",\"fingerprint\":\"{fp:016x}\"");
        }
        if let Some(status) = ev.status {
            let _ = write!(line, ",\"status\":\"{status}\"");
        }
        for (key, val) in [
            ("queue_ns", ev.queue_ns),
            ("service_ns", ev.service_ns),
            ("total_ns", ev.total_ns),
        ] {
            if let Some(v) = val {
                let _ = write!(line, ",\"{key}\":{v}");
            }
        }
        if let Some(detail) = ev.detail {
            let _ = write!(line, ",\"detail\":\"{}\"", ld_trace::escape_json(detail));
        }
        line.push_str("}\n");
        let _ = guard.file.write_all(line.as_bytes());
        drop(guard);
        if let (Some(slow_ns), Some(total_ns)) = (self.slow_ns, ev.total_ns) {
            if terminal(ev.event) && total_ns >= slow_ns {
                eprintln!(
                    "ld-serve: slow request id={} opcode={} status={} total_ms={:.1}",
                    ev.id,
                    ev.opcode,
                    ev.status.unwrap_or("?"),
                    total_ns as f64 / 1e6,
                );
            }
        }
    }
}

/// Whether `event` closes a request's lifecycle.
pub fn terminal(event: &str) -> bool {
    matches!(event, "shed" | "timeout" | "finish")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_are_valid_shape_and_sequenced() {
        let dir = std::env::temp_dir().join(format!("ld-reqlog-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("tempdir");
        let path = dir.join("req.log");
        let _ = std::fs::remove_file(&path);
        let log = RequestLog::open(&path, None).expect("open log");
        log.log(&Event {
            id: 7,
            event: "accept",
            opcode: "pair",
            panel: Some("chr\"1\\a"),
            fingerprint: Some(0xabcd),
            ..Event::default()
        });
        log.log(&Event {
            id: 7,
            event: "finish",
            opcode: "pair",
            status: Some("ok"),
            queue_ns: Some(10),
            service_ns: Some(20),
            total_ns: Some(35),
            ..Event::default()
        });
        let text = std::fs::read_to_string(&path).expect("read log");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].contains("\"seq\":0"));
        assert!(lines[1].contains("\"seq\":1"));
        assert!(lines[0].contains("\"panel\":\"chr\\\"1\\\\a\""));
        assert!(lines[0].contains("\"fingerprint\":\"000000000000abcd\""));
        assert!(!lines[0].contains("status"), "absent fields are omitted");
        assert!(lines[1].contains("\"total_ns\":35"));
        assert!(lines[1].ends_with('}'));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn terminal_classification() {
        for ev in ["shed", "timeout", "finish"] {
            assert!(terminal(ev));
        }
        for ev in ["accept", "admit", "start", "panic"] {
            assert!(!terminal(ev));
        }
    }
}
