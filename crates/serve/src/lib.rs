//! # ld-serve — fault-tolerant LD query daemon
//!
//! A long-running, std-only server that answers point (`i,j`) and
//! region LD queries against resident panels over a length-prefixed
//! binary protocol (LDS1) on a TCP socket, exposed as `gemm-ld serve`.
//!
//! The crate composes the robustness primitives built in earlier PRs
//! into a daemon that degrades gracefully instead of falling over:
//!
//! * [`protocol`] — the LDS1 wire format: `u32` length prefix, magic,
//!   opcode/status byte, strict total decoding with typed errors. A
//!   malformed payload never panics a parser; it yields a
//!   [`protocol::ProtoError`] that maps to a typed error response.
//! * [`registry`] — panels keyed by *checkpoint fingerprint* with LRU
//!   residency under a global memory budget: compute once, evict
//!   least-recently-used first, and only shed loads that cannot fit
//!   even into an empty cache (evict-then-shed).
//! * [`server`] — the daemon: bounded admission queue (overload sheds
//!   with a typed [`protocol::Status::Shed`], it never stalls),
//!   per-request `Deadline`/`CancelToken` enforced at slab granularity
//!   by the fused engine, `catch_unwind` request isolation, slow-client
//!   write timeouts, and a SIGINT/SIGTERM drain with a hard deadline.
//! * [`client`] — a blocking client plus [`client::request_with_retry`],
//!   which shares `ld_parallel::Backoff` (capped exponential envelope,
//!   deterministic equal jitter) with the `run-sharded` supervisor.
//!
//! Observability rides on `ld-trace`: the daemon bumps the
//! `requests_accepted` / `requests_shed` / `requests_failed` /
//! `panels_evicted` counters and feeds the request-latency histogram,
//! all surfaced by the `health` request and the `--metrics` JSON.

pub mod client;
mod http;
pub mod protocol;
pub mod registry;
pub mod reqlog;
pub mod server;

pub use client::{request_with_retry, Client, ClientError};
pub use protocol::{Request, Response, StatCode, Status};
pub use registry::{PanelRegistry, PanelSource, RegistryError};
pub use server::{DrainOutcome, ServeConfig, Server, ServerHandle};
