//! Blocking LDS1 client: one framed request/response per call, plus a
//! retrying helper that reconnects with the shared jittered backoff
//! (`ld_parallel::Backoff` — the same envelope `run-sharded` uses for
//! shard restarts).

use crate::protocol::{read_frame, write_frame, ProtoError, Request, Response, Status};
use ld_parallel::Backoff;
use std::fmt;
use std::io::{self, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

/// Client-side failure: transport or protocol.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure (connect, read, write).
    Io(io::Error),
    /// The server spoke malformed LDS1.
    Proto(ProtoError),
}

impl fmt::Display for ClientError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "i/o error: {e}"),
            ClientError::Proto(e) => write!(f, "protocol error: {e}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        match e {
            ProtoError::Io(io) => ClientError::Io(io),
            other => ClientError::Proto(other),
        }
    }
}

/// A connected LDS1 client. Requests are strictly sequential (one
/// in-flight frame per connection — the protocol has no request IDs).
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects with `timeout` applied to connect, reads, and writes.
    pub fn connect(addr: &str, timeout: Duration) -> Result<Client, ClientError> {
        let mut last: Option<io::Error> = None;
        for sa in addr.to_socket_addrs()? {
            match TcpStream::connect_timeout(&sa, timeout) {
                Ok(stream) => {
                    stream.set_read_timeout(Some(timeout))?;
                    stream.set_write_timeout(Some(timeout))?;
                    return Ok(Client { stream });
                }
                Err(e) => last = Some(e),
            }
        }
        Err(ClientError::Io(last.unwrap_or_else(|| {
            io::Error::new(
                io::ErrorKind::AddrNotAvailable,
                "address resolved to nothing",
            )
        })))
    }

    /// Sends one request and reads its response.
    pub fn request(&mut self, req: &Request) -> Result<Response, ClientError> {
        write_frame(&mut self.stream, &req.encode())?;
        self.read_response()
    }

    /// Writes raw bytes as a frame payload — the fault-injection
    /// harness uses this to send deliberately malformed payloads.
    pub fn send_raw_frame(&mut self, payload: &[u8]) -> Result<(), ClientError> {
        write_frame(&mut self.stream, payload)?;
        Ok(())
    }

    /// Writes raw bytes verbatim, with no framing — for injecting a
    /// corrupt length prefix or a deliberately truncated frame.
    pub fn send_raw_bytes(&mut self, bytes: &[u8]) -> Result<(), ClientError> {
        self.stream.write_all(bytes)?;
        self.stream.flush()?;
        Ok(())
    }

    /// Reads one response frame.
    pub fn read_response(&mut self) -> Result<Response, ClientError> {
        let payload = read_frame(&mut self.stream, crate::protocol::MAX_RESPONSE_PAYLOAD)?;
        Ok(Response::decode(&payload)?)
    }

    /// The underlying stream (the harness shuts down halves to simulate
    /// half-open peers).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }
}

/// Issues `req` with up to `attempts` tries, reconnecting each time and
/// sleeping the jittered backoff between failures. Retries on transport
/// errors and on `Shed` / `ShuttingDown` / `Timeout` responses (the
/// retryable statuses); other responses return immediately. The last
/// error or retryable response is returned when attempts are exhausted.
pub fn request_with_retry(
    addr: &str,
    req: &Request,
    attempts: usize,
    timeout: Duration,
    backoff: &Backoff,
) -> Result<Response, ClientError> {
    let mut last: Option<ClientError> = None;
    for attempt in 1..=attempts.max(1) {
        match Client::connect(addr, timeout).and_then(|mut c| c.request(req)) {
            Ok(resp) if retryable(resp.status) && attempt < attempts => {
                std::thread::sleep(backoff.delay(attempt));
                last = Some(ClientError::Io(io::Error::other(format!(
                    "server refused: {}",
                    resp.status.name()
                ))));
            }
            Ok(resp) => return Ok(resp),
            Err(e) => {
                if attempt < attempts {
                    std::thread::sleep(backoff.delay(attempt));
                }
                last = Some(e);
            }
        }
    }
    Err(last.unwrap_or_else(|| ClientError::Io(io::Error::other("no attempts made"))))
}

/// Statuses worth retrying: transient refusals, not request defects.
pub fn retryable(status: Status) -> bool {
    matches!(
        status,
        Status::Shed | Status::Timeout | Status::ShuttingDown
    )
}
