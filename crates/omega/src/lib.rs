//! # ld-omega — the ω statistic for selective-sweep detection
//!
//! The ω statistic (Kim & Nielsen, *Genetics* 2004) is the workload that
//! motivates OmegaPlus, the paper's second comparison target: according to
//! selective-sweep theory (§I), a positively selected site leaves **high
//! LD on each flank but low LD across** it. For a window of `S` SNPs split
//! after the `l`-th, with `L = {1..l}` and `R = {l+1..S}`:
//!
//! ```text
//!           ( Σ_{i,j∈L} r²ij + Σ_{i,j∈R} r²ij ) / ( C(l,2) + C(S−l,2) )
//! ω(l) =    ───────────────────────────────────────────────────────────
//!                   ( Σ_{i∈L, j∈R} r²ij ) / ( l (S−l) )
//! ```
//!
//! and `ω_max = max_l ω(l)`. High `ω_max` marks a sweep center.
//!
//! This crate computes ω on top of the GEMM engine: one blocked `r²`
//! matrix per window, then **O(S)** split maximization via prefix sums
//! ([`omega_max`]), instead of the O(S²) per-split recomputation a naive
//! scan would do. A pairwise no-GEMM path ([`omega_max_pairwise`])
//! reproduces the OmegaPlus-style computation for the benchmarks.

#![warn(missing_docs)]

use ld_bitmat::{BitMatrix, BitMatrixView};
use ld_core::{LdEngine, LdMatrix, NanPolicy};

pub mod grid;
mod prefix;

pub use grid::GridScan;
pub use prefix::WindowSums;

/// One evaluated grid position of an ω scan.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OmegaPoint {
    /// First SNP (inclusive) of the window.
    pub window_start: usize,
    /// One past the last SNP of the window.
    pub window_end: usize,
    /// The split (global SNP index of the first right-region SNP) that
    /// maximized ω.
    pub best_split: usize,
    /// The maximized ω value.
    pub omega: f64,
}

/// Computes `ω(l)` for every split from a window's `r²` matrix and returns
/// `(ω_max, argmax l)`; `l` counts SNPs in the left region (`1 ≤ l < S`).
///
/// Undefined `r²` values (NaN from monomorphic pairs) are treated as zero,
/// matching OmegaPlus's handling.
pub fn omega_max(r2: &LdMatrix) -> (f64, usize) {
    let sums = WindowSums::new(r2);
    let s = r2.n_snps();
    let mut best = (0.0f64, 1usize);
    for l in 1..s {
        let w = sums.omega_at(l);
        if w > best.0 {
            best = (w, l);
        }
    }
    best
}

/// ω for one explicit split (exposed for tests and for tools that fix the
/// candidate sweep position).
pub fn omega_at_split(r2: &LdMatrix, l: usize) -> f64 {
    WindowSums::new(r2).omega_at(l)
}

/// OmegaPlus-style ω_max: pairwise `POPCNT` r² without the GEMM engine.
/// Used by the benchmark harness as the no-DLA reference.
pub fn omega_max_pairwise(g: &BitMatrixView<'_>) -> (f64, usize) {
    let kernel = ld_baseline_pairwise_r2(g);
    omega_max(&kernel)
}

fn ld_baseline_pairwise_r2(g: &BitMatrixView<'_>) -> LdMatrix {
    // local unblocked r² (kept here so ld-omega has no dependency on
    // ld-baselines; ~20 lines of the same pairwise loop)
    let n = g.n_snps();
    let n_samples = g.n_samples() as u64;
    let counts: Vec<u64> = (0..n).map(|j| g.ones_in_snp(j)).collect();
    let mut out = LdMatrix::zeros(n);
    for i in 0..n {
        let a = g.snp_words(i);
        for j in i..n {
            let c_ij = ld_popcount_and(a, g.snp_words(j));
            let v = ld_core::ld_pair_from_counts(
                counts[i],
                counts[j],
                c_ij,
                n_samples,
                NanPolicy::Zero,
            )
            .r2;
            out.set(i, j, v);
        }
    }
    out
}

#[inline]
fn ld_popcount_and(a: &[u64], b: &[u64]) -> u64 {
    // Pinned scalar POPCNT: this is the no-GEMM *baseline* path, so it must
    // not silently benefit from LLVM auto-vectorization (see ld-popcount).
    ld_popcount::strategies::and_popcount_pinned(a, b)
}

/// A sliding-window ω scanner over a whole chromosome-scale matrix.
#[derive(Clone, Debug)]
pub struct OmegaScan {
    engine: LdEngine,
    window: usize,
    step: usize,
    min_region: usize,
}

impl OmegaScan {
    /// A scanner with `window` SNPs per window, advancing `step` SNPs
    /// between grid positions.
    pub fn new(window: usize, step: usize) -> Self {
        assert!(window >= 4, "a window needs at least 4 SNPs (2 per region)");
        assert!(step >= 1, "step must be positive");
        Self {
            engine: LdEngine::new().nan_policy(NanPolicy::Zero),
            window,
            step,
            // A handful of SNPs on one side produces degenerate, huge ω
            // values (tiny within-pair denominators); OmegaPlus bounds the
            // sub-region sizes for the same reason.
            min_region: (window / 10).max(2),
        }
    }

    /// Overrides the LD engine (kernel, threads, blocking).
    pub fn engine(mut self, engine: LdEngine) -> Self {
        self.engine = engine.nan_policy(NanPolicy::Zero);
        self
    }

    /// Requires at least `m` SNPs on each side of a candidate split
    /// (default 2); larger values suppress edge artifacts.
    pub fn min_region(mut self, m: usize) -> Self {
        self.min_region = m.max(1);
        self
    }

    /// Scans the matrix, returning one [`OmegaPoint`] per window.
    pub fn scan(&self, g: &BitMatrix) -> Vec<OmegaPoint> {
        let n = g.n_snps();
        let mut out = Vec::new();
        if n < self.window {
            return out;
        }
        let mut start = 0usize;
        loop {
            let end = start + self.window;
            let view = g.view(start, end);
            let r2 = self.engine.r2_matrix(view);
            let sums = WindowSums::new(&r2);
            let s = self.window;
            let mut best = (0.0f64, self.min_region);
            for l in self.min_region..=(s - self.min_region) {
                let w = sums.omega_at(l);
                if w > best.0 {
                    best = (w, l);
                }
            }
            out.push(OmegaPoint {
                window_start: start,
                window_end: end,
                best_split: start + best.1,
                omega: best.0,
            });
            if end == n {
                break;
            }
            start = (start + self.step).min(n - self.window);
        }
        out
    }

    /// The scan's single strongest signal, if any window was evaluated.
    pub fn scan_max(&self, g: &BitMatrix) -> Option<OmegaPoint> {
        self.scan(g).into_iter().max_by(|a, b| {
            a.omega
                .partial_cmp(&b.omega)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }

    /// Like [`OmegaScan::scan`], but windows are distributed across
    /// `threads` workers (each window's `r²` GEMM then runs
    /// single-threaded — for many small windows, across-window parallelism
    /// beats within-window parallelism).
    pub fn par_scan(&self, g: &BitMatrix, threads: usize) -> Vec<OmegaPoint> {
        let starts = self.window_starts(g.n_snps());
        let mut out = vec![
            OmegaPoint {
                window_start: 0,
                window_end: 0,
                best_split: 0,
                omega: 0.0
            };
            starts.len()
        ];
        let single = self.clone_with_single_threaded_engine();
        {
            let slots = SyncPoints(out.as_mut_ptr(), out.len());
            let starts = &starts;
            ld_parallel::parallel_for_dynamic(threads, starts.len(), 1, |range| {
                for w in range {
                    let start = starts[w];
                    let end = start + single.window;
                    let view = g.view(start, end);
                    let r2 = single.engine.r2_matrix(view);
                    let sums = WindowSums::new(&r2);
                    let mut best = (0.0f64, single.min_region);
                    for l in single.min_region..=(single.window - single.min_region) {
                        let v = sums.omega_at(l);
                        if v > best.0 {
                            best = (v, l);
                        }
                    }
                    // SAFETY: each window index is written by one worker.
                    unsafe {
                        *slots.at(w) = OmegaPoint {
                            window_start: start,
                            window_end: end,
                            best_split: start + best.1,
                            omega: best.0,
                        };
                    }
                }
            });
        }
        out
    }

    fn clone_with_single_threaded_engine(&self) -> Self {
        let mut s = self.clone();
        s.engine = s.engine.threads(1);
        s
    }

    /// The window start positions [`OmegaScan::scan`] visits, in order.
    fn window_starts(&self, n: usize) -> Vec<usize> {
        let mut starts = Vec::new();
        if n < self.window {
            return starts;
        }
        let mut start = 0usize;
        loop {
            starts.push(start);
            if start + self.window == n {
                break;
            }
            start = (start + self.step).min(n - self.window);
        }
        starts
    }
}

struct SyncPoints(*mut OmegaPoint, usize);
unsafe impl Send for SyncPoints {}
unsafe impl Sync for SyncPoints {}
impl SyncPoints {
    unsafe fn at(&self, i: usize) -> *mut OmegaPoint {
        debug_assert!(i < self.1);
        unsafe { self.0.add(i) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A window with perfect LD inside each half and none across: the
    /// canonical sweep signature.
    fn sweep_like(n_per_side: usize) -> BitMatrix {
        let n_samples = 64;
        let mut g = BitMatrix::zeros(n_samples, 2 * n_per_side);
        // left SNPs: all identical pattern A; right SNPs: pattern B with
        // |A ∧ B| = |A||B|/n (independent)
        for j in 0..n_per_side {
            for s in 0..32 {
                g.set(s, j, true);
            }
        }
        for j in n_per_side..2 * n_per_side {
            // offset chosen so the cross-block r² is small but nonzero
            // (overlap 14/64 with the left pattern), keeping ω finite
            for s in 18..50 {
                g.set(s, j, true);
            }
        }
        g
    }

    #[test]
    fn omega_peaks_at_true_split() {
        let g = sweep_like(5);
        let r2 = LdEngine::new().nan_policy(NanPolicy::Zero).r2_matrix(&g);
        let (omega, split) = omega_max(&r2);
        assert_eq!(split, 5, "ω must peak at the block boundary");
        assert!(omega > 10.0, "strong signal expected, got {omega}");
    }

    #[test]
    fn omega_low_for_uniform_ld() {
        // identical SNPs everywhere: r² = 1 within AND across -> ω ≈ 1
        let mut g = BitMatrix::zeros(32, 10);
        for j in 0..10 {
            for s in 0..16 {
                g.set(s, j, true);
            }
        }
        let r2 = LdEngine::new().nan_policy(NanPolicy::Zero).r2_matrix(&g);
        let (omega, _) = omega_max(&r2);
        assert!(
            (omega - 1.0).abs() < 1e-9,
            "uniform LD must give ω = 1, got {omega}"
        );
    }

    #[test]
    fn prefix_sums_match_brute_force() {
        // random-ish r² values; compare omega_at_split against triple loops
        let n = 9;
        let mut r2 = LdMatrix::zeros(n);
        let mut v = 0.1;
        for i in 0..n {
            for j in i..n {
                r2.set(i, j, if i == j { 1.0 } else { v });
                v = (v * 7.3) % 1.0;
            }
        }
        for l in 1..n {
            let mut ll = 0.0;
            let mut rr = 0.0;
            let mut lr = 0.0;
            for i in 0..n {
                for j in i + 1..n {
                    let x = r2.get(i, j);
                    if j < l {
                        ll += x;
                    } else if i >= l {
                        rr += x;
                    } else {
                        lr += x;
                    }
                }
            }
            let c = |k: usize| (k * k.saturating_sub(1)) as f64 / 2.0;
            let denom_pairs = c(l) + c(n - l);
            let want = if denom_pairs > 0.0 && lr > 0.0 {
                ((ll + rr) / denom_pairs) / (lr / (l * (n - l)) as f64)
            } else {
                0.0
            };
            let got = omega_at_split(&r2, l);
            assert!(
                (got - want).abs() < 1e-9 * want.max(1.0),
                "l={l}: {got} vs {want}"
            );
        }
    }

    #[test]
    fn pairwise_matches_gemm_path() {
        let g = sweep_like(4);
        let r2 = LdEngine::new().nan_policy(NanPolicy::Zero).r2_matrix(&g);
        let (a, la) = omega_max(&r2);
        let (b, lb) = omega_max_pairwise(&g.full_view());
        assert!((a - b).abs() < 1e-9);
        assert_eq!(la, lb);
    }

    #[test]
    fn scan_finds_embedded_sweep() {
        // chromosome: neutral noise + a sweep-like block pair in the middle
        let n_samples = 64;
        let n_snps = 60;
        let mut g = BitMatrix::zeros(n_samples, n_snps);
        let mut s = 12345u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for j in 0..n_snps {
            for smp in 0..n_samples {
                if next() % 2 == 0 {
                    g.set(smp, j, true);
                }
            }
        }
        // plant the sweep: SNPs 24..30 identical, 30..36 identical (other pattern)
        for j in 24..30 {
            for smp in 0..n_samples {
                g.set(smp, j, smp < 32);
            }
        }
        for j in 30..36 {
            for smp in 0..n_samples {
                g.set(smp, j, (16..48).contains(&smp));
            }
        }
        let scan = OmegaScan::new(12, 2);
        let best = scan.scan_max(&g).unwrap();
        assert!(
            (26..=34).contains(&best.best_split),
            "sweep center missed: split {} omega {}",
            best.best_split,
            best.omega
        );
    }

    #[test]
    fn scan_handles_short_input() {
        let g = BitMatrix::zeros(10, 6);
        let scan = OmegaScan::new(8, 1);
        assert!(scan.scan(&g).is_empty());
        assert!(scan.scan_max(&g).is_none());
    }

    #[test]
    fn par_scan_equals_sequential_scan() {
        let g = sweep_like(12); // 24 snps
        let scan = OmegaScan::new(10, 3);
        let seq = scan.scan(&g);
        for threads in [1usize, 2, 5] {
            let par = scan.par_scan(&g, threads);
            assert_eq!(par.len(), seq.len(), "threads={threads}");
            for (a, b) in par.iter().zip(&seq) {
                assert_eq!(a.window_start, b.window_start);
                assert_eq!(a.window_end, b.window_end);
                assert_eq!(a.best_split, b.best_split);
                assert!((a.omega - b.omega).abs() < 1e-12);
            }
        }
        // empty input
        assert!(scan.par_scan(&BitMatrix::zeros(8, 4), 2).is_empty());
    }

    #[test]
    fn scan_covers_tail() {
        let g = sweep_like(10); // 20 snps
        let scan = OmegaScan::new(8, 5);
        let points = scan.scan(&g);
        assert_eq!(
            points.last().unwrap().window_end,
            20,
            "final window must touch the end"
        );
        // windows advance by step until clamped
        assert!(points.len() >= 3);
    }

    #[test]
    #[should_panic(expected = "at least 4 SNPs")]
    fn tiny_window_rejected() {
        OmegaScan::new(3, 1);
    }
}
