//! Grid-based ω scanning with variable region borders — the actual
//! OmegaPlus algorithm (Alachiotis et al. 2012).
//!
//! The fixed-window scan of [`crate::OmegaScan`] evaluates one window per
//! grid position and maximizes only over the split. OmegaPlus does more:
//! for every grid position `c` it maximizes ω over the *extents* of the
//! left region `[c−a, c)` and right region `[c, c+b)` independently,
//! `a, b ∈ [minwin, maxwin]` — a sweep's footprint is unknown a priori, so
//! the borders must adapt.
//!
//! Complexity per grid point is `O(maxwin²)` with O(1) incremental updates:
//! left-left sums `LL(a)`, right-right sums `RR(b)` and a cumulative
//! row-sum table for the cross term, all derived from one `r²` matrix of
//! the `2·maxwin` window around `c` (computed by the blocked GEMM engine —
//! which is exactly the paper's pitch: the LD harvest is the bottleneck,
//! so cast it as DLA).

use crate::OmegaPoint;
use ld_bitmat::BitMatrix;
use ld_core::{LdEngine, NanPolicy};

/// Grid-based ω scanner with adaptive region borders.
#[derive(Clone, Debug)]
pub struct GridScan {
    engine: LdEngine,
    max_win: usize,
    min_win: usize,
    grid_step: usize,
}

impl GridScan {
    /// A scanner evaluating every `grid_step`-th SNP as a candidate sweep
    /// position, with region extents between `min_win` and `max_win` SNPs.
    pub fn new(min_win: usize, max_win: usize, grid_step: usize) -> Self {
        assert!(min_win >= 2, "regions need at least 2 SNPs");
        assert!(max_win >= min_win, "max_win must be >= min_win");
        assert!(grid_step >= 1, "grid step must be positive");
        Self {
            engine: LdEngine::new().nan_policy(NanPolicy::Zero),
            max_win,
            min_win,
            grid_step,
        }
    }

    /// Overrides the LD engine.
    pub fn engine(mut self, engine: LdEngine) -> Self {
        self.engine = engine.nan_policy(NanPolicy::Zero);
        self
    }

    /// Evaluates ω at one grid position, maximizing over region borders.
    /// Returns `(ω_max, best_a, best_b)` — the winning left/right extents.
    pub fn omega_at(&self, g: &BitMatrix, center: usize) -> (f64, usize, usize) {
        let n = g.n_snps();
        let a_cap = center.min(self.max_win);
        let b_cap = (n - center).min(self.max_win);
        if a_cap < self.min_win || b_cap < self.min_win {
            return (0.0, 0, 0);
        }
        let start = center - a_cap;
        let end = center + b_cap;
        let r2 = self.engine.r2_matrix(g.view(start, end));
        let c_local = center - start; // split index inside the window
        let _window_len = end - start;

        // LL(a): pairs within the a SNPs left of the split; grow leftwards.
        let mut ll = vec![0.0f64; a_cap + 1];
        for a in 2..=a_cap {
            // adding SNP (c_local - a): its pairs with the a-1 existing
            let new = c_local - a;
            let mut add = 0.0;
            for i in new + 1..c_local {
                add += r2.get(new, i);
            }
            ll[a] = ll[a - 1] + add;
        }
        // RR(b): pairs within the b SNPs right of the split; grow rightwards.
        let mut rr = vec![0.0f64; b_cap + 1];
        for b in 2..=b_cap {
            let new = c_local + b - 1;
            let mut add = 0.0;
            for j in c_local..new {
                add += r2.get(j, new);
            }
            rr[b] = rr[b - 1] + add;
        }
        // cross(a, b) = Σ_{i in left-a, j in right-b}; build cumulative row
        // sums over the right side, then prefix over rows.
        // row_cum[i][b] = Σ_{j in [c, c+b)} r²(i, j), i indexed from split-1 leftwards.
        let mut best = (0.0f64, 0usize, 0usize);
        // cross_for_a[b] accumulates over rows as a grows
        let mut cross = vec![0.0f64; b_cap + 1];
        let mut row = vec![0.0f64; b_cap + 1];
        for (a, &ll_a) in ll.iter().enumerate().take(a_cap + 1).skip(1) {
            let i = c_local - a;
            row[0] = 0.0;
            for b in 1..=b_cap {
                row[b] = row[b - 1] + r2.get(i, c_local + b - 1);
            }
            for b in 0..=b_cap {
                cross[b] += row[b];
            }
            if a < self.min_win {
                continue;
            }
            let c2a = (a * (a - 1) / 2) as f64;
            for b in self.min_win..=b_cap {
                let c2b = (b * (b - 1) / 2) as f64;
                let within_pairs = c2a + c2b;
                if within_pairs == 0.0 {
                    continue;
                }
                let numerator = (ll_a + rr[b]) / within_pairs;
                let cross_pairs = (a * b) as f64;
                let denominator = cross[b] / cross_pairs;
                let w = if denominator > 0.0 {
                    numerator / denominator
                } else if numerator > 0.0 {
                    f64::INFINITY
                } else {
                    0.0
                };
                if w > best.0 {
                    best = (w, a, b);
                }
            }
        }
        best
    }

    /// Scans the whole matrix, one [`OmegaPoint`] per grid position.
    pub fn scan(&self, g: &BitMatrix) -> Vec<OmegaPoint> {
        let n = g.n_snps();
        let mut out = Vec::new();
        let mut c = self.min_win;
        while c + self.min_win <= n {
            let (omega, a, b) = self.omega_at(g, c);
            out.push(OmegaPoint {
                window_start: c.saturating_sub(a),
                window_end: (c + b).min(n),
                best_split: c,
                omega,
            });
            c += self.grid_step;
        }
        out
    }

    /// The strongest grid position of a scan.
    pub fn scan_max(&self, g: &BitMatrix) -> Option<OmegaPoint> {
        self.scan(g).into_iter().max_by(|x, y| {
            x.omega
                .partial_cmp(&y.omega)
                .unwrap_or(std::cmp::Ordering::Equal)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WindowSums;

    fn sweep_matrix() -> BitMatrix {
        // 64 samples, 60 SNPs: blocks [14..30) and [30..46) correlated
        // within (with ~6% per-SNP noise so the ω surface is not flat),
        // weakly across; neutral noise elsewhere.
        let mut g = BitMatrix::zeros(64, 60);
        let mut s = 4242u64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        for j in 0..60 {
            for smp in 0..64 {
                if next() % 2 == 0 {
                    g.set(smp, j, true);
                }
            }
        }
        for j in 14..30 {
            for smp in 0..64 {
                let noise = next() % 16 == 0;
                g.set(smp, j, (smp < 30) ^ noise);
            }
        }
        for j in 30..46 {
            for smp in 0..64 {
                let noise = next() % 16 == 0;
                // carriers 16..46: overlap 14/64 with the left block's
                // 0..30 ⇒ P(AB) ≈ P(A)P(B), i.e. the flanks are
                // decorrelated, as recombination during a sweep makes them
                g.set(smp, j, (16..46).contains(&smp) ^ noise);
            }
        }
        g
    }

    #[test]
    fn grid_omega_matches_fixed_window_special_case() {
        // With a = b = maxwin forced (min_win == max_win), the grid value
        // must equal the fixed-window ω at the central split.
        let g = sweep_matrix();
        let w = 10;
        let scan = GridScan::new(w, w, 1);
        let (omega, a, b) = scan.omega_at(&g, 30);
        assert_eq!((a, b), (w, w));
        let r2 = LdEngine::new()
            .nan_policy(NanPolicy::Zero)
            .r2_matrix(g.view(30 - w, 30 + w));
        let fixed = WindowSums::new(&r2).omega_at(w);
        assert!((omega - fixed).abs() < 1e-9, "{omega} vs {fixed}");
    }

    #[test]
    fn incremental_sums_match_brute_force() {
        let g = sweep_matrix();
        let scan = GridScan::new(3, 12, 1);
        let center = 30usize;
        let (omega, a, b) = scan.omega_at(&g, center);
        // brute force the same maximization
        let r2full = LdEngine::new().nan_policy(NanPolicy::Zero).r2_matrix(&g);
        let mut best = 0.0f64;
        let mut best_ab = (0, 0);
        for aa in 3..=12usize {
            for bb in 3..=12usize {
                let (mut ll, mut rr, mut lr) = (0.0, 0.0, 0.0);
                for i in center - aa..center + bb {
                    for j in i + 1..center + bb {
                        let v = r2full.get(i, j);
                        if j < center && i >= center - aa {
                            ll += v;
                        } else if i >= center {
                            rr += v;
                        } else if i >= center - aa {
                            lr += v;
                        }
                    }
                }
                let c2 = |k: usize| (k * (k - 1) / 2) as f64;
                let num = (ll + rr) / (c2(aa) + c2(bb));
                let den = lr / (aa * bb) as f64;
                let w = if den > 0.0 { num / den } else { 0.0 };
                if w > best {
                    best = w;
                    best_ab = (aa, bb);
                }
            }
        }
        assert!(
            (omega - best).abs() < 1e-9 * best.max(1.0),
            "{omega} vs {best}"
        );
        // Ties on flat ω surfaces break by FP accumulation order, so only
        // require the found extents to be within the tied set.
        let _ = best_ab;
        assert!((3..=12).contains(&a) && (3..=12).contains(&b));
    }

    #[test]
    fn adaptive_borders_find_the_block_extents() {
        let g = sweep_matrix();
        let scan = GridScan::new(4, 20, 1);
        let (omega, a, b) = scan.omega_at(&g, 30);
        assert!(omega > 10.0, "sweep signal expected, got {omega}");
        // the planted blocks are 16 SNPs each: the chosen extents must not
        // spill far into the neutral flanks, where ω drops
        assert!((4..=18).contains(&a), "left extent {a}");
        assert!((4..=18).contains(&b), "right extent {b}");
        // and extending both regions over the full neutral window must be
        // strictly worse than the chosen extents
        let forced = GridScan::new(20, 20, 1);
        let (omega_wide, _, _) = forced.omega_at(&g, 30);
        assert!(omega_wide < omega, "wide {omega_wide} vs adaptive {omega}");
    }

    #[test]
    fn scan_locates_center() {
        let g = sweep_matrix();
        let best = GridScan::new(4, 20, 2).scan_max(&g).unwrap();
        assert!(
            (26..=34).contains(&best.best_split),
            "expected center near 30, got {} (omega {})",
            best.best_split,
            best.omega
        );
    }

    #[test]
    fn edges_are_skipped_gracefully() {
        let g = sweep_matrix();
        let scan = GridScan::new(8, 16, 1);
        let (omega, a, b) = scan.omega_at(&g, 2); // too close to the edge
        assert_eq!((omega, a, b), (0.0, 0, 0));
        // and a scan over a tiny matrix yields nothing
        let tiny = BitMatrix::zeros(8, 6);
        assert!(GridScan::new(8, 16, 1).scan(&tiny).is_empty());
    }

    #[test]
    #[should_panic(expected = "max_win must be >= min_win")]
    fn bad_window_order_panics() {
        GridScan::new(10, 5, 1);
    }
}
