//! O(S) split evaluation via prefix sums over the window's r² matrix.

use ld_core::LdMatrix;

/// Precomputed pair-sum prefixes of one window.
///
/// For a window of `S` SNPs, stores for every split `l`:
/// * `left[l]`  = Σ r² over pairs with both SNPs `< l`,
/// * `right[l]` = Σ r² over pairs with both SNPs `≥ l`,
///
/// each built in `O(S²)` total (one pass over the matrix) so that all
/// `S − 1` candidate splits evaluate in constant time — the trick that
/// makes a grid scan with ω-maximizing splits affordable.
#[derive(Clone, Debug)]
pub struct WindowSums {
    s: usize,
    left: Vec<f64>,
    right: Vec<f64>,
    total: f64,
}

impl WindowSums {
    /// Builds the prefixes from a window r² matrix. NaN entries count as 0.
    pub fn new(r2: &LdMatrix) -> Self {
        let s = r2.n_snps();
        let val = |i: usize, j: usize| {
            let v = r2.get(i, j);
            if v.is_nan() {
                0.0
            } else {
                v
            }
        };
        // left[l] = left[l-1] + Σ_{i<l-1} r²(i, l-1)
        let mut left = vec![0.0; s + 1];
        for l in 1..=s {
            let new_col = l - 1;
            let mut add = 0.0;
            for i in 0..new_col {
                add += val(i, new_col);
            }
            left[l] = left[l - 1] + add;
        }
        // right[l] = right[l+1] + Σ_{j>l} r²(l, j)
        let mut right = vec![0.0; s + 1];
        for l in (0..s).rev() {
            let mut add = 0.0;
            for j in l + 1..s {
                add += val(l, j);
            }
            right[l] = right[l + 1] + add;
        }
        let total = left[s];
        Self {
            s,
            left,
            right,
            total,
        }
    }

    /// Window size `S`.
    pub fn len(&self) -> usize {
        self.s
    }

    /// True for an empty window.
    pub fn is_empty(&self) -> bool {
        self.s == 0
    }

    /// Sum of r² over pairs entirely in the left region of split `l`.
    pub fn left_sum(&self, l: usize) -> f64 {
        self.left[l]
    }

    /// Sum of r² over pairs entirely in the right region of split `l`.
    pub fn right_sum(&self, l: usize) -> f64 {
        self.right[l]
    }

    /// Sum of r² over cross pairs (one SNP each side) of split `l`.
    pub fn cross_sum(&self, l: usize) -> f64 {
        (self.total - self.left[l] - self.right[l]).max(0.0)
    }

    /// ω at split `l` (left region size `l`, right `S − l`).
    ///
    /// Degenerate cases follow OmegaPlus's conventions: zero within-region
    /// pair count → 0; zero cross-LD with positive within-LD → `+∞`
    /// (a perfect sweep signature); 0/0 → 0.
    pub fn omega_at(&self, l: usize) -> f64 {
        let s = self.s;
        if l == 0 || l >= s {
            return 0.0;
        }
        let c = |k: usize| (k * k.saturating_sub(1)) as f64 / 2.0;
        let within_pairs = c(l) + c(s - l);
        if within_pairs == 0.0 {
            return 0.0;
        }
        let within = self.left_sum(l) + self.right_sum(l);
        let cross = self.cross_sum(l);
        let cross_pairs = (l * (s - l)) as f64;
        let numerator = within / within_pairs;
        let denominator = cross / cross_pairs;
        if denominator > 0.0 {
            numerator / denominator
        } else if numerator > 0.0 {
            f64::INFINITY
        } else {
            0.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fixture(n: usize) -> LdMatrix {
        let mut m = LdMatrix::zeros(n);
        for i in 0..n {
            for j in i..n {
                m.set(i, j, ((i * 31 + j * 7) % 10) as f64 / 10.0);
            }
        }
        m
    }

    #[test]
    fn sums_partition_the_total() {
        let m = fixture(8);
        let w = WindowSums::new(&m);
        let total: f64 = m.iter_pairs().map(|(_, _, v)| v).sum();
        for l in 0..=8 {
            let sum = w.left_sum(l) + w.right_sum(l) + w.cross_sum(l);
            assert!((sum - total).abs() < 1e-9, "l={l}: {sum} vs {total}");
        }
        assert_eq!(w.len(), 8);
        assert!(!w.is_empty());
    }

    #[test]
    fn left_and_right_sums_brute_force() {
        let m = fixture(7);
        let w = WindowSums::new(&m);
        for l in 0..=7 {
            let mut ll = 0.0;
            let mut rr = 0.0;
            for i in 0..7 {
                for j in i + 1..7 {
                    if j < l {
                        ll += m.get(i, j);
                    }
                    if i >= l {
                        rr += m.get(i, j);
                    }
                }
            }
            assert!((w.left_sum(l) - ll).abs() < 1e-9, "left l={l}");
            assert!((w.right_sum(l) - rr).abs() < 1e-9, "right l={l}");
        }
    }

    #[test]
    fn nan_counts_as_zero() {
        let mut m = LdMatrix::zeros(4);
        m.set(0, 1, f64::NAN);
        m.set(0, 2, 0.5);
        m.set(2, 3, 0.25);
        let w = WindowSums::new(&m);
        assert!((w.left_sum(4) - 0.75).abs() < 1e-12);
    }

    #[test]
    fn degenerate_splits() {
        let m = fixture(5);
        let w = WindowSums::new(&m);
        assert_eq!(w.omega_at(0), 0.0);
        assert_eq!(w.omega_at(5), 0.0);
        // l=1: within_pairs = C(1,2)+C(4,2) = 6 > 0, finite
        assert!(w.omega_at(1).is_finite());
    }

    #[test]
    fn infinite_omega_for_zero_cross() {
        let mut m = LdMatrix::zeros(4);
        // within-halves LD, zero across
        m.set(0, 1, 0.9);
        m.set(2, 3, 0.9);
        let w = WindowSums::new(&m);
        assert!(w.omega_at(2).is_infinite());
    }

    #[test]
    fn zero_matrix_gives_zero_omega() {
        let m = LdMatrix::zeros(6);
        let w = WindowSums::new(&m);
        for l in 0..=6 {
            assert_eq!(w.omega_at(l), 0.0);
        }
    }
}
