//! # ld-baselines — the LD implementations the paper compares against
//!
//! Three comparator classes, reimplemented from their published algorithmic
//! descriptions (§VI of the paper; see DESIGN.md for the substitution
//! argument):
//!
//! * [`naive`] — byte-per-allele scalar LD, the "scalar kernels that are
//!   not optimized for performance" of §VIII (PopGenome-class code):
//!   no bit packing, no popcount, no blocking.
//! * [`omegaplus`] — OmegaPlus-style kernel: bit-packed alleles with the
//!   64-bit `POPCNT` intrinsic (the paper's footnote 5 upgrade), but plain
//!   unblocked pairwise loops — precisely the GEMM-less datapoint of
//!   Tables I–III.
//! * [`plink`] — PLINK-1.9-style kernel: 2-bit *genotype* encoding
//!   (`.bed` words), per-pair 3×3 contingency tables built from masked
//!   popcounts, `r²` from dosage correlation or maximum-likelihood EM
//!   haplotype frequencies (PLINK's default for unphased data).
//!
//! All three produce results verified against `ld-core`'s engine in the
//! integration tests (on haploid data lifted to homozygous genotypes, the
//! genotypic `r²` equals the haplotypic `r²`, which pins the PLINK path to
//! the same oracle).

#![warn(missing_docs)]

pub mod naive;
pub mod omegaplus;
pub mod plink;

pub use naive::ByteMatrix;
pub use omegaplus::OmegaPlusKernel;
pub use plink::{PlinkKernel, PlinkR2Mode};
