//! The OmegaPlus-style baseline: bit-packed alleles, 64-bit `POPCNT`,
//! **no** cache blocking.
//!
//! OmegaPlus (Alachiotis et al., Bioinformatics 2012) computes LD values on
//! demand for the ω statistic. Its inner product is the same
//! `Σ POPCNT(s_i & s_j)` as the GEMM micro-kernel — the paper's authors
//! even upgraded it to the 64-bit intrinsic for the §VI comparison
//! (footnote 5). What it lacks is everything GotoBLAS adds: packing,
//! register tiling and cache blocking. Each pair re-streams both SNP
//! columns from wherever they happen to live, which is exactly why the
//! GEMM formulation beats it ~4–6.7× in Tables I–III.

use ld_bitmat::{BitMatrix, BitMatrixView};
use ld_core::fused::SyncSlice;
use ld_core::{ld_pair_from_counts, LdMatrix, LdPair, NanPolicy};
use ld_parallel::parallel_for_dynamic;
use ld_popcount::strategies::and_popcount_pinned;

/// Pairwise popcount LD kernel without blocking.
#[derive(Clone, Copy, Debug, Default)]
pub struct OmegaPlusKernel {
    policy: NanPolicy,
}

impl OmegaPlusKernel {
    /// A kernel with the default NaN policy.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the monomorphic-pair policy.
    pub fn nan_policy(mut self, policy: NanPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Per-pair statistics straight off the packed columns.
    pub fn ld_pair(&self, g: &BitMatrix, i: usize, j: usize) -> LdPair {
        let c_ij = and_popcount_pinned(g.snp_words(i), g.snp_words(j));
        ld_pair_from_counts(
            g.ones_in_snp(i),
            g.ones_in_snp(j),
            c_ij,
            g.n_samples() as u64,
            self.policy,
        )
    }

    /// All-pairs `r²` with plain pairwise loops, parallelized over rows
    /// with dynamic chunks (the triangular workload is skewed).
    pub fn r2_matrix(&self, g: &BitMatrixView<'_>, threads: usize) -> LdMatrix {
        let n = g.n_snps();
        let n_samples = g.n_samples() as u64;
        let counts: Vec<u64> = (0..n).map(|j| g.ones_in_snp(j)).collect();
        let mut out = LdMatrix::zeros(n);
        let policy = self.policy;
        {
            let packed = out.packed_mut();
            let ptr = SyncSlice::new(packed);
            parallel_for_dynamic(threads, n, 4, |rows| {
                for i in rows.clone() {
                    let off = i * n - (i * i - i) / 2;
                    // SAFETY: disjoint packed row ranges.
                    let dst = unsafe { ptr.slice(off, n - i) };
                    let a = g.snp_words(i);
                    for (t, j) in (i..n).enumerate() {
                        let c_ij = and_popcount_pinned(a, g.snp_words(j));
                        dst[t] =
                            ld_pair_from_counts(counts[i], counts[j], c_ij, n_samples, policy).r2;
                    }
                }
            });
        }
        out
    }

    /// Sum of `r²` over all pairs `i < j` in a window — the access pattern
    /// the ω statistic actually needs, kept allocation-free (this is the
    /// OmegaPlus-like path `ld-omega` uses as its no-GEMM reference).
    pub fn r2_window_sum(&self, g: &BitMatrixView<'_>) -> f64 {
        let n = g.n_snps();
        let n_samples = g.n_samples() as u64;
        let counts: Vec<u64> = (0..n).map(|j| g.ones_in_snp(j)).collect();
        let mut sum = 0.0;
        for i in 0..n {
            let a = g.snp_words(i);
            for j in i + 1..n {
                let c_ij = and_popcount_pinned(a, g.snp_words(j));
                let r2 =
                    ld_pair_from_counts(counts[i], counts[j], c_ij, n_samples, NanPolicy::Zero).r2;
                sum += r2;
            }
        }
        sum
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_core::LdEngine;

    fn pseudo(n_samples: usize, n_snps: usize, seed: u64) -> BitMatrix {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut g = BitMatrix::zeros(n_samples, n_snps);
        for j in 0..n_snps {
            for smp in 0..n_samples {
                if next() % 3 == 0 {
                    g.set(smp, j, true);
                }
            }
        }
        g
    }

    #[test]
    fn matches_engine() {
        let g = pseudo(200, 18, 7);
        let base = OmegaPlusKernel::new().r2_matrix(&g.full_view(), 1);
        let engine = LdEngine::new().r2_matrix(&g);
        for i in 0..18 {
            for j in i..18 {
                let (a, b) = (base.get(i, j), engine.get(i, j));
                assert!(
                    (a - b).abs() < 1e-10 || (a.is_nan() && b.is_nan()),
                    "({i},{j}): {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn threads_do_not_change_results() {
        let g = pseudo(90, 25, 8);
        let one = OmegaPlusKernel::new().r2_matrix(&g.full_view(), 1);
        let many = OmegaPlusKernel::new().r2_matrix(&g.full_view(), 8);
        assert_eq!(one.packed(), many.packed());
    }

    #[test]
    fn window_sum_equals_matrix_sum() {
        let g = pseudo(80, 12, 9);
        let k = OmegaPlusKernel::new().nan_policy(NanPolicy::Zero);
        let m = k.r2_matrix(&g.full_view(), 1);
        let by_matrix: f64 = m.iter_pairs().map(|(_, _, v)| v).sum();
        let by_window = k.r2_window_sum(&g.full_view());
        assert!((by_matrix - by_window).abs() < 1e-9);
    }

    #[test]
    fn pair_matches_matrix() {
        let g = pseudo(100, 6, 10);
        let k = OmegaPlusKernel::new();
        let m = k.r2_matrix(&g.full_view(), 1);
        let p = k.ld_pair(&g, 1, 4);
        assert!((m.get(1, 4) - p.r2).abs() < 1e-12 || (m.get(1, 4).is_nan() && p.r2.is_nan()));
    }
}
