//! The naive byte-per-allele baseline.
//!
//! One `u8` per allele, one multiply-accumulate per sample per pair —
//! the formulation of the paper's §II-B pseudocode before any of the
//! bit-packing/popcount/blocking machinery. This is the performance class
//! of straightforward scripting-language or R implementations
//! (PopGenome et al.), and the zero-optimization anchor of the ablation.

use ld_bitmat::BitMatrix;
use ld_core::fused::SyncSlice;
use ld_core::{ld_pair_from_counts, LdMatrix, LdPair, NanPolicy};
use ld_parallel::parallel_for_dynamic;

/// A sample-major byte matrix: SNP `j` is a contiguous `Vec<u8>` of 0/1.
#[derive(Clone, Debug)]
pub struct ByteMatrix {
    cols: Vec<Vec<u8>>,
    n_samples: usize,
}

impl ByteMatrix {
    /// Expands a packed [`BitMatrix`] into bytes.
    pub fn from_bitmatrix(g: &BitMatrix) -> Self {
        let cols = (0..g.n_snps()).map(|j| g.snp_to_bytes(j)).collect();
        Self {
            cols,
            n_samples: g.n_samples(),
        }
    }

    /// Number of samples.
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// Number of SNPs.
    pub fn n_snps(&self) -> usize {
        self.cols.len()
    }

    /// The byte column of SNP `j`.
    pub fn column(&self, j: usize) -> &[u8] {
        &self.cols[j]
    }

    /// Per-pair LD statistics via byte dot products.
    pub fn ld_pair(&self, i: usize, j: usize, policy: NanPolicy) -> LdPair {
        let (a, b) = (&self.cols[i], &self.cols[j]);
        let mut c_ii = 0u64;
        let mut c_jj = 0u64;
        let mut c_ij = 0u64;
        for (&x, &y) in a.iter().zip(b) {
            c_ii += x as u64;
            c_jj += y as u64;
            c_ij += (x * y) as u64;
        }
        ld_pair_from_counts(c_ii, c_jj, c_ij, self.n_samples as u64, policy)
    }

    /// All-pairs `r²`, the naive way. `threads` parallelizes over rows with
    /// dynamic scheduling (the triangular workload is skewed).
    pub fn r2_matrix(&self, threads: usize, policy: NanPolicy) -> LdMatrix {
        let n = self.n_snps();
        let mut out = LdMatrix::zeros(n);
        // Precompute per-SNP counts once (the naive tools do this too).
        let counts: Vec<u64> = self
            .cols
            .iter()
            .map(|c| c.iter().map(|&x| x as u64).sum())
            .collect();
        let packed = out.packed_mut();
        let ptr = SyncSlice::new(packed);
        parallel_for_dynamic(threads, n, 8, |rows| {
            for i in rows.clone() {
                let off = i * n - (i * i - i) / 2;
                // SAFETY: each row writes its own disjoint packed range.
                let dst = unsafe { ptr.slice(off, n - i) };
                let a = &self.cols[i];
                for (t, j) in (i..n).enumerate() {
                    let b = &self.cols[j];
                    let mut c_ij = 0u64;
                    for (&x, &y) in a.iter().zip(b) {
                        c_ij += (x * y) as u64;
                    }
                    dst[t] = ld_pair_from_counts(
                        counts[i],
                        counts[j],
                        c_ij,
                        self.n_samples as u64,
                        policy,
                    )
                    .r2;
                }
            }
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_core::LdEngine;

    fn pseudo(n_samples: usize, n_snps: usize, seed: u64) -> BitMatrix {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut g = BitMatrix::zeros(n_samples, n_snps);
        for j in 0..n_snps {
            for smp in 0..n_samples {
                if next() % 3 == 0 {
                    g.set(smp, j, true);
                }
            }
        }
        g
    }

    #[test]
    fn matches_engine_r2() {
        let g = pseudo(120, 15, 1);
        let bytes = ByteMatrix::from_bitmatrix(&g);
        let naive = bytes.r2_matrix(1, NanPolicy::Propagate);
        let engine = LdEngine::new().r2_matrix(&g);
        for i in 0..15 {
            for j in i..15 {
                let (a, b) = (naive.get(i, j), engine.get(i, j));
                assert!(
                    (a - b).abs() < 1e-10 || (a.is_nan() && b.is_nan()),
                    "({i},{j}): {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn threaded_matches_single() {
        let g = pseudo(64, 20, 2);
        let bytes = ByteMatrix::from_bitmatrix(&g);
        let one = bytes.r2_matrix(1, NanPolicy::Zero);
        let four = bytes.r2_matrix(4, NanPolicy::Zero);
        assert_eq!(one.packed(), four.packed());
    }

    #[test]
    fn pair_accessors() {
        let g = pseudo(50, 4, 3);
        let bytes = ByteMatrix::from_bitmatrix(&g);
        assert_eq!(bytes.n_samples(), 50);
        assert_eq!(bytes.n_snps(), 4);
        assert_eq!(bytes.column(2).len(), 50);
        let p = bytes.ld_pair(0, 1, NanPolicy::Propagate);
        let q = LdEngine::new().ld_pair(&g, 0, 1);
        assert!((p.r2 - q.r2).abs() < 1e-12 || (p.r2.is_nan() && q.r2.is_nan()));
    }
}
