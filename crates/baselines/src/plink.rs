//! The PLINK-1.9-style baseline: 2-bit genotypes, masked-popcount
//! contingency tables, dosage-correlation or EM-haplotype `r²`.
//!
//! PLINK 1.9's `--r2` kernel works on the `.bed` 2-bit encoding directly:
//! for every variant pair it derives per-genotype lane masks with a handful
//! of logic ops and reduces them with `POPCNT`, building the 3×3 genotype
//! contingency table; `r²` then comes either from the correlation of
//! dosage vectors or (PLINK's default for unphased data) from
//! maximum-likelihood haplotype frequencies via EM over the double-het
//! ambiguity. The kernel is vector-friendly but has **no GotoBLAS-style
//! blocking**, and genotypes carry half the density per bit (2 bits per
//! individual vs 1 per haplotype) — both facts the paper's Tables I–III
//! speedups rest on.

use ld_bitmat::{GenotypeMatrix, WORD_BITS};
use ld_core::fused::SyncSlice;
use ld_core::{LdMatrix, NanPolicy};
use ld_parallel::parallel_for_dynamic;

/// Bit 0 of every 2-bit lane.
const LANES: u64 = 0x5555_5555_5555_5555;

/// How the PLINK-style kernel turns a contingency table into `r²`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum PlinkR2Mode {
    /// Pearson correlation of allele dosages (0/1/2); missing excluded.
    #[default]
    Dosage,
    /// Maximum-likelihood haplotype frequencies via EM (PLINK's default
    /// for unphased genotype data), then Eq. 2 on the estimated
    /// frequencies.
    Em,
}

/// The 3×3 (+missing-excluded) genotype contingency table of one pair.
/// Index 0 = homA2 (dosage 0), 1 = het, 2 = homA1 (dosage 2).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PairTable {
    /// `cells[dx][dy]` = individuals with dosage `dx` at x and `dy` at y.
    pub cells: [[u64; 3]; 3],
}

impl PairTable {
    /// Total individuals with both calls present.
    pub fn n(&self) -> u64 {
        self.cells.iter().flatten().sum()
    }
}

/// Builds the contingency table from two packed 2-bit SNP columns.
/// Padding lanes are missing-coded and therefore never counted.
pub fn pair_table(x: &[u64], y: &[u64]) -> PairTable {
    debug_assert_eq!(x.len(), y.len());
    let mut t = PairTable::default();
    for (&wx, &wy) in x.iter().zip(y) {
        let xl = wx & LANES;
        let xh = (wx >> 1) & LANES;
        let yl = wy & LANES;
        let yh = (wy >> 1) & LANES;
        // bed codes: 00 homA1, 01 missing, 10 het, 11 homA2 — one indicator
        // bit per lane, at the even positions.
        let xm = [
            xl & xh,           // 11: homA2, dosage 0
            !xl & xh & LANES,  // 10: het, dosage 1
            !xl & !xh & LANES, // 00: homA1, dosage 2
        ];
        let ym = [yl & yh, !yl & yh & LANES, !yl & !yh & LANES];
        for (dx, mx) in xm.iter().enumerate() {
            for (dy, my) in ym.iter().enumerate() {
                t.cells[dx][dy] += ld_popcount::strategies::popcount_pinned(mx & my);
            }
        }
    }
    t
}

/// Dosage-correlation `r²` from a contingency table.
pub fn r2_dosage(t: &PairTable, policy: NanPolicy) -> f64 {
    let n = t.n() as f64;
    if n == 0.0 {
        return nan_or_zero(policy);
    }
    let mut sx = 0.0;
    let mut sy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    let mut sxy = 0.0;
    for dx in 0..3 {
        for dy in 0..3 {
            let c = t.cells[dx][dy] as f64;
            let (x, y) = (dx as f64, dy as f64);
            sx += c * x;
            sy += c * y;
            sxx += c * x * x;
            syy += c * y * y;
            sxy += c * x * y;
        }
    }
    let cov = n * sxy - sx * sy;
    let vx = n * sxx - sx * sx;
    let vy = n * syy - sy * sy;
    if vx > 0.0 && vy > 0.0 {
        (cov * cov) / (vx * vy)
    } else {
        nan_or_zero(policy)
    }
}

/// EM-estimated haplotype frequencies (pAB, pAb, paB, pab) from a table.
/// Returns `None` when no called individuals exist.
pub fn em_haplotype_freqs(t: &PairTable) -> Option<(f64, f64, f64, f64)> {
    let n = t.n();
    if n == 0 {
        return None;
    }
    let c = &t.cells;
    let two_n = (2 * n) as f64;
    // Unambiguous haplotype contributions; indices are dosages of the
    // A1/"A" allele, so dx=2 means genotype AA.
    let fixed_ab = (2 * c[2][2] + c[2][1] + c[1][2]) as f64; // AB
    let fixed_a_b = (2 * c[2][0] + c[2][1] + c[1][0]) as f64; // Ab
    let fixed_b_a = (2 * c[0][2] + c[0][1] + c[1][2]) as f64; // aB
    let fixed_ab_low = (2 * c[0][0] + c[0][1] + c[1][0]) as f64; // ab
    let dh = c[1][1] as f64; // double hets: AB/ab or Ab/aB

    // Start from linkage equilibrium.
    let p_a = (fixed_ab + fixed_a_b + dh) / two_n;
    let p_b = (fixed_ab + fixed_b_a + dh) / two_n;
    let mut p_ab = (p_a * p_b).clamp(1e-12, 1.0);
    let mut p_a_b = (p_a * (1.0 - p_b)).max(0.0);
    let mut p_b_a = ((1.0 - p_a) * p_b).max(0.0);
    let mut p_ab_low = ((1.0 - p_a) * (1.0 - p_b)).max(0.0);

    for _ in 0..100 {
        // E: split double hets by relative phase likelihood.
        let num = p_ab * p_ab_low;
        let den = num + p_a_b * p_b_a;
        let w = if den > 0.0 { num / den } else { 0.5 };
        // M: update frequencies.
        let n_ab = fixed_ab + dh * w;
        let n_a_b = fixed_a_b + dh * (1.0 - w);
        let n_b_a = fixed_b_a + dh * (1.0 - w);
        let n_ab_low = fixed_ab_low + dh * w;
        let (q_ab, q_a_b, q_b_a, q_ab_low) =
            (n_ab / two_n, n_a_b / two_n, n_b_a / two_n, n_ab_low / two_n);
        let delta = (q_ab - p_ab).abs();
        p_ab = q_ab;
        p_a_b = q_a_b;
        p_b_a = q_b_a;
        p_ab_low = q_ab_low;
        if delta < 1e-13 {
            break;
        }
    }
    Some((p_ab, p_a_b, p_b_a, p_ab_low))
}

/// EM-based `r²` from a contingency table.
pub fn r2_em(t: &PairTable, policy: NanPolicy) -> f64 {
    let Some((p_ab, p_a_b, p_b_a, _)) = em_haplotype_freqs(t) else {
        return nan_or_zero(policy);
    };
    let p_a = p_ab + p_a_b;
    let p_b = p_ab + p_b_a;
    let d = p_ab - p_a * p_b;
    let denom = p_a * (1.0 - p_a) * p_b * (1.0 - p_b);
    if denom > 0.0 {
        d * d / denom
    } else {
        nan_or_zero(policy)
    }
}

fn nan_or_zero(policy: NanPolicy) -> f64 {
    match policy {
        NanPolicy::Propagate => f64::NAN,
        NanPolicy::Zero => 0.0,
    }
}

/// The PLINK-style all-pairs driver.
#[derive(Clone, Copy, Debug, Default)]
pub struct PlinkKernel {
    mode: PlinkR2Mode,
    policy: NanPolicy,
}

impl PlinkKernel {
    /// Dosage-mode kernel with NaN propagation.
    pub fn new() -> Self {
        Self::default()
    }

    /// Selects the `r²` estimator.
    pub fn mode(mut self, mode: PlinkR2Mode) -> Self {
        self.mode = mode;
        self
    }

    /// Sets the undefined-pair policy.
    pub fn nan_policy(mut self, policy: NanPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// `r²` of one variant pair.
    pub fn r2_pair(&self, g: &GenotypeMatrix, i: usize, j: usize) -> f64 {
        let t = pair_table(g.snp_words(i), g.snp_words(j));
        match self.mode {
            PlinkR2Mode::Dosage => r2_dosage(&t, self.policy),
            PlinkR2Mode::Em => r2_em(&t, self.policy),
        }
    }

    /// All-pairs `r²`, dynamically scheduled over rows.
    pub fn r2_matrix(&self, g: &GenotypeMatrix, threads: usize) -> LdMatrix {
        let n = g.n_snps();
        let mut out = LdMatrix::zeros(n);
        let kernel = *self;
        {
            let packed = out.packed_mut();
            let ptr = SyncSlice::new(packed);
            parallel_for_dynamic(threads, n, 4, |rows| {
                for i in rows.clone() {
                    let off = i * n - (i * i - i) / 2;
                    // SAFETY: disjoint packed row ranges.
                    let dst = unsafe { ptr.slice(off, n - i) };
                    let a = g.snp_words(i);
                    for (t_idx, j) in (i..n).enumerate() {
                        let t = pair_table(a, g.snp_words(j));
                        dst[t_idx] = match kernel.mode {
                            PlinkR2Mode::Dosage => r2_dosage(&t, kernel.policy),
                            PlinkR2Mode::Em => r2_em(&t, kernel.policy),
                        };
                    }
                }
            });
        }
        out
    }
}

/// Words per genotype SNP for sanity checks (32 genotypes per u64 vs 64
/// haplotypes per u64 — genotypes need twice the words per individual).
pub fn genotype_words(n_individuals: usize) -> usize {
    n_individuals.div_ceil(WORD_BITS / 2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ld_bitmat::{BitMatrix, Genotype};
    use ld_core::LdEngine;

    fn pseudo_haps(n_samples: usize, n_snps: usize, seed: u64) -> BitMatrix {
        let mut s = seed | 1;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut g = BitMatrix::zeros(n_samples, n_snps);
        for j in 0..n_snps {
            for smp in 0..n_samples {
                if next() % 3 == 0 {
                    g.set(smp, j, true);
                }
            }
        }
        g
    }

    #[test]
    fn table_counts_by_hand() {
        use Genotype::*;
        let cols = [
            vec![HomA1, HomA1, Het, HomA2, Missing],
            vec![HomA1, Het, Het, HomA2, HomA1],
        ];
        let g = GenotypeMatrix::from_columns(5, cols).unwrap();
        let t = pair_table(g.snp_words(0), g.snp_words(1));
        assert_eq!(t.cells[2][2], 1); // (HomA1, HomA1)
        assert_eq!(t.cells[2][1], 1); // (HomA1, Het)
        assert_eq!(t.cells[1][1], 1); // (Het, Het)
        assert_eq!(t.cells[0][0], 1); // (HomA2, HomA2)
        assert_eq!(t.n(), 4); // missing excluded
    }

    #[test]
    fn homozygous_lift_matches_haplotype_r2() {
        // On haploid data lifted to homozygous diploids, genotypic r²
        // equals haplotypic r² — the oracle linking PLINK to the engine.
        let haps = pseudo_haps(150, 12, 21);
        let genos = GenotypeMatrix::from_haplotypes_as_homozygous(&haps);
        let engine = LdEngine::new().r2_matrix(&haps);
        for mode in [PlinkR2Mode::Dosage, PlinkR2Mode::Em] {
            let plink = PlinkKernel::new().mode(mode).r2_matrix(&genos, 1);
            for i in 0..12 {
                for j in i..12 {
                    let (a, b) = (plink.get(i, j), engine.get(i, j));
                    assert!(
                        (a - b).abs() < 1e-6 || (a.is_nan() && b.is_nan()),
                        "{mode:?} ({i},{j}): {a} vs {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn em_equals_dosage_without_double_hets() {
        let haps = pseudo_haps(100, 8, 22);
        let genos = GenotypeMatrix::from_haplotypes_as_homozygous(&haps);
        let d = PlinkKernel::new()
            .mode(PlinkR2Mode::Dosage)
            .r2_matrix(&genos, 1);
        let e = PlinkKernel::new()
            .mode(PlinkR2Mode::Em)
            .r2_matrix(&genos, 1);
        for (i, j, v) in d.iter_upper() {
            let w = e.get(i, j);
            assert!(
                (v - w).abs() < 1e-6 || (v.is_nan() && w.is_nan()),
                "({i},{j})"
            );
        }
    }

    #[test]
    fn diploid_pairing_runs_and_is_bounded() {
        let haps = pseudo_haps(200, 10, 23);
        let genos = GenotypeMatrix::from_haplotype_pairs(&haps).unwrap();
        for mode in [PlinkR2Mode::Dosage, PlinkR2Mode::Em] {
            let m = PlinkKernel::new().mode(mode).r2_matrix(&genos, 2);
            for (_, _, v) in m.iter_upper() {
                assert!(
                    v.is_nan() || (-1e-9..=1.0 + 1e-9).contains(&v),
                    "{mode:?}: {v}"
                );
            }
        }
    }

    #[test]
    fn em_recovers_known_frequencies() {
        use Genotype::*;
        // Construct genotypes from known phased haplotypes:
        // hap pool: AB x 5, Ab x 2, aB x 1, ab x 2 -> pair them up
        let haps_x = [1u8, 1, 1, 1, 1, 1, 1, 0, 0, 0]; // A allele
        let haps_y = [1u8, 1, 1, 1, 1, 0, 0, 1, 0, 0]; // B allele
        let n_ind = 5;
        let mut col_x = Vec::new();
        let mut col_y = Vec::new();
        for i in 0..n_ind {
            let (a1, a2) = (haps_x[2 * i] == 1, haps_x[2 * i + 1] == 1);
            let (b1, b2) = (haps_y[2 * i] == 1, haps_y[2 * i + 1] == 1);
            col_x.push(Genotype::from_haplotypes(a1, a2));
            col_y.push(Genotype::from_haplotypes(b1, b2));
        }
        let g = GenotypeMatrix::from_columns(n_ind, [col_x, col_y]).unwrap();
        let t = pair_table(g.snp_words(0), g.snp_words(1));
        let (p_ab, ..) = em_haplotype_freqs(&t).unwrap();
        // True pAB = 5/10; EM on 5 individuals should land close.
        assert!((p_ab - 0.5).abs() < 0.12, "pAB = {p_ab}");
        let _ = [HomA1, Het, HomA2]; // silence unused-import lint paths
    }

    #[test]
    fn all_missing_column_policy() {
        let g = GenotypeMatrix::all_missing(10, 2);
        let k = PlinkKernel::new();
        assert!(k.r2_pair(&g, 0, 1).is_nan());
        let z = PlinkKernel::new().nan_policy(NanPolicy::Zero);
        assert_eq!(z.r2_pair(&g, 0, 1), 0.0);
    }

    #[test]
    fn words_math() {
        assert_eq!(genotype_words(32), 1);
        assert_eq!(genotype_words(33), 2);
        assert_eq!(genotype_words(64), 2);
    }

    #[test]
    fn threaded_matches_single() {
        let haps = pseudo_haps(64, 16, 25);
        let genos = GenotypeMatrix::from_haplotypes_as_homozygous(&haps);
        let one = PlinkKernel::new().r2_matrix(&genos, 1);
        let many = PlinkKernel::new().r2_matrix(&genos, 6);
        for (a, b) in one.packed().iter().zip(many.packed()) {
            assert!((a == b) || (a.is_nan() && b.is_nan()));
        }
    }
}
