//! Telemetry-plane contract tests: log₂ bucket exactness, rolling-window
//! behaviour under a mocked clock, concurrent-writer consistency, and
//! the byte-for-byte Prometheus exposition golden.
//!
//! The rolling-histogram tests drive the `*_at` entry points with
//! synthetic timestamps — no sleeps, no wall clock — so window expiry is
//! deterministic. The golden test renders the pure encoder over fixed
//! inputs and pins the output against `tests/golden/exposition.prom`
//! (regenerate with `LD_UPDATE_GOLDEN=1 cargo test -p ld-trace`).

use ld_trace::histogram::{
    bucket_ceiling_ns, bucket_index, Histogram, HistogramSnapshot, RollingHistogram, BUCKETS,
    SLICES, SLICE_SECS, WINDOWS,
};
use ld_trace::prometheus::{escape_label_value, render, PromGauge};
use ld_trace::telemetry::{ServeTelemetry, WindowStats};
use ld_trace::Counter;

const SEC: u64 = 1_000_000_000;

#[test]
fn bucket_boundaries_are_exact() {
    // every power of two starts a new bucket; its predecessor ends one
    for i in 1..BUCKETS - 1 {
        let lo = 1u64 << i;
        assert_eq!(bucket_index(lo), i, "2^{i} must open bucket {i}");
        assert_eq!(
            bucket_index(lo - 1),
            i - 1,
            "2^{i}-1 must close bucket {}",
            i - 1
        );
        assert_eq!(bucket_ceiling_ns(i - 1), lo - 1);
        assert_eq!(bucket_index(bucket_ceiling_ns(i)), i);
    }
    // clamp tail: everything from 2^(BUCKETS-1) up folds into the last bucket
    assert_eq!(bucket_index(1u64 << (BUCKETS - 1)), BUCKETS - 1);
    assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
    // zero shares bucket 0 with 1 ns
    assert_eq!(bucket_index(0), 0);
    assert_eq!(bucket_index(1), 0);
}

#[test]
fn rolling_window_expires_under_mocked_clock() {
    let r = RollingHistogram::new();
    let t0 = 100 * SEC;
    for _ in 0..50 {
        r.record_at(t0, 1_000_000); // 1 ms
    }
    for (label, secs) in WINDOWS {
        assert_eq!(r.window_at(t0, secs).count, 50, "window {label} at t0");
    }
    // after 20 s the 10s window is empty, the 1m/5m windows still see it
    let t1 = t0 + 20 * SEC;
    assert_eq!(r.window_at(t1, 10).count, 0);
    assert_eq!(r.window_at(t1, 60).count, 50);
    assert_eq!(r.window_at(t1, 300).count, 50);
    // after 7 min everything is gone
    let t2 = t0 + 420 * SEC;
    for (_, secs) in WINDOWS {
        assert_eq!(r.window_at(t2, secs).count, 0);
    }
}

#[test]
fn rolling_p99_moves_within_one_window_of_a_spike() {
    let r = RollingHistogram::new();
    let t0 = 1000 * SEC;
    for _ in 0..200 {
        r.record_at(t0, 500_000); // 0.5 ms steady state
    }
    let before = r.window_at(t0, 10).p99_ns().unwrap();
    assert!(
        before < 2_000_000,
        "baseline p99 {before} should be sub-2ms"
    );
    // inject a latency spike 2 s later
    let t1 = t0 + 2 * SEC;
    for _ in 0..5 {
        r.record_at(t1, 800_000_000); // 0.8 s
    }
    let during = r.window_at(t1, 10).p99_ns().unwrap();
    assert!(
        during >= 800_000_000,
        "10s p99 {during} must surface the spike"
    );
    // one window (+ slice quantization) later the spike has rolled out
    let t2 = t1 + 10 * SEC + SLICE_SECS * SEC;
    let after = r.window_at(t2, 10);
    assert_eq!(after.count, 0, "spike must expire after the window passes");
    // but the 1m window still remembers it
    assert!(r.window_at(t2, 60).p99_ns().unwrap() >= 800_000_000);
}

#[test]
fn concurrent_writers_never_lose_samples() {
    let h = std::sync::Arc::new(Histogram::new());
    let r = std::sync::Arc::new(RollingHistogram::new());
    const THREADS: usize = 8;
    const PER: u64 = 20_000;
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let h = h.clone();
        let r = r.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..PER {
                let ns = (t as u64 + 1) * 1000 + i % 7;
                h.record(ns);
                // fixed timestamp: all writers share one slice, so the
                // rotation path cannot drop samples and counts are exact
                r.record_at(42 * SEC, ns);
            }
        }));
    }
    for hd in handles {
        hd.join().expect("writer thread");
    }
    let total = THREADS as u64 * PER;
    let hs = h.snapshot();
    assert_eq!(hs.count, total);
    assert_eq!(hs.buckets.iter().sum::<u64>(), total);
    let ws = r.window_at(42 * SEC, 10);
    assert_eq!(ws.count, total);
    assert_eq!(ws.buckets.iter().sum::<u64>(), total);
    assert_eq!(ws.sum_ns, hs.sum_ns);
}

#[test]
fn concurrent_rotation_keeps_slices_coherent() {
    // Writers race across slice boundaries. The documented contract is
    // approximate at the edges: a recycle may drop boundary samples,
    // and a writer preempted between its bucket and count adds while
    // another thread recycles the slice can tear one sample. Each such
    // race skews bucket-sum vs count by at most 1, and races are
    // bounded by writers x rotations — so divergence must stay tiny
    // relative to the 200k recorded samples, not zero.
    const WRITERS: u64 = 4;
    const PER: u64 = 50_000;
    let r = std::sync::Arc::new(RollingHistogram::new());
    let mut handles = Vec::new();
    for t in 0..WRITERS {
        let r = r.clone();
        handles.push(std::thread::spawn(move || {
            for i in 0..PER {
                // sweep time forward so slices rotate mid-test
                let now = (i / 100) * SLICE_SECS * SEC / 2 + t;
                r.record_at(now, 1000 + i % 11);
            }
        }));
    }
    for hd in handles {
        hd.join().expect("writer thread");
    }
    let w = r.window_at(PER / 100 * SLICE_SECS * SEC / 2, 300);
    let sum: u64 = w.buckets.iter().sum();
    let diff = sum.abs_diff(w.count);
    let bound = WRITERS * SLICES as u64;
    assert!(
        diff <= bound,
        "bucket-sum/count divergence {diff} exceeds the torn-write bound {bound} \
         (sum={sum}, count={})",
        w.count
    );
    assert!(w.count > 0);
    assert!(w.count <= WRITERS * PER);
}

/// Fixed, fully deterministic encoder inputs for the golden exposition.
fn golden_inputs() -> ([u64; Counter::COUNT], ServeTelemetry, Vec<PromGauge>) {
    let mut counters = [0u64; Counter::COUNT];
    for (i, slot) in counters.iter_mut().enumerate() {
        *slot = (i as u64 + 1) * 10;
    }
    let mut ok = HistogramSnapshot::default();
    ok.buckets[10] = 90; // ~1–2 µs
    ok.buckets[20] = 10; // ~1–2 ms
    ok.count = 100;
    ok.sum_ns = 90 * 1_500 + 10 * 1_500_000;
    let mut shed = HistogramSnapshot::default();
    shed.buckets[0] = 3;
    shed.count = 3;
    shed.sum_ns = 3;
    let mut pair = HistogramSnapshot::default();
    pair.buckets[BUCKETS - 1] = 1; // one absurdly slow request in the tail
    pair.count = 1;
    pair.sum_ns = 1u64 << 40;
    let mut queue = HistogramSnapshot::default();
    queue.buckets[5] = 7;
    queue.count = 7;
    queue.sum_ns = 7 * 40;
    let tel = ServeTelemetry {
        service_by_opcode: vec![("health", HistogramSnapshot::default()), ("pair", pair)],
        total_by_outcome: vec![("ok", ok), ("shed", shed)],
        queue_wait: queue,
        windows: vec![
            WindowStats {
                window: "10s",
                count: 42,
                p50_ns: Some(2047),
                p99_ns: Some(2_097_151),
                err_count: 2,
            },
            WindowStats {
                window: "1m",
                count: 0,
                p50_ns: None,
                p99_ns: None,
                err_count: 0,
            },
        ],
    };
    let gauges = vec![
        PromGauge::new(
            "gemm_ld_queue_depth",
            "Jobs waiting in the request queue",
            3.0,
        ),
        PromGauge {
            name: "gemm_ld_panel_resident_bytes".into(),
            help: "Resident bytes per panel",
            labels: format!("panel=\"{}\"", escape_label_value("chr\"1\\a")),
            value: 4096.0,
        },
    ];
    (counters, tel, gauges)
}

#[test]
fn prometheus_exposition_matches_golden_byte_for_byte() {
    let (counters, tel, gauges) = golden_inputs();
    let text = render(&counters, &tel, &gauges);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/exposition.prom");
    if std::env::var("LD_UPDATE_GOLDEN").is_ok() {
        std::fs::write(path, &text).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(path).expect("read golden exposition");
    assert_eq!(
        text, golden,
        "Prometheus exposition drifted from tests/golden/exposition.prom \
         (LD_UPDATE_GOLDEN=1 cargo test -p ld-trace to regenerate)"
    );
}

#[test]
fn exposition_histogram_invariants_hold() {
    let (counters, tel, gauges) = golden_inputs();
    let text = render(&counters, &tel, &gauges);
    // every histogram series ends in a +Inf bucket equal to its _count
    let inf: Vec<&str> = text.lines().filter(|l| l.contains("le=\"+Inf\"")).collect();
    assert_eq!(inf.len(), 5, "two outcomes + two opcodes + queue");
    for line in inf {
        let v = line.rsplit(' ').next().unwrap();
        let name_labels = line.split(' ').next().unwrap();
        let base = name_labels.split("_bucket").next().unwrap();
        let labels = name_labels
            .split('{')
            .nth(1)
            .unwrap()
            .trim_end_matches('}')
            .split(",le=")
            .next()
            .unwrap()
            .to_string();
        let count_line = text
            .lines()
            .find(|l| {
                l.starts_with(&format!("{base}_count"))
                    && (labels.starts_with("le=") || l.contains(&labels))
            })
            .unwrap();
        assert_eq!(
            count_line.rsplit(' ').next().unwrap(),
            v,
            "{base} +Inf != count"
        );
    }
}
