//! Golden test of the Chrome trace-event exporter and the analysis
//! report's schema fidelity.
//!
//! The exporter is a pure function of the snapshot, so a fixed
//! deterministic two-worker snapshot must serialize to an exact byte
//! string — any drift in the Perfetto fields (`ph`/`pid`/`tid`/`ts`/
//! `dur`) is a breaking change for downstream tooling and must show up
//! here as a diff, not in someone's trace viewer.
//!
//! Deliberately NOT gated on the `metrics` feature: snapshots are plain
//! data and the exporter/analyzer must behave identically in both
//! builds (the feature only controls whether a live recorder fills
//! snapshots in).

use ld_trace::analyze::analyze;
use ld_trace::export::chrome_trace_json;
use ld_trace::recorder::{SpanEvent, SpanKind, TraceSnapshot};
use ld_trace::MetricsReport;

/// A deterministic two-worker timeline: worker 0 packs inside a chunk,
/// worker 1 runs a stolen chunk and emits a slab marker.
fn two_worker_snapshot() -> TraceSnapshot {
    TraceSnapshot {
        events: vec![
            SpanEvent {
                kind: SpanKind::Chunk,
                worker: 0,
                start_ns: 1_000,
                dur_ns: 9_000,
                arg: 0, // chunk 0, not stolen
            },
            SpanEvent {
                kind: SpanKind::PackA,
                worker: 0,
                start_ns: 2_000,
                dur_ns: 3_000,
                arg: 512,
            },
            SpanEvent {
                kind: SpanKind::Chunk,
                worker: 1,
                start_ns: 10_000,
                dur_ns: 5_000,
                arg: 3, // chunk 1, stolen
            },
            SpanEvent {
                kind: SpanKind::SlabEmit,
                worker: 1,
                start_ns: 11_500,
                dur_ns: 0,
                arg: 7,
            },
        ],
        dropped: 0,
        open_spans: 0,
        capacity_per_worker: 16,
        workers: 2,
    }
}

#[test]
fn chrome_trace_json_matches_golden() {
    let golden = concat!(
        "{\"traceEvents\":[\n",
        "  {\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"thread_name\",\"args\":{\"name\":\"worker-0\"}},\n",
        "  {\"ph\":\"M\",\"pid\":1,\"tid\":1,\"name\":\"thread_name\",\"args\":{\"name\":\"worker-1\"}},\n",
        "  {\"ph\":\"X\",\"pid\":1,\"tid\":0,\"name\":\"chunk\",\"ts\":1.000,\"dur\":9.000,\"args\":{\"arg\":0}},\n",
        "  {\"ph\":\"X\",\"pid\":1,\"tid\":0,\"name\":\"pack_a\",\"ts\":2.000,\"dur\":3.000,\"args\":{\"arg\":512}},\n",
        "  {\"ph\":\"X\",\"pid\":1,\"tid\":1,\"name\":\"chunk\",\"ts\":10.000,\"dur\":5.000,\"args\":{\"arg\":3}},\n",
        "  {\"ph\":\"i\",\"pid\":1,\"tid\":1,\"name\":\"slab_emit\",\"ts\":11.500,\"s\":\"t\",\"args\":{\"arg\":7}}\n",
        "],\"displayTimeUnit\":\"ms\",\"metadata\":{\"trace_events_dropped\":0,\"capacity_per_worker\":16,\"workers\":2}}\n",
    );
    assert_eq!(chrome_trace_json(&two_worker_snapshot()), golden);
}

/// Top-level keys `trace_report.schema.json` marks required, kept in one
/// place so the test pins the report and the schema against each other.
const REQUIRED_KEYS: [&str; 15] = [
    "schema_version",
    "wall_ns",
    "workers",
    "events",
    "dropped",
    "open_spans",
    "nesting_violations",
    "busy_ns_total",
    "idle_ns_total",
    "imbalance_ratio",
    "share_sum",
    "per_worker",
    "layers",
    "steal_latency",
    "roofline",
];

#[test]
fn trace_report_json_carries_every_schema_required_key() {
    let snap = two_worker_snapshot();
    let report = MetricsReport::capture()
        .with_wall_ns(15_000)
        .with_threads(2);
    let json = analyze(&snap, &report, Some(8.0)).to_json();
    let schema = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../schemas/trace_report.schema.json"
    ))
    .expect("schema file must exist");
    for key in REQUIRED_KEYS {
        let quoted = format!("\"{key}\"");
        assert!(json.contains(&quoted), "report JSON lacks {quoted}");
        assert!(schema.contains(&quoted), "schema lacks {quoted}");
    }
    // The analysis invariant the CI trace leg also gates on: the layer
    // partition tiles the workers × wall area, so shares sum to 1.
    let rep = analyze(&snap, &report, None);
    assert!(
        (rep.share_sum() - 1.0).abs() < 0.01,
        "layer shares must sum to 1 within 1%, got {}",
        rep.share_sum()
    );
}

#[test]
fn perfetto_fields_are_well_formed_on_every_event_line() {
    let json = chrome_trace_json(&two_worker_snapshot());
    let mut spans = 0;
    let mut instants = 0;
    for line in json.lines().filter(|l| l.trim_start().starts_with('{')) {
        let line = line.trim().trim_end_matches(',');
        if !line.starts_with("{\"ph\":") {
            continue;
        }
        assert!(line.contains("\"pid\":1"), "event lacks pid: {line}");
        assert!(line.contains("\"tid\":"), "event lacks tid: {line}");
        if line.contains("\"ph\":\"X\"") {
            assert!(line.contains("\"ts\":"), "complete event lacks ts: {line}");
            assert!(
                line.contains("\"dur\":"),
                "complete event lacks dur: {line}"
            );
            spans += 1;
        } else if line.contains("\"ph\":\"i\"") {
            assert!(line.contains("\"ts\":"), "instant lacks ts: {line}");
            assert!(line.contains("\"s\":\"t\""), "instant lacks scope: {line}");
            instants += 1;
        }
    }
    assert_eq!(spans, 3);
    assert_eq!(instants, 1);
}
