//! Flight-recorder invariants, exercised through the public API only.
//!
//! Everything here is gated on the `metrics` feature: with it compiled
//! out the recorder is a set of inlined no-ops and there is nothing to
//! observe (`cargo test -p ld-trace --features metrics` runs the real
//! thing; the CI feature matrix runs both).
#![cfg(feature = "metrics")]

use ld_trace::recorder::{
    instant, is_active, set_worker, start, stop, RecorderConfig, Span, SpanKind, TraceSnapshot,
};
use ld_trace::{Counter, MetricsReport};

/// Recorder state is process-global: serialize every test in this binary.
fn lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock()
        .unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// Asserts the per-worker timeline invariants every snapshot must hold:
/// sorted by start within a worker, outer-before-inner at ties, spans
/// fully inside the snapshot horizon, worker ids within the ring count.
fn assert_timeline_invariants(snap: &TraceSnapshot) {
    assert_eq!(snap.open_spans, 0, "every begin must have an end");
    for w in 0..snap.workers as u32 {
        let evs: Vec<_> = snap.worker_events(w).collect();
        for pair in evs.windows(2) {
            assert!(
                pair[0].start_ns <= pair[1].start_ns,
                "worker {w} timeline must be start-monotonic: {pair:?}"
            );
            if pair[0].start_ns == pair[1].start_ns {
                assert!(
                    pair[0].dur_ns >= pair[1].dur_ns,
                    "ties must read outer-before-inner: {pair:?}"
                );
            }
        }
    }
    for e in &snap.events {
        assert!(
            (e.worker as usize) < snap.workers,
            "worker id {} outside the {} rings",
            e.worker,
            snap.workers
        );
    }
}

#[test]
fn multithreaded_spans_balance_and_stay_monotonic() {
    let _g = lock();
    while stop().is_some() {}
    ld_trace::reset();
    start(RecorderConfig::for_threads(4));
    assert!(is_active());
    let spans_per_worker = 50usize;
    std::thread::scope(|s| {
        for w in 0..4usize {
            s.spawn(move || {
                set_worker(w);
                for i in 0..spans_per_worker {
                    // Nested: a Chunk span containing a PackA span, plus
                    // an instant, the way the fused driver nests them.
                    let outer = Span::begin(SpanKind::Chunk);
                    let inner = Span::begin(SpanKind::PackA);
                    inner.end(i as u64);
                    instant(SpanKind::SlabEmit, i as u64);
                    outer.end((i as u64) << 1);
                }
            });
        }
    });
    let snap = stop().expect("recorder was active");
    assert_eq!(snap.dropped, 0);
    assert_eq!(snap.workers, 4);
    assert_timeline_invariants(&snap);
    // Every worker recorded exactly its own events: 3 per iteration.
    for w in 0..4u32 {
        assert_eq!(
            snap.worker_events(w).count(),
            3 * spans_per_worker,
            "worker {w} event count"
        );
    }
    assert_eq!(snap.count(SpanKind::Chunk), 4 * spans_per_worker);
    assert_eq!(snap.count(SpanKind::PackA), 4 * spans_per_worker);
    assert_eq!(snap.count(SpanKind::SlabEmit), 4 * spans_per_worker);
    // Instants are zero-duration; spans carry their end() payload.
    for e in &snap.events {
        match e.kind {
            SpanKind::SlabEmit => assert_eq!(e.dur_ns, 0),
            SpanKind::Chunk => assert_eq!(e.arg & 1, 0, "payload must survive: {e:?}"),
            _ => {}
        }
    }
}

#[test]
fn overflow_fills_and_drops_and_counts() {
    let _g = lock();
    while stop().is_some() {}
    ld_trace::reset();
    let capacity = 8usize;
    start(RecorderConfig {
        capacity_per_worker: capacity,
        workers: 1,
        kernel_sample: 1,
    });
    let total = 30usize;
    for i in 0..total {
        let s = Span::begin(SpanKind::Transform);
        s.end(i as u64);
    }
    let snap = stop().expect("recorder was active");
    // Fill-and-drop: the FIRST `capacity` events survive, the rest are
    // counted, never wrapped over the old ones.
    assert_eq!(snap.events.len(), capacity);
    assert_eq!(snap.dropped, (total - capacity) as u64);
    let args: Vec<u64> = snap.events.iter().map(|e| e.arg).collect();
    assert_eq!(
        args,
        (0..capacity as u64).collect::<Vec<_>>(),
        "survivors must be the oldest events, in order"
    );
    // The drop count is mirrored into the metrics counter so
    // `MetricsReport` (and the CI zero-drop assertion) can see it.
    let report = MetricsReport::capture();
    assert_eq!(report.get(Counter::TraceEventsDropped), snap.dropped);
    // Balance holds even under overflow: dropped spans still end.
    assert_eq!(snap.open_spans, 0);
}

#[test]
fn kernel_batches_are_sampled_other_kinds_are_not() {
    let _g = lock();
    while stop().is_some() {}
    ld_trace::reset();
    start(RecorderConfig {
        capacity_per_worker: 1024,
        workers: 1,
        kernel_sample: 4,
    });
    for i in 0..16u64 {
        let k = Span::begin(SpanKind::KernelBatch);
        k.end(i);
        let p = Span::begin(SpanKind::PackB);
        p.end(i);
    }
    let snap = stop().expect("recorder was active");
    assert_eq!(
        snap.count(SpanKind::KernelBatch),
        4,
        "1-in-4 sampling must keep 4 of 16 kernel batches"
    );
    assert_eq!(
        snap.count(SpanKind::PackB),
        16,
        "sampling must not touch non-kernel kinds"
    );
    assert_eq!(snap.dropped, 0);
    assert_eq!(snap.open_spans, 0);
}

#[test]
fn out_of_range_worker_ids_fold_into_the_last_ring() {
    let _g = lock();
    while stop().is_some() {}
    ld_trace::reset();
    start(RecorderConfig {
        capacity_per_worker: 64,
        workers: 2,
        kernel_sample: 1,
    });
    set_worker(17); // way past the ring count: folds to ring 1
    let s = Span::begin(SpanKind::Transform);
    s.end(7);
    set_worker(0); // restore the default binding for later tests
    let snap = stop().expect("recorder was active");
    assert_eq!(snap.events.len(), 1);
    assert_eq!(snap.events[0].worker, 1, "folded into the last ring");
    assert_timeline_invariants(&snap);
}

#[test]
fn dropped_guard_records_with_zero_payload() {
    let _g = lock();
    while stop().is_some() {}
    ld_trace::reset();
    start(RecorderConfig::for_threads(1));
    {
        let _span = Span::begin(SpanKind::CheckpointFlush);
        // dropped here without end(): the Drop impl must still close it
    }
    let snap = stop().expect("recorder was active");
    assert_eq!(snap.count(SpanKind::CheckpointFlush), 1);
    assert_eq!(snap.events[0].arg, 0);
    assert_eq!(snap.open_spans, 0);
}
