//! # ld-trace — the observability layer of the GEMM-LD stack
//!
//! The paper's argument is quantitative: Figs. 3–5 and Tables I–III all
//! hinge on knowing where cycles go in each GotoBLAS layer (pack-Ã /
//! pack-B̃, micro-kernel, statistic transform). This crate gives every
//! compute crate a shared, dependency-free set of **monotonic counters**
//! and **scoped timers**, plus [`MetricsReport`] — a stable-schema
//! snapshot with JSON export that `ld-cli --profile` and `ld-bench` emit
//! and CI validates against `schemas/metrics.schema.json`.
//!
//! ## Zero-cost when disabled
//!
//! Everything is gated on the cargo feature `metrics`. With the feature
//! **off** (the default), every entry point is an inlined empty function,
//! [`Stopwatch`] is a zero-sized type that never reads a clock, and no
//! atomics exist — the instrumented hot paths compile to exactly the
//! uninstrumented code. With the feature **on**, counters are relaxed
//! atomic adds on static storage (no allocation, ever, on the hot path —
//! the fault-injection harness in `ld-core` runs with metrics enabled).
//!
//! ## Counter semantics (the layer map)
//!
//! | counter | layer | meaning |
//! |---|---|---|
//! | `pack_a_ns` | pack | time packing Ã micro-panels (MR-interleaved) |
//! | `pack_b_ns` | pack | time packing B̃ micro-panels (NR-interleaved) |
//! | `kernel_ns` | micro-kernel | time in the register-tile loops (AND+POPCNT+accumulate and the C scatter) |
//! | `kernel_tiles` | micro-kernel | distinct `MR×NR` micro-tiles computed (counted once per tile, not per rank-k pass) |
//! | `kernel_words` | micro-kernel | AND+POPCNT word-pair operations: `Σ kc·MR·NR` over every kernel invocation |
//! | `transform_ns` | transform | time in the batched `D = H − p pᵀ` statistic transform |
//! | `bytes_packed` | pack | bytes written into pack buffers (`8 ×` packed words) |
//! | `slabs_emitted` | driver | row slabs completed by the fused pipeline |
//! | `budget_shrinks` | driver | times the memory budget shrank the slab height |
//! | `alloc_peak_bytes` | driver | high-water mark of the *modeled* transient footprint (scratch + output) |
//! | `tiles_claimed` | parallel | dynamic-scheduler chunks claimed (also per worker) |
//! | `steal_count` | parallel | chunks a worker claimed out of its static even-split share (load-balance events; timing-dependent) |
//! | `io_lines_read` | io | text lines parsed (also per format) |
//! | `io_bytes_read` | io | input bytes consumed (also per format) |
//! | `cancel_polls` | driver | cancellation-token polls (one per *computed* slab; slab-granular, never per-tile) |
//! | `checkpoints_written` | driver | checkpoint snapshots flushed (periodic + final; wall-clock dependent) |
//! | `resume_slabs_skipped` | driver | slabs restored from a checkpoint instead of recomputed |
//! | `trace_events_dropped` | trace | flight-recorder span events dropped because a per-worker ring filled |
//! | `shards_launched` | supervisor | shard child processes spawned by `run-sharded` (incl. retries) |
//! | `shard_retries` | supervisor | shard attempts re-dispatched after a failure classification |
//! | `merge_spans_validated` | merge | shard slab spans that passed fingerprint/geometry validation during merge |
//! | `chunks_read` | store | tile-store chunks decoded by the out-of-core driver |
//! | `store_bytes_read` | store | bytes streamed out of a tile store (decoded chunk payload + header) |
//! | `prefetch_hits` | store | chunk reads the prefetch thread had ready before compute asked |
//! | `prefetch_stall_ns` | store | nanoseconds compute spent waiting on a chunk the prefetcher had not finished |
//! | `requests_accepted` | serve | queries the `ld-serve` admission controller enqueued |
//! | `requests_shed` | serve | queries rejected by admission control (queue full, memory budget, queue-deadline expiry) |
//! | `requests_failed` | serve | accepted queries that failed (worker panic, internal error) |
//! | `panels_evicted` | serve | resident `LdMatrix` panels evicted from the LRU cache under memory pressure |
//!
//! Counts (`kernel_tiles`, `kernel_words`, `bytes_packed`,
//! `slabs_emitted`, `io_*`, `cancel_polls`, `resume_slabs_skipped`,
//! `merge_spans_validated`, `chunks_read`, `store_bytes_read`) are
//! **deterministic** — independent of thread
//! count and wall time; the `*_ns` timers, `steal_count`,
//! `checkpoints_written` (its periodic trigger is wall-clock based),
//! the supervisor counters (`shards_launched`, `shard_retries` — retries
//! depend on fault timing), the prefetch race counters
//! (`prefetch_hits`, `prefetch_stall_ns` — whether a read wins the race
//! against compute is pure timing) and the serving counters
//! (`requests_*`, `panels_evicted` — functions of client arrival timing
//! and queue/budget pressure) are not.
//!
//! Beyond the counters, the serving layer records a **request-latency
//! histogram** ([`record_request_latency`] / [`latency_snapshot`]):
//! fixed log₂ buckets on static atomics — allocation-free like every
//! other hot-path entry point — from which [`LatencySummary`] derives
//! the p50/p99 the `ld-serve` health endpoint and `BENCH_serve.json`
//! report.
//! `kernel_words` against elapsed cycles gives the §IV ops/cycle metric:
//! the scalar peak is 3 ops/cycle = 1 word-pair/cycle (AND ∥ POPCNT ∥
//! ADD), so `words/cycle × 3` is directly comparable to that peak.

#![warn(missing_docs)]

pub mod analyze;
pub mod export;
pub mod histogram;
pub mod prometheus;
pub mod recorder;
pub mod telemetry;

use std::fmt::Write as _;

/// Schema version of the JSON produced by [`MetricsReport::to_json`].
/// Bump only when a field is removed or its meaning changes; adding
/// fields is backward-compatible.
pub const SCHEMA_VERSION: u32 = 1;

/// Maximum workers tracked individually; higher worker ids fold into the
/// last slot.
pub const MAX_WORKERS: usize = 64;

/// The global counters. Each is a monotonic `u64`; see the crate docs for
/// the layer map and determinism contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Nanoseconds packing Ã (MR-wide micro-panels).
    PackANs,
    /// Nanoseconds packing B̃ (NR-wide micro-panels).
    PackBNs,
    /// Nanoseconds in the micro-kernel register-tile loops (incl. the C scatter).
    KernelNs,
    /// Nanoseconds in the batched statistic transform.
    TransformNs,
    /// Distinct `MR×NR` micro-tiles computed (once per tile across rank-k passes).
    KernelTiles,
    /// AND+POPCNT word-pair operations (`Σ kc·MR·NR` over kernel calls).
    KernelWords,
    /// Bytes written into pack buffers.
    BytesPacked,
    /// Row slabs completed by the fused pipeline.
    SlabsEmitted,
    /// Times a memory budget shrank the configured slab height.
    BudgetShrinks,
    /// High-water mark of the modeled transient footprint, bytes (gauge: use [`record_peak`]).
    AllocPeakBytes,
    /// Dynamic-scheduler chunks claimed (all workers).
    TilesClaimed,
    /// Chunks claimed outside a worker's static even-split share.
    StealCount,
    /// Text lines parsed by `ld-io`.
    IoLinesRead,
    /// Input bytes consumed by `ld-io`.
    IoBytesRead,
    /// Cancellation-token polls issued by the fused driver (one per
    /// *computed* slab — polling is slab-granular, never per-tile).
    CancelPolls,
    /// Checkpoint snapshots flushed to the sink (periodic + final).
    CheckpointsWritten,
    /// Slabs restored from a checkpoint and skipped by the resumed driver.
    ResumeSlabsSkipped,
    /// Flight-recorder span events dropped because a per-worker ring
    /// buffer filled (see [`recorder`]). Nonzero means the timeline in a
    /// `--trace-out` export is incomplete; raise the ring capacity.
    TraceEventsDropped,
    /// Shard child processes spawned by the `run-sharded` supervisor
    /// (first attempts and retries both count).
    ShardsLaunched,
    /// Shard attempts re-dispatched after a failure classification
    /// (crash, corrupt output, resumable interrupt).
    ShardRetries,
    /// Shard slab spans that passed fingerprint/header/geometry
    /// validation during a shard merge.
    MergeSpansValidated,
    /// Tile-store chunks decoded (CRC-checked) by the out-of-core driver.
    ChunksRead,
    /// Bytes streamed out of a tile store (encoded chunk bytes, header
    /// and CRC trailer included).
    StoreBytesRead,
    /// Chunk reads the prefetch thread had finished before compute asked
    /// for them (the double-buffer won the race).
    PrefetchHits,
    /// Nanoseconds compute spent blocked on a chunk the prefetch thread
    /// had not finished reading yet.
    PrefetchStallNs,
    /// Queries the `ld-serve` admission controller accepted into the
    /// bounded request queue.
    RequestsAccepted,
    /// Queries rejected by admission control — queue full, panel memory
    /// budget exhausted after eviction, or queue-deadline expiry.
    RequestsShed,
    /// Accepted queries that failed with an internal error (worker
    /// panic, panel load failure).
    RequestsFailed,
    /// Resident `LdMatrix` panels evicted from the serve LRU cache to
    /// make room under the memory budget.
    PanelsEvicted,
}

impl Counter {
    /// Number of counters (array sizing).
    pub const COUNT: usize = 29;

    /// All counters, in stable report order.
    pub const ALL: [Counter; Counter::COUNT] = [
        Counter::PackANs,
        Counter::PackBNs,
        Counter::KernelNs,
        Counter::TransformNs,
        Counter::KernelTiles,
        Counter::KernelWords,
        Counter::BytesPacked,
        Counter::SlabsEmitted,
        Counter::BudgetShrinks,
        Counter::AllocPeakBytes,
        Counter::TilesClaimed,
        Counter::StealCount,
        Counter::IoLinesRead,
        Counter::IoBytesRead,
        Counter::CancelPolls,
        Counter::CheckpointsWritten,
        Counter::ResumeSlabsSkipped,
        Counter::TraceEventsDropped,
        Counter::ShardsLaunched,
        Counter::ShardRetries,
        Counter::MergeSpansValidated,
        Counter::ChunksRead,
        Counter::StoreBytesRead,
        Counter::PrefetchHits,
        Counter::PrefetchStallNs,
        Counter::RequestsAccepted,
        Counter::RequestsShed,
        Counter::RequestsFailed,
        Counter::PanelsEvicted,
    ];

    /// Stable snake_case name (the JSON key).
    pub fn name(self) -> &'static str {
        match self {
            Counter::PackANs => "pack_a_ns",
            Counter::PackBNs => "pack_b_ns",
            Counter::KernelNs => "kernel_ns",
            Counter::TransformNs => "transform_ns",
            Counter::KernelTiles => "kernel_tiles",
            Counter::KernelWords => "kernel_words",
            Counter::BytesPacked => "bytes_packed",
            Counter::SlabsEmitted => "slabs_emitted",
            Counter::BudgetShrinks => "budget_shrinks",
            Counter::AllocPeakBytes => "alloc_peak_bytes",
            Counter::TilesClaimed => "tiles_claimed",
            Counter::StealCount => "steal_count",
            Counter::IoLinesRead => "io_lines_read",
            Counter::IoBytesRead => "io_bytes_read",
            Counter::CancelPolls => "cancel_polls",
            Counter::CheckpointsWritten => "checkpoints_written",
            Counter::ResumeSlabsSkipped => "resume_slabs_skipped",
            Counter::TraceEventsDropped => "trace_events_dropped",
            Counter::ShardsLaunched => "shards_launched",
            Counter::ShardRetries => "shard_retries",
            Counter::MergeSpansValidated => "merge_spans_validated",
            Counter::ChunksRead => "chunks_read",
            Counter::StoreBytesRead => "store_bytes_read",
            Counter::PrefetchHits => "prefetch_hits",
            Counter::PrefetchStallNs => "prefetch_stall_ns",
            Counter::RequestsAccepted => "requests_accepted",
            Counter::RequestsShed => "requests_shed",
            Counter::RequestsFailed => "requests_failed",
            Counter::PanelsEvicted => "panels_evicted",
        }
    }

    /// True when the counter's value is a pure function of the input and
    /// engine configuration — independent of thread count, scheduling and
    /// wall time. The counter-invariant tests pin exactly these.
    pub fn is_deterministic(self) -> bool {
        !matches!(
            self,
            Counter::PackANs
                | Counter::PackBNs
                | Counter::KernelNs
                | Counter::TransformNs
                | Counter::StealCount
                | Counter::AllocPeakBytes
                // periodic checkpoints also fire on a wall-clock cadence
                | Counter::CheckpointsWritten
                // drops depend on event volume, which is timing/sampling dependent
                | Counter::TraceEventsDropped
                // launches/retries depend on fault timing and the retry budget
                | Counter::ShardsLaunched
                | Counter::ShardRetries
                // whether the prefetcher wins the race against compute is
                // pure timing, as is how long a losing read stalls
                | Counter::PrefetchHits
                | Counter::PrefetchStallNs
                // serving counters depend on client arrival timing and
                // queue/budget pressure
                | Counter::RequestsAccepted
                | Counter::RequestsShed
                | Counter::RequestsFailed
                | Counter::PanelsEvicted
        )
    }
}

/// The fixed set of per-format I/O slots ([`io_record`] folds unknown
/// format names into `"other"`).
pub const IO_FORMATS: [&str; 10] = [
    "ms", "vcf", "matrix", "bed", "bim", "fam", "ped", "map", "fasta", "other",
];

#[cfg_attr(not(feature = "metrics"), allow(dead_code))]
fn io_slot(format: &str) -> usize {
    IO_FORMATS
        .iter()
        .position(|&f| f == format)
        .unwrap_or(IO_FORMATS.len() - 1)
}

// ---------------------------------------------------------------------------
// Enabled implementation: static atomics, relaxed ordering.
// ---------------------------------------------------------------------------
#[cfg(feature = "metrics")]
mod imp {
    use super::{io_slot, Counter, MAX_WORKERS};
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    #[allow(clippy::declare_interior_mutable_const)] // array-init pattern
    const ZERO: AtomicU64 = AtomicU64::new(0);

    pub(super) static COUNTERS: [AtomicU64; Counter::COUNT] = [ZERO; Counter::COUNT];
    pub(super) static LATENCY: [AtomicU64; super::LATENCY_BUCKETS] = [ZERO; super::LATENCY_BUCKETS];
    pub(super) static WORKER_TILES: [AtomicU64; MAX_WORKERS] = [ZERO; MAX_WORKERS];
    pub(super) static WORKER_STEALS: [AtomicU64; MAX_WORKERS] = [ZERO; MAX_WORKERS];
    pub(super) static IO_LINES: [AtomicU64; super::IO_FORMATS.len()] =
        [ZERO; super::IO_FORMATS.len()];
    pub(super) static IO_BYTES: [AtomicU64; super::IO_FORMATS.len()] =
        [ZERO; super::IO_FORMATS.len()];
    pub(super) static KERNEL_NAME: Mutex<Option<&'static str>> = Mutex::new(None);

    #[inline]
    pub(super) fn add(c: Counter, v: u64) {
        if v != 0 {
            COUNTERS[c as usize].fetch_add(v, Ordering::Relaxed);
        }
    }

    #[inline]
    pub(super) fn record_peak(c: Counter, v: u64) {
        COUNTERS[c as usize].fetch_max(v, Ordering::Relaxed);
    }

    #[inline]
    pub(super) fn get(c: Counter) -> u64 {
        COUNTERS[c as usize].load(Ordering::Relaxed)
    }

    #[inline]
    pub(super) fn record_request_latency(ns: u64) {
        LATENCY[super::latency_bucket(ns)].fetch_add(1, Ordering::Relaxed);
    }

    pub(super) fn latency_snapshot() -> [u64; super::LATENCY_BUCKETS] {
        let mut out = [0u64; super::LATENCY_BUCKETS];
        for (slot, bucket) in out.iter_mut().zip(&LATENCY) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        out
    }

    #[inline]
    pub(super) fn worker_claim(worker: usize, stolen: bool) {
        let w = worker.min(MAX_WORKERS - 1);
        WORKER_TILES[w].fetch_add(1, Ordering::Relaxed);
        add(Counter::TilesClaimed, 1);
        if stolen {
            WORKER_STEALS[w].fetch_add(1, Ordering::Relaxed);
            add(Counter::StealCount, 1);
        }
    }

    #[inline]
    pub(super) fn io_record(format: &str, lines: u64, bytes: u64) {
        let s = io_slot(format);
        if lines != 0 {
            IO_LINES[s].fetch_add(lines, Ordering::Relaxed);
            add(Counter::IoLinesRead, lines);
        }
        if bytes != 0 {
            IO_BYTES[s].fetch_add(bytes, Ordering::Relaxed);
            add(Counter::IoBytesRead, bytes);
        }
    }

    pub(super) fn set_kernel_name(name: &'static str) {
        *KERNEL_NAME
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner) = Some(name);
    }

    pub(super) fn kernel_name() -> Option<&'static str> {
        *KERNEL_NAME
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    pub(super) fn reset() {
        for c in &COUNTERS {
            c.store(0, Ordering::Relaxed);
        }
        for c in &LATENCY {
            c.store(0, Ordering::Relaxed);
        }
        for c in WORKER_TILES.iter().chain(&WORKER_STEALS) {
            c.store(0, Ordering::Relaxed);
        }
        for c in IO_LINES.iter().chain(&IO_BYTES) {
            c.store(0, Ordering::Relaxed);
        }
        // the resolved kernel name is process-lifetime state; keep it
    }
}

// ---------------------------------------------------------------------------
// Public API. With `metrics` off every function is an inlined no-op and
// `Stopwatch` is zero-sized.
// ---------------------------------------------------------------------------

/// True when the `metrics` feature is compiled in.
#[inline(always)]
pub const fn enabled() -> bool {
    cfg!(feature = "metrics")
}

/// Adds `v` to counter `c` (relaxed atomic add; no-op when disabled).
#[inline(always)]
pub fn add(c: Counter, v: u64) {
    #[cfg(feature = "metrics")]
    imp::add(c, v);
    #[cfg(not(feature = "metrics"))]
    let _ = (c, v);
}

/// Raises gauge `c` to at least `v` (atomic max; no-op when disabled).
#[inline(always)]
pub fn record_peak(c: Counter, v: u64) {
    #[cfg(feature = "metrics")]
    imp::record_peak(c, v);
    #[cfg(not(feature = "metrics"))]
    let _ = (c, v);
}

/// Current value of counter `c` (always 0 when disabled).
#[inline(always)]
pub fn get(c: Counter) -> u64 {
    #[cfg(feature = "metrics")]
    return imp::get(c);
    #[cfg(not(feature = "metrics"))]
    {
        let _ = c;
        0
    }
}

/// Number of log₂ request-latency buckets: bucket `i` counts requests
/// whose latency `ns` satisfies `⌊log₂ ns⌋ = i` (bucket 0 also takes
/// `ns = 0`; the last bucket absorbs everything from `2^39` ns ≈ 9 min
/// up).
pub const LATENCY_BUCKETS: usize = 40;

/// The histogram bucket latency `ns` falls into.
#[cfg_attr(not(feature = "metrics"), allow(dead_code))]
#[inline]
fn latency_bucket(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        ((63 - ns.leading_zeros()) as usize).min(LATENCY_BUCKETS - 1)
    }
}

/// Inclusive upper bound (ns) of latency bucket `i` — the value the
/// quantile estimator reports for samples landing in that bucket.
fn latency_bucket_ceiling(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// Records one served request's end-to-end latency (enqueue → response
/// ready) into the global histogram (relaxed atomic add; no-op when
/// metrics are disabled).
#[inline(always)]
pub fn record_request_latency(ns: u64) {
    #[cfg(feature = "metrics")]
    imp::record_request_latency(ns);
    #[cfg(not(feature = "metrics"))]
    let _ = ns;
}

/// Snapshot of the request-latency histogram buckets (all zero when
/// metrics are disabled).
pub fn latency_snapshot() -> [u64; LATENCY_BUCKETS] {
    #[cfg(feature = "metrics")]
    return imp::latency_snapshot();
    #[cfg(not(feature = "metrics"))]
    [0; LATENCY_BUCKETS]
}

/// Records one dynamic-scheduler chunk claimed by `worker`; `stolen`
/// marks a chunk outside the worker's static even-split share.
#[inline(always)]
pub fn worker_claim(worker: usize, stolen: bool) {
    #[cfg(feature = "metrics")]
    imp::worker_claim(worker, stolen);
    #[cfg(not(feature = "metrics"))]
    let _ = (worker, stolen);
}

/// Records `lines`/`bytes` parsed by the reader for `format` (folded into
/// the fixed [`IO_FORMATS`] slots).
#[inline(always)]
pub fn io_record(format: &str, lines: u64, bytes: u64) {
    #[cfg(feature = "metrics")]
    imp::io_record(format, lines, bytes);
    #[cfg(not(feature = "metrics"))]
    let _ = (format, lines, bytes);
}

/// Records the concrete micro-kernel the dispatcher resolved (stable
/// name, e.g. `"avx512-vpopcnt"`). Survives [`reset`].
#[inline(always)]
pub fn set_kernel_name(name: &'static str) {
    #[cfg(feature = "metrics")]
    imp::set_kernel_name(name);
    #[cfg(not(feature = "metrics"))]
    let _ = name;
}

/// The last resolved micro-kernel name, if any was recorded.
#[inline(always)]
pub fn kernel_name() -> Option<&'static str> {
    #[cfg(feature = "metrics")]
    return imp::kernel_name();
    #[cfg(not(feature = "metrics"))]
    None
}

/// Zeroes every counter, per-worker/per-format slot, and the serve
/// telemetry registry (the resolved kernel name is kept — it is
/// process-lifetime state).
#[inline(always)]
pub fn reset() {
    #[cfg(feature = "metrics")]
    imp::reset();
    telemetry::reset();
}

/// A scoped wall-clock timer. Zero-sized and clock-free when `metrics` is
/// disabled, so it can wrap hot loops unconditionally:
///
/// ```
/// let t = ld_trace::Stopwatch::start();
/// // ... work ...
/// t.stop_into(ld_trace::Counter::KernelNs);
/// ```
#[derive(Clone, Copy, Debug)]
pub struct Stopwatch {
    #[cfg(feature = "metrics")]
    start: std::time::Instant,
}

impl Stopwatch {
    /// Starts the timer (reads the clock only when metrics are enabled).
    #[inline(always)]
    pub fn start() -> Self {
        Self {
            #[cfg(feature = "metrics")]
            start: std::time::Instant::now(),
        }
    }

    /// Elapsed nanoseconds, saturating at `u64::MAX` (0 when disabled).
    #[inline(always)]
    pub fn elapsed_ns(&self) -> u64 {
        #[cfg(feature = "metrics")]
        {
            let d = self.start.elapsed();
            u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
        }
        #[cfg(not(feature = "metrics"))]
        0
    }

    /// Adds the elapsed time to counter `c` and consumes the timer.
    #[inline(always)]
    pub fn stop_into(self, c: Counter) {
        add(c, self.elapsed_ns());
    }
}

// ---------------------------------------------------------------------------
// MetricsReport
// ---------------------------------------------------------------------------

/// Per-worker dynamic-scheduler activity.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WorkerMetrics {
    /// Worker id (`tid`), 0-based; ids ≥ [`MAX_WORKERS`] fold into the last slot.
    pub worker: usize,
    /// Chunks this worker claimed.
    pub tiles_claimed: u64,
    /// Chunks claimed outside its static even-split share.
    pub steal_count: u64,
}

/// Per-format parser activity.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct IoMetrics {
    /// Format slot name (one of [`IO_FORMATS`]).
    pub format: &'static str,
    /// Lines parsed.
    pub lines_read: u64,
    /// Bytes consumed.
    pub bytes_read: u64,
}

/// The request-latency histogram in summary form: raw log₂ buckets plus
/// quantiles estimated from them. Bucket quantiles are conservative — a
/// sample is reported at its bucket's inclusive upper bound — so p50/p99
/// never under-state the latency a client saw.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LatencySummary {
    /// Total requests recorded (the sum of `buckets`).
    pub count: u64,
    /// Log₂ buckets: `buckets[i]` counts requests with `⌊log₂ ns⌋ = i`.
    pub buckets: [u64; LATENCY_BUCKETS],
}

impl Default for LatencySummary {
    fn default() -> Self {
        Self {
            count: 0,
            buckets: [0; LATENCY_BUCKETS],
        }
    }
}

impl LatencySummary {
    /// Summarizes the current global histogram.
    pub fn capture() -> Self {
        let buckets = latency_snapshot();
        Self {
            count: buckets.iter().sum(),
            buckets,
        }
    }

    /// The `q`-quantile latency in nanoseconds (bucket upper bound), or
    /// `None` when no requests were recorded. `q` is clamped to `(0, 1]`.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(latency_bucket_ceiling(i));
            }
        }
        Some(latency_bucket_ceiling(LATENCY_BUCKETS - 1))
    }

    /// Median request latency (ns), when any request was recorded.
    pub fn p50_ns(&self) -> Option<u64> {
        self.quantile_ns(0.50)
    }

    /// 99th-percentile request latency (ns), when any request was recorded.
    pub fn p99_ns(&self) -> Option<u64> {
        self.quantile_ns(0.99)
    }
}

/// A point-in-time snapshot of every counter, with optional run context
/// (wall time, thread count, TSC frequency, resolved kernel) supplied by
/// the caller. Serializes to the stable JSON validated by
/// `schemas/metrics.schema.json`.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricsReport {
    /// Schema version ([`SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Whether the `metrics` feature was compiled in (all counters are 0 otherwise).
    pub enabled: bool,
    /// Resolved micro-kernel name, when the dispatcher ran.
    pub kernel: Option<String>,
    /// Worker-thread count of the profiled run (caller-supplied).
    pub threads: Option<u64>,
    /// Wall time of the profiled region, nanoseconds (caller-supplied).
    pub wall_ns: Option<u64>,
    /// Calibrated TSC frequency in Hz (caller-supplied; enables ops/cycle).
    pub tsc_hz: Option<f64>,
    /// Counter values in [`Counter::ALL`] order.
    pub counters: [u64; Counter::COUNT],
    /// Request-latency histogram summary (all-zero outside `ld-serve`).
    /// Holds **successful** requests only; shed/error latencies live in
    /// the outcome-labelled histograms of [`telemetry`].
    pub request_latency: LatencySummary,
    /// Rolling-window success-latency stats (`10s`/`1m`/`5m`), captured
    /// alongside the cumulative histogram (empty when metrics are off).
    pub request_windows: Vec<telemetry::WindowStats>,
    /// Per-worker scheduler activity (only workers that claimed ≥ 1 chunk).
    pub workers: Vec<WorkerMetrics>,
    /// Per-format parser activity (only formats that read ≥ 1 line/byte).
    pub io: Vec<IoMetrics>,
}

impl MetricsReport {
    /// Snapshots the current counter state.
    pub fn capture() -> Self {
        let mut counters = [0u64; Counter::COUNT];
        for (i, c) in Counter::ALL.iter().enumerate() {
            counters[i] = get(*c);
        }
        #[cfg_attr(not(feature = "metrics"), allow(unused_mut))]
        let mut workers = Vec::new();
        #[cfg_attr(not(feature = "metrics"), allow(unused_mut))]
        let mut io = Vec::new();
        #[cfg(feature = "metrics")]
        {
            use std::sync::atomic::Ordering;
            for w in 0..MAX_WORKERS {
                let tiles = imp::WORKER_TILES[w].load(Ordering::Relaxed);
                let steals = imp::WORKER_STEALS[w].load(Ordering::Relaxed);
                if tiles != 0 || steals != 0 {
                    workers.push(WorkerMetrics {
                        worker: w,
                        tiles_claimed: tiles,
                        steal_count: steals,
                    });
                }
            }
            for (s, name) in IO_FORMATS.iter().enumerate() {
                let lines = imp::IO_LINES[s].load(Ordering::Relaxed);
                let bytes = imp::IO_BYTES[s].load(Ordering::Relaxed);
                if lines != 0 || bytes != 0 {
                    io.push(IoMetrics {
                        format: name,
                        lines_read: lines,
                        bytes_read: bytes,
                    });
                }
            }
        }
        Self {
            schema_version: SCHEMA_VERSION,
            enabled: enabled(),
            kernel: kernel_name().map(str::to_owned),
            threads: None,
            wall_ns: None,
            tsc_hz: None,
            counters,
            request_latency: LatencySummary::capture(),
            request_windows: telemetry::rolling_windows(),
            workers,
            io,
        }
    }

    /// Attaches the wall time of the profiled region.
    pub fn with_wall_ns(mut self, ns: u64) -> Self {
        self.wall_ns = Some(ns);
        self
    }

    /// Attaches the worker-thread count of the profiled run.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads as u64);
        self
    }

    /// Attaches the calibrated TSC frequency (enables ops/cycle output).
    pub fn with_tsc_hz(mut self, hz: Option<f64>) -> Self {
        self.tsc_hz = hz;
        self
    }

    /// Value of a counter in this snapshot.
    pub fn get(&self, c: Counter) -> u64 {
        self.counters[c as usize]
    }

    /// Sum of the per-layer timers: `pack_a + pack_b + kernel + transform`.
    pub fn layer_ns_total(&self) -> u64 {
        self.get(Counter::PackANs)
            .saturating_add(self.get(Counter::PackBNs))
            .saturating_add(self.get(Counter::KernelNs))
            .saturating_add(self.get(Counter::TransformNs))
    }

    /// Fraction of `threads × wall` the per-layer timers account for
    /// (`None` without wall/thread context). Timers sum CPU time across
    /// workers, so this is busy-time coverage, not a wall-time ratio.
    pub fn layer_coverage(&self) -> Option<f64> {
        let wall = self.wall_ns? as f64;
        let threads = self.threads?.max(1) as f64;
        if wall <= 0.0 {
            return None;
        }
        Some(self.layer_ns_total() as f64 / (wall * threads))
    }

    /// Word-pair operations per cycle in the micro-kernel (`None` without
    /// a TSC frequency or kernel time). The scalar §IV peak is 1.
    pub fn words_per_cycle(&self) -> Option<f64> {
        let hz = self.tsc_hz?;
        let kns = self.get(Counter::KernelNs);
        if kns == 0 || hz <= 0.0 {
            return None;
        }
        let cycles = kns as f64 * hz / 1e9;
        Some(self.get(Counter::KernelWords) as f64 / cycles)
    }

    /// Serializes to the stable-schema JSON (hand-rolled; this workspace
    /// builds offline with no external deps).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(1024);
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema_version\": {},", self.schema_version);
        let _ = writeln!(s, "  \"enabled\": {},", self.enabled);
        match &self.kernel {
            Some(k) => {
                let _ = writeln!(s, "  \"kernel\": \"{}\",", escape_json(k));
            }
            None => s.push_str("  \"kernel\": null,\n"),
        }
        match self.threads {
            Some(t) => {
                let _ = writeln!(s, "  \"threads\": {t},");
            }
            None => s.push_str("  \"threads\": null,\n"),
        }
        match self.wall_ns {
            Some(w) => {
                let _ = writeln!(s, "  \"wall_ns\": {w},");
            }
            None => s.push_str("  \"wall_ns\": null,\n"),
        }
        match self.tsc_hz {
            Some(hz) => {
                let _ = writeln!(s, "  \"tsc_hz\": {hz:.1},");
            }
            None => s.push_str("  \"tsc_hz\": null,\n"),
        }
        s.push_str("  \"counters\": {\n");
        for (i, c) in Counter::ALL.iter().enumerate() {
            let _ = write!(s, "    \"{}\": {}", c.name(), self.counters[i]);
            s.push_str(if i + 1 == Counter::COUNT { "\n" } else { ",\n" });
        }
        s.push_str("  },\n  \"request_latency\": {\n");
        let _ = writeln!(s, "    \"count\": {},", self.request_latency.count);
        match self.request_latency.p50_ns() {
            Some(v) => {
                let _ = writeln!(s, "    \"p50_ns\": {v},");
            }
            None => s.push_str("    \"p50_ns\": null,\n"),
        }
        match self.request_latency.p99_ns() {
            Some(v) => {
                let _ = writeln!(s, "    \"p99_ns\": {v},");
            }
            None => s.push_str("    \"p99_ns\": null,\n"),
        }
        s.push_str("    \"windows\": {");
        for (i, (label, _)) in histogram::WINDOWS.iter().enumerate() {
            let w = self.request_windows.iter().find(|w| w.window == *label);
            let (count, p50, p99) = match w {
                Some(w) => (w.count, w.p50_ns, w.p99_ns),
                None => (0, None, None),
            };
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "\"{label}\": {{\"count\": {count}, ");
            match p50 {
                Some(v) => {
                    let _ = write!(s, "\"p50_ns\": {v}, ");
                }
                None => s.push_str("\"p50_ns\": null, "),
            }
            match p99 {
                Some(v) => {
                    let _ = write!(s, "\"p99_ns\": {v}}}");
                }
                None => s.push_str("\"p99_ns\": null}"),
            }
        }
        s.push_str("},\n");
        s.push_str("    \"buckets\": [");
        for (i, b) in self.request_latency.buckets.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            let _ = write!(s, "{b}");
        }
        s.push_str("]\n  },\n  \"workers\": [\n");
        for (i, w) in self.workers.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"worker\": {}, \"tiles_claimed\": {}, \"steal_count\": {}}}",
                w.worker, w.tiles_claimed, w.steal_count
            );
            s.push_str(if i + 1 == self.workers.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        s.push_str("  ],\n  \"io\": [\n");
        for (i, m) in self.io.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"format\": \"{}\", \"lines_read\": {}, \"bytes_read\": {}}}",
                escape_json(m.format),
                m.lines_read,
                m.bytes_read
            );
            s.push_str(if i + 1 == self.io.len() { "\n" } else { ",\n" });
        }
        s.push_str("  ]\n}\n");
        s
    }

    /// Renders a human-readable per-layer breakdown (the `--profile=text`
    /// output).
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        if !self.enabled {
            s.push_str(
                "metrics disabled (build with `--features metrics`; \
                 the default ld-cli build enables them)\n",
            );
            return s;
        }
        if let Some(k) = &self.kernel {
            let _ = writeln!(s, "kernel          : {k}");
        }
        if let Some(t) = self.threads {
            let _ = writeln!(s, "threads         : {t}");
        }
        if let Some(w) = self.wall_ns {
            let _ = writeln!(s, "wall            : {}", fmt_ns(w));
        }
        let layers = [
            ("pack_a", Counter::PackANs),
            ("pack_b", Counter::PackBNs),
            ("kernel", Counter::KernelNs),
            ("transform", Counter::TransformNs),
        ];
        let total = self.layer_ns_total().max(1);
        for (name, c) in layers {
            let v = self.get(c);
            let _ = writeln!(
                s,
                "{name:<16}: {:>10}  ({:5.1}% of layer time)",
                fmt_ns(v),
                100.0 * v as f64 / total as f64
            );
        }
        if let Some(cov) = self.layer_coverage() {
            let _ = writeln!(
                s,
                "layer coverage  : {:5.1}% of threads x wall",
                100.0 * cov
            );
        }
        let _ = writeln!(
            s,
            "kernel tiles    : {} ({} word-pair ops)",
            self.get(Counter::KernelTiles),
            self.get(Counter::KernelWords)
        );
        if let Some(wpc) = self.words_per_cycle() {
            let _ = writeln!(
                s,
                "ops/cycle       : {:.2} word-pairs/cycle = {:.2} ops/cycle \
                 (scalar peak: 1 word-pair = 3 ops)",
                wpc,
                3.0 * wpc
            );
        }
        let _ = writeln!(
            s,
            "bytes packed    : {} · slabs: {} · budget shrinks: {} · alloc peak: {} B",
            self.get(Counter::BytesPacked),
            self.get(Counter::SlabsEmitted),
            self.get(Counter::BudgetShrinks),
            self.get(Counter::AllocPeakBytes),
        );
        let (polls, ckpts, skipped) = (
            self.get(Counter::CancelPolls),
            self.get(Counter::CheckpointsWritten),
            self.get(Counter::ResumeSlabsSkipped),
        );
        if polls != 0 || ckpts != 0 || skipped != 0 {
            let _ = writeln!(
                s,
                "interruption    : {polls} cancel polls · {ckpts} checkpoints written · {skipped} slabs resumed",
            );
        }
        let served = &self.request_latency;
        if served.count != 0 {
            let _ = writeln!(
                s,
                "requests        : {} served · p50 {} · p99 {} · {} accepted / {} shed / {} failed · {} panels evicted",
                served.count,
                fmt_ns(served.p50_ns().unwrap_or(0)),
                fmt_ns(served.p99_ns().unwrap_or(0)),
                self.get(Counter::RequestsAccepted),
                self.get(Counter::RequestsShed),
                self.get(Counter::RequestsFailed),
                self.get(Counter::PanelsEvicted),
            );
        }
        if !self.workers.is_empty() {
            let _ = writeln!(
                s,
                "scheduler       : {} chunks claimed, {} steals across {} workers",
                self.get(Counter::TilesClaimed),
                self.get(Counter::StealCount),
                self.workers.len()
            );
            for w in &self.workers {
                let _ = writeln!(
                    s,
                    "  worker {:<3}    : {} claimed, {} stolen",
                    w.worker, w.tiles_claimed, w.steal_count
                );
            }
        }
        if !self.io.is_empty() {
            for m in &self.io {
                let _ = writeln!(
                    s,
                    "io [{:<6}]     : {} lines, {} bytes",
                    m.format, m.lines_read, m.bytes_read
                );
            }
        }
        s
    }
}

pub(crate) fn fmt_ns(ns: u64) -> String {
    let s = ns as f64 / 1e9;
    if s >= 1.0 {
        format!("{s:.3}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}us", s * 1e6)
    }
}

/// Escapes a string for embedding inside a JSON string literal (`"`,
/// `\`, and control characters). The one escaping helper every
/// hand-rolled JSON emitter in the workspace shares — `MetricsReport`,
/// the serve health endpoint, and the serve request log all route
/// through it.
pub fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_names_are_stable_and_unique() {
        let mut names: Vec<&str> = Counter::ALL.iter().map(|c| c.name()).collect();
        let n = names.len();
        assert_eq!(n, Counter::COUNT);
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), n, "duplicate counter name");
    }

    #[test]
    fn io_slot_folds_unknown_formats() {
        assert_eq!(io_slot("ms"), 0);
        assert_eq!(io_slot("definitely-not-a-format"), IO_FORMATS.len() - 1);
        assert_eq!(IO_FORMATS[io_slot("nope")], "other");
    }

    #[test]
    fn report_json_is_schema_shaped() {
        let r = MetricsReport::capture()
            .with_wall_ns(123)
            .with_threads(4)
            .with_tsc_hz(Some(3.0e9));
        let j = r.to_json();
        assert!(j.contains("\"schema_version\": 1"));
        assert!(j.contains("\"counters\""));
        assert!(j.contains("\"pack_a_ns\""));
        assert!(j.contains("\"workers\""));
        assert!(j.contains("\"io\""));
        assert!(j.contains("\"wall_ns\": 123"));
        // every counter name appears exactly once
        for c in Counter::ALL {
            assert_eq!(
                j.matches(&format!("\"{}\"", c.name())).count(),
                1,
                "{}",
                c.name()
            );
        }
    }

    #[test]
    fn deterministic_partition_is_fixed() {
        // pin the determinism contract: changing it silently would
        // invalidate the counter-invariant tests
        let det: Vec<&str> = Counter::ALL
            .iter()
            .filter(|c| c.is_deterministic())
            .map(|c| c.name())
            .collect();
        assert_eq!(
            det,
            [
                "kernel_tiles",
                "kernel_words",
                "bytes_packed",
                "slabs_emitted",
                "budget_shrinks",
                "tiles_claimed",
                "io_lines_read",
                "io_bytes_read",
                "cancel_polls",
                "resume_slabs_skipped",
                "merge_spans_validated",
                "chunks_read",
                "store_bytes_read",
            ]
        );
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn counters_accumulate_and_reset() {
        reset();
        add(Counter::KernelTiles, 3);
        add(Counter::KernelTiles, 4);
        record_peak(Counter::AllocPeakBytes, 100);
        record_peak(Counter::AllocPeakBytes, 50);
        assert_eq!(get(Counter::KernelTiles), 7);
        assert_eq!(get(Counter::AllocPeakBytes), 100);
        worker_claim(2, true);
        worker_claim(2, false);
        io_record("vcf", 5, 80);
        let r = MetricsReport::capture();
        assert!(r.enabled);
        assert_eq!(r.get(Counter::TilesClaimed), 2);
        assert_eq!(r.get(Counter::StealCount), 1);
        assert_eq!(
            r.workers,
            vec![WorkerMetrics {
                worker: 2,
                tiles_claimed: 2,
                steal_count: 1
            }]
        );
        assert_eq!(
            r.io,
            vec![IoMetrics {
                format: "vcf",
                lines_read: 5,
                bytes_read: 80
            }]
        );
        reset();
        assert_eq!(get(Counter::KernelTiles), 0);
        assert!(MetricsReport::capture().workers.is_empty());
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn stopwatch_measures_time() {
        let t = Stopwatch::start();
        std::thread::sleep(std::time::Duration::from_millis(2));
        assert!(t.elapsed_ns() >= 2_000_000);
    }

    #[test]
    fn latency_buckets_are_log2() {
        assert_eq!(latency_bucket(0), 0);
        assert_eq!(latency_bucket(1), 0);
        assert_eq!(latency_bucket(2), 1);
        assert_eq!(latency_bucket(3), 1);
        assert_eq!(latency_bucket(1024), 10);
        assert_eq!(latency_bucket(u64::MAX), LATENCY_BUCKETS - 1);
        // ceilings are inclusive upper bounds of their bucket
        assert_eq!(latency_bucket_ceiling(0), 1);
        assert_eq!(latency_bucket_ceiling(10), 2047);
        assert_eq!(latency_bucket(latency_bucket_ceiling(10)), 10);
    }

    #[test]
    fn latency_quantiles_from_buckets() {
        let mut s = LatencySummary::default();
        assert_eq!(s.p50_ns(), None);
        assert_eq!(s.p99_ns(), None);
        // 90 fast requests (~1µs bucket) and 10 slow (~1ms bucket)
        s.buckets[10] = 90;
        s.buckets[20] = 10;
        s.count = 100;
        assert_eq!(s.p50_ns(), Some(latency_bucket_ceiling(10)));
        assert_eq!(s.quantile_ns(0.90), Some(latency_bucket_ceiling(10)));
        assert_eq!(s.p99_ns(), Some(latency_bucket_ceiling(20)));
        assert_eq!(s.quantile_ns(1.0), Some(latency_bucket_ceiling(20)));
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn latency_histogram_records_and_resets() {
        reset();
        record_request_latency(1_500); // bucket 10
        record_request_latency(1_500_000); // bucket 20
        record_request_latency(0); // bucket 0
        let s = LatencySummary::capture();
        assert_eq!(s.count, 3);
        assert_eq!(s.buckets[0], 1);
        assert_eq!(s.buckets[10], 1);
        assert_eq!(s.buckets[20], 1);
        let j = MetricsReport::capture().to_json();
        assert!(j.contains("\"request_latency\""));
        assert!(j.contains("\"count\": 3"));
        reset();
        assert_eq!(LatencySummary::capture().count, 0);
    }

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape_json("a\"b\\c\n"), "a\\\"b\\\\c\\n");
    }

    #[test]
    fn fmt_ns_ranges() {
        assert!(fmt_ns(500).ends_with("us"));
        assert!(fmt_ns(5_000_000).ends_with("ms"));
        assert!(fmt_ns(5_000_000_000).ends_with('s'));
    }
}
