//! Lock-free log₂-bucketed latency histograms, cumulative and rolling.
//!
//! Two shapes share one bucket layout (the [`BUCKETS`] log₂ partition the
//! PR 9 request-latency recorder introduced):
//!
//! * [`Histogram`] — a cumulative-since-boot histogram: `BUCKETS` relaxed
//!   atomic counters plus a running count and nanosecond sum. This is the
//!   Prometheus-native shape (`_bucket`/`_sum`/`_count`).
//! * [`RollingHistogram`] — a ring of [`SLICES`] fixed 5-second
//!   [`SLICE_SECS`] slices, each itself a small histogram. A write lands
//!   in the slice owning the current wall-clock slice index; a window
//!   query sums every slice young enough to intersect the window. Old
//!   slices are never swept by a background thread — the *next writer*
//!   that lands on a stale slice recycles it in place (CAS on the slice
//!   epoch, zero, publish), so the type stays allocation-free and
//!   thread-free like every other `ld-trace` hot-path facility.
//!
//! ## Window semantics
//!
//! Windows are quantized to slice boundaries: a nominal `W`-second window
//! covers the current (partial) slice plus the `W / SLICE_SECS` whole
//! slices before it, i.e. **at least `W` and at most `W + SLICE_SECS`
//! seconds** of data. Readers skip a slice mid-recycle (its `ready` tag
//! lags its epoch for the ~40 stores of the zeroing loop), so a rotation
//! can transiently hide one slice — bounded, and only at slice edges.
//!
//! ## Memory model
//!
//! Everything is static-friendly: `const fn new()`, no heap, no locks.
//! One `Histogram` is `(BUCKETS + 2) × 8 = 336` bytes; one
//! `RollingHistogram` is `SLICES × (BUCKETS + 4) × 8 ≈ 22` KiB. Writers
//! use relaxed adds; the only stronger orderings are the acquire/release
//! pair that publishes a recycled slice.
//!
//! All clock-taking entry points come in `*_at(now_ns, ..)` form taking
//! an explicit monotonic timestamp, so tests drive a mocked clock; the
//! convenience wrappers use a process-global monotonic epoch.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Number of log₂ buckets (shared with the legacy request-latency
/// recorder): bucket `i` counts samples with `⌊log₂ ns⌋ = i`; bucket 0
/// also takes `ns ≤ 1`, and the last bucket absorbs everything from
/// `2^39` ns (≈ 9 min) up.
pub const BUCKETS: usize = 40;

/// Width of one rolling-histogram slice, seconds.
pub const SLICE_SECS: u64 = 5;

/// Slices in a [`RollingHistogram`] ring: covers `64 × 5 s = 320 s`,
/// enough for the largest supported window (5 min) plus its partial
/// leading slice.
pub const SLICES: usize = 64;

/// The rolling windows the serve telemetry plane exposes, as
/// `(label, seconds)` pairs in exposition order.
pub const WINDOWS: [(&str, u64); 3] = [("10s", 10), ("1m", 60), ("5m", 300)];

const SLICE_NS: u64 = SLICE_SECS * 1_000_000_000;

/// The log₂ bucket a nanosecond value falls into.
#[inline]
pub fn bucket_index(ns: u64) -> usize {
    if ns == 0 {
        0
    } else {
        ((63 - ns.leading_zeros()) as usize).min(BUCKETS - 1)
    }
}

/// Inclusive upper bound (ns) of bucket `i` — what the conservative
/// quantile estimator reports for samples landing in that bucket.
#[inline]
pub fn bucket_ceiling_ns(i: usize) -> u64 {
    if i >= 63 {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// Nanoseconds since the process-global monotonic epoch (first call).
/// All rolling-histogram convenience wrappers share this clock so their
/// slice indices agree.
pub fn now_ns() -> u64 {
    use std::sync::OnceLock;
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    let epoch = EPOCH.get_or_init(Instant::now);
    u64::try_from(epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[allow(clippy::declare_interior_mutable_const)] // array-init pattern
const ZERO: AtomicU64 = AtomicU64::new(0);

// ---------------------------------------------------------------------------
// Cumulative histogram
// ---------------------------------------------------------------------------

/// A cumulative log₂ histogram on relaxed atomics: `BUCKETS` counters
/// plus a running sample count and nanosecond sum (the Prometheus
/// `_bucket`/`_count`/`_sum` triple).
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Histogram {
    /// An empty histogram (usable in `static` position).
    pub const fn new() -> Self {
        Self {
            buckets: [ZERO; BUCKETS],
            count: ZERO,
            sum_ns: ZERO,
        }
    }

    /// Records one sample of `ns` nanoseconds.
    #[inline]
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// A point-in-time copy of the buckets/count/sum.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        for (slot, b) in buckets.iter_mut().zip(&self.buckets) {
            *slot = b.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every bucket (tests and [`crate::reset`] only; concurrent
    /// writers may interleave).
    pub fn reset(&self) {
        for b in &self.buckets {
            b.store(0, Ordering::Relaxed);
        }
        self.count.store(0, Ordering::Relaxed);
        self.sum_ns.store(0, Ordering::Relaxed);
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

/// A point-in-time copy of a [`Histogram`] (or of a rolling window),
/// with conservative bucket-quantile estimation: a sample is reported at
/// its bucket's inclusive upper bound, so quantiles never under-state
/// what a client saw.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (`buckets[i]` ⇔ `⌊log₂ ns⌋ = i`).
    pub buckets: [u64; BUCKETS],
    /// Total samples (the sum of `buckets`).
    pub count: u64,
    /// Sum of all recorded nanosecond values.
    pub sum_ns: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self {
            buckets: [0; BUCKETS],
            count: 0,
            sum_ns: 0,
        }
    }
}

impl HistogramSnapshot {
    /// The `q`-quantile in nanoseconds (bucket upper bound), or `None`
    /// when empty. `q` is clamped to `(0, 1]`.
    pub fn quantile_ns(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Some(bucket_ceiling_ns(i));
            }
        }
        Some(bucket_ceiling_ns(BUCKETS - 1))
    }

    /// Median (ns), when any sample was recorded.
    pub fn p50_ns(&self) -> Option<u64> {
        self.quantile_ns(0.50)
    }

    /// 99th percentile (ns), when any sample was recorded.
    pub fn p99_ns(&self) -> Option<u64> {
        self.quantile_ns(0.99)
    }

    /// Adds another snapshot's samples into this one (window summation).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
    }
}

// ---------------------------------------------------------------------------
// Rolling histogram
// ---------------------------------------------------------------------------

/// One ring slot. `epoch` holds `slice_index + 1` (0 = never written);
/// `ready` trails `epoch` while a recycling writer zeroes the buckets and
/// equals it once the slice is publishable.
struct Slice {
    epoch: AtomicU64,
    ready: AtomicU64,
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)] // array-init pattern
const EMPTY_SLICE: Slice = Slice {
    epoch: ZERO,
    ready: ZERO,
    buckets: [ZERO; BUCKETS],
    count: ZERO,
    sum_ns: ZERO,
};

/// A log₂ histogram with rolling time windows: a ring of [`SLICES`]
/// 5-second slices recycled in place by writers (see the module docs for
/// the window and memory model).
pub struct RollingHistogram {
    slices: [Slice; SLICES],
}

impl RollingHistogram {
    /// An empty rolling histogram (usable in `static` position).
    pub const fn new() -> Self {
        Self {
            slices: [EMPTY_SLICE; SLICES],
        }
    }

    /// Records one sample of `ns` nanoseconds at the current wall clock.
    #[inline]
    pub fn record(&self, ns: u64) {
        self.record_at(now_ns(), ns);
    }

    /// Records one sample of `ns` nanoseconds as of monotonic timestamp
    /// `now_ns` (mocked-clock entry point; timestamps must be
    /// non-decreasing per writer for windows to make sense).
    pub fn record_at(&self, now_ns: u64, ns: u64) {
        let e = now_ns / SLICE_NS + 1; // +1: epoch 0 means "never written"
        let slice = &self.slices[(e % SLICES as u64) as usize];
        loop {
            let cur = slice.epoch.load(Ordering::Acquire);
            if cur == e {
                if slice.ready.load(Ordering::Acquire) == e {
                    break; // live slice, ready to take samples
                }
                // another writer is zeroing it; the wait is ~40 stores
                std::hint::spin_loop();
                continue;
            }
            if cur > e {
                // a writer with a newer clock already recycled this slot;
                // our sample belongs to a slice that no longer exists
                return;
            }
            if slice
                .epoch
                .compare_exchange(cur, e, Ordering::AcqRel, Ordering::Acquire)
                .is_ok()
            {
                for b in &slice.buckets {
                    b.store(0, Ordering::Relaxed);
                }
                slice.count.store(0, Ordering::Relaxed);
                slice.sum_ns.store(0, Ordering::Relaxed);
                slice.ready.store(e, Ordering::Release);
                break;
            }
        }
        slice.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        slice.count.fetch_add(1, Ordering::Relaxed);
        slice.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// Sums every slice intersecting the trailing `window_secs` window at
    /// the current wall clock.
    pub fn window(&self, window_secs: u64) -> HistogramSnapshot {
        self.window_at(now_ns(), window_secs)
    }

    /// Sums every slice intersecting the trailing `window_secs` window as
    /// of monotonic timestamp `now_ns` (mocked-clock entry point).
    pub fn window_at(&self, now_ns: u64, window_secs: u64) -> HistogramSnapshot {
        let cur = now_ns / SLICE_NS + 1;
        // current partial slice + window/SLICE whole slices before it
        let span = (window_secs / SLICE_SECS + 1).min(SLICES as u64);
        let oldest = cur.saturating_sub(span - 1);
        let mut out = HistogramSnapshot::default();
        for slice in &self.slices {
            let e = slice.epoch.load(Ordering::Acquire);
            if e < oldest || e > cur || slice.ready.load(Ordering::Acquire) != e {
                continue; // stale, future, or mid-recycle
            }
            for (slot, b) in out.buckets.iter_mut().zip(&slice.buckets) {
                *slot += b.load(Ordering::Relaxed);
            }
            out.count += slice.count.load(Ordering::Relaxed);
            out.sum_ns += slice.sum_ns.load(Ordering::Relaxed);
        }
        out
    }

    /// Empties every slice (tests and [`crate::reset`] only).
    pub fn reset(&self) {
        for slice in &self.slices {
            slice.ready.store(0, Ordering::Relaxed);
            slice.epoch.store(0, Ordering::Relaxed);
            for b in &slice.buckets {
                b.store(0, Ordering::Relaxed);
            }
            slice.count.store(0, Ordering::Relaxed);
            slice.sum_ns.store(0, Ordering::Relaxed);
        }
    }
}

impl Default for RollingHistogram {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_layout_matches_legacy_recorder() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(1024), 10);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        assert_eq!(bucket_ceiling_ns(10), 2047);
        assert_eq!(bucket_index(bucket_ceiling_ns(10)), 10);
    }

    #[test]
    fn cumulative_histogram_counts_and_sums() {
        let h = Histogram::new();
        h.record(1_500);
        h.record(1_500);
        h.record(3_000_000);
        let s = h.snapshot();
        assert_eq!(s.count, 3);
        assert_eq!(s.sum_ns, 3_003_000);
        assert_eq!(s.buckets[10], 2);
        assert_eq!(s.buckets[21], 1);
        assert_eq!(s.p50_ns(), Some(bucket_ceiling_ns(10)));
        h.reset();
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn rolling_slices_rotate_and_expire() {
        let r = RollingHistogram::new();
        let t0 = 1_000_000_000; // 1 s
        r.record_at(t0, 500);
        assert_eq!(r.window_at(t0, 10).count, 1);
        // still visible one slice later, gone after the window passes
        assert_eq!(r.window_at(t0 + 6 * 1_000_000_000, 10).count, 1);
        assert_eq!(r.window_at(t0 + 400 * 1_000_000_000, 10).count, 0);
        // but the 5m window still sees it at +60 s
        assert_eq!(r.window_at(t0 + 60 * 1_000_000_000, 300).count, 1);
    }

    #[test]
    fn ring_reuse_recycles_stale_slices() {
        let r = RollingHistogram::new();
        r.record_at(0, 100);
        // SLICES slices later the same slot is reused for a new epoch
        let later = SLICES as u64 * SLICE_NS + 1;
        r.record_at(later, 200);
        let w = r.window_at(later, 10);
        assert_eq!(w.count, 1);
        assert_eq!(w.sum_ns, 200);
    }
}
