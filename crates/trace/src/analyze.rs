//! Timeline analysis: turns a [`TraceSnapshot`] + [`MetricsReport`] into
//! the diagnostics the paper's performance argument needs — per-worker
//! busy/idle fractions, load-imbalance ratio, steal-latency percentiles,
//! per-layer wall shares, and a roofline summary against the §IV/§V
//! analytical POPCNT peak.
//!
//! ## Accounting model
//!
//! All wall-share arithmetic is **span-based**, not counter-based, so the
//! shares tile the `workers × wall` area exactly:
//!
//! * a worker's *busy* time is the union of its span intervals (nested
//!   spans — pack inside a scheduler chunk — count once),
//! * the *leaf layers* (`pack_a`, `pack_b`, `kernel`, `transform`,
//!   `alloc`, `checkpoint_flush`) never contain one another, so their
//!   durations sum without double counting,
//! * `other_busy` is busy time outside any leaf layer (scheduler claim
//!   overhead, loop bookkeeping), and `idle` is the rest of the area.
//!
//! By construction `Σ layer shares + other_busy + idle = 1` (up to u64
//! rounding), which is what the CI trace leg asserts.

use crate::recorder::{SpanKind, TraceSnapshot};
use crate::MetricsReport;
use std::fmt::Write as _;

/// Schema version of [`TraceReport::to_json`]
/// (`schemas/trace_report.schema.json`).
pub const TRACE_REPORT_SCHEMA_VERSION: u32 = 1;

/// Busy/idle accounting for one worker timeline.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkerActivity {
    /// Logical worker id (ring index).
    pub worker: u32,
    /// Union of this worker's span intervals, ns.
    pub busy_ns: u64,
    /// `wall − busy`, ns (clamped at 0).
    pub idle_ns: u64,
    /// `busy / wall`.
    pub busy_fraction: f64,
    /// Events recorded (spans + instants).
    pub spans: u64,
    /// Scheduler chunks executed.
    pub chunks: u64,
    /// Chunks flagged stolen (claimed outside the static share).
    pub steals: u64,
}

/// One row of the per-layer wall-share table.
#[derive(Clone, Debug, PartialEq)]
pub struct LayerShare {
    /// Layer name (leaf [`SpanKind`] name, `"other_busy"`, or `"idle"`).
    pub layer: &'static str,
    /// Total nanoseconds attributed to the layer across all workers.
    pub ns: u64,
    /// `ns / (workers × wall)`.
    pub share: f64,
}

/// Distribution of the idle gaps that *precede* stolen chunks — the time a
/// worker waited between finishing one chunk and claiming one outside its
/// static share.
#[derive(Clone, Debug, PartialEq)]
pub struct StealLatency {
    /// Stolen chunks with a measurable preceding gap.
    pub count: u64,
    /// Median gap, ns.
    pub p50_ns: u64,
    /// 90th-percentile gap, ns.
    pub p90_ns: u64,
    /// Largest gap, ns.
    pub max_ns: u64,
}

/// Measured micro-kernel throughput against the analytical peak of the
/// resolved kernel (`lanes` word-pairs/cycle; the scalar §IV peak is 1
/// word-pair = 3 ops per cycle).
#[derive(Clone, Debug, PartialEq)]
pub struct Roofline {
    /// Measured word-pair operations per cycle (from `kernel_words`,
    /// `kernel_ns`, and the calibrated TSC frequency).
    pub words_per_cycle: f64,
    /// Analytical peak for the resolved kernel, word-pairs/cycle.
    pub peak_words_per_cycle: f64,
    /// `words_per_cycle / peak_words_per_cycle`.
    pub fraction_of_peak: f64,
}

/// The full analysis, serializable to the stable JSON of
/// `schemas/trace_report.schema.json` and renderable as text.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceReport {
    /// Schema version ([`TRACE_REPORT_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Analysis window, ns (caller-measured driver wall time when
    /// available, else the span horizon).
    pub wall_ns: u64,
    /// Worker timelines considered (≥ observed workers).
    pub workers: u64,
    /// Events in the snapshot.
    pub events: u64,
    /// Events dropped by ring overflow (timeline incomplete when ≠ 0).
    pub dropped: u64,
    /// Spans begun but never ended (must be 0 after a clean run).
    pub open_spans: u64,
    /// Partially-overlapping span pairs found on one timeline (must be 0:
    /// spans on a worker either nest or are disjoint).
    pub nesting_violations: u64,
    /// Σ busy over workers, ns.
    pub busy_ns_total: u64,
    /// Σ idle over workers, ns.
    pub idle_ns_total: u64,
    /// `max(busy) / mean(busy)` across workers that recorded anything
    /// (1.0 = perfectly balanced); `None` when nothing was busy.
    pub imbalance_ratio: Option<f64>,
    /// Per-worker busy/idle breakdown.
    pub per_worker: Vec<WorkerActivity>,
    /// Per-layer wall shares; includes `other_busy` and `idle`, so the
    /// shares sum to 1 up to rounding.
    pub layers: Vec<LayerShare>,
    /// Steal-latency percentiles (`None` when no stolen chunk had a
    /// measurable preceding gap).
    pub steal_latency: Option<StealLatency>,
    /// Roofline summary (`None` without TSC/kernel-time context).
    pub roofline: Option<Roofline>,
}

fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = (sorted.len() - 1) * p / 100;
    sorted[idx]
}

/// Analyzes a snapshot. `report` supplies run context (wall time, thread
/// count, TSC frequency, kernel counters); `peak_words_per_cycle` is the
/// analytical peak of the resolved kernel (`Kernel::lanes()` — the caller
/// computes it so `ld-trace` stays dependency-free).
pub fn analyze(
    snap: &TraceSnapshot,
    report: &MetricsReport,
    peak_words_per_cycle: Option<f64>,
) -> TraceReport {
    let span_horizon = snap
        .events
        .iter()
        .map(|e| e.start_ns.saturating_add(e.dur_ns))
        .max()
        .unwrap_or(0);
    let wall_ns = report.wall_ns.filter(|&w| w > 0).unwrap_or(span_horizon);

    // --- per-worker pass over the (worker, start)-sorted events ---------
    let mut per_worker: Vec<WorkerActivity> = Vec::new();
    let mut nesting_violations = 0u64;
    let mut layer_ns = [0u64; SpanKind::COUNT];
    let mut steal_gaps: Vec<u64> = Vec::new();

    let mut i = 0;
    while i < snap.events.len() {
        let w = snap.events[i].worker;
        let mut busy = 0u64;
        let mut cur_end = 0u64;
        let mut spans = 0u64;
        let mut chunks = 0u64;
        let mut steals = 0u64;
        let mut prev_chunk_end: Option<u64> = None;
        while i < snap.events.len() && snap.events[i].worker == w {
            let e = &snap.events[i];
            i += 1;
            spans += 1;
            layer_ns[e.kind as usize] = layer_ns[e.kind as usize].saturating_add(e.dur_ns);
            if e.kind == SpanKind::Chunk {
                chunks += 1;
                let stolen = e.arg & 1 == 1;
                if stolen {
                    steals += 1;
                    if let Some(pe) = prev_chunk_end {
                        steal_gaps.push(e.start_ns.saturating_sub(pe));
                    }
                }
                prev_chunk_end = Some(e.start_ns.saturating_add(e.dur_ns));
            }
            if e.kind.is_instant() {
                continue;
            }
            // interval union; events are start-sorted within a worker
            let end = e.start_ns.saturating_add(e.dur_ns);
            if e.start_ns >= cur_end {
                busy = busy.saturating_add(e.dur_ns);
                cur_end = end;
            } else if end > cur_end {
                // overlaps the previous span without nesting inside it
                nesting_violations += 1;
                busy = busy.saturating_add(end - cur_end);
                cur_end = end;
            } // else: fully nested, already counted
        }
        let idle = wall_ns.saturating_sub(busy);
        per_worker.push(WorkerActivity {
            worker: w,
            busy_ns: busy,
            idle_ns: idle,
            busy_fraction: if wall_ns > 0 {
                busy as f64 / wall_ns as f64
            } else {
                0.0
            },
            spans,
            chunks,
            steals,
        });
    }

    let observed = per_worker.len() as u64;
    let workers = report.threads.unwrap_or(0).max(observed).max(1);
    let busy_ns_total: u64 = per_worker.iter().map(|w| w.busy_ns).sum();
    // Workers that never recorded are idle for the whole window.
    let area = wall_ns.saturating_mul(workers).max(busy_ns_total).max(1);
    let idle_ns_total = area - busy_ns_total.min(area);

    let imbalance_ratio = if busy_ns_total > 0 && observed > 0 {
        let max_busy = per_worker.iter().map(|w| w.busy_ns).max().unwrap_or(0);
        let mean = busy_ns_total as f64 / observed as f64;
        Some(max_busy as f64 / mean)
    } else {
        None
    };

    // --- per-layer wall shares (tile the workers × wall area) -----------
    let mut layers: Vec<LayerShare> = Vec::new();
    let mut leaf_sum = 0u64;
    for kind in SpanKind::ALL {
        if !kind.is_leaf_layer() {
            continue;
        }
        let ns = layer_ns[kind as usize];
        leaf_sum = leaf_sum.saturating_add(ns);
        layers.push(LayerShare {
            layer: kind.name(),
            ns,
            share: ns as f64 / area as f64,
        });
    }
    let other_busy = busy_ns_total.saturating_sub(leaf_sum.min(busy_ns_total));
    layers.push(LayerShare {
        layer: "other_busy",
        ns: other_busy,
        share: other_busy as f64 / area as f64,
    });
    layers.push(LayerShare {
        layer: "idle",
        ns: idle_ns_total,
        share: idle_ns_total as f64 / area as f64,
    });

    // --- steal latency ---------------------------------------------------
    steal_gaps.sort_unstable();
    let steal_latency = if steal_gaps.is_empty() {
        None
    } else {
        Some(StealLatency {
            count: steal_gaps.len() as u64,
            p50_ns: percentile(&steal_gaps, 50),
            p90_ns: percentile(&steal_gaps, 90),
            max_ns: *steal_gaps.last().unwrap_or(&0),
        })
    };

    // --- roofline --------------------------------------------------------
    let roofline = match (report.words_per_cycle(), peak_words_per_cycle) {
        (Some(wpc), Some(peak)) if peak > 0.0 => Some(Roofline {
            words_per_cycle: wpc,
            peak_words_per_cycle: peak,
            fraction_of_peak: wpc / peak,
        }),
        _ => None,
    };

    TraceReport {
        schema_version: TRACE_REPORT_SCHEMA_VERSION,
        wall_ns,
        workers,
        events: snap.events.len() as u64,
        dropped: snap.dropped,
        open_spans: snap.open_spans,
        nesting_violations,
        busy_ns_total,
        idle_ns_total,
        imbalance_ratio,
        per_worker,
        layers,
        steal_latency,
        roofline,
    }
}

impl TraceReport {
    /// Sum of the per-layer shares (incl. `other_busy` and `idle`); 1 up
    /// to u64 rounding for a well-formed timeline. The CI trace leg
    /// asserts `|1 − Σ| ≤ 0.01`.
    pub fn share_sum(&self) -> f64 {
        self.layers.iter().map(|l| l.share).sum()
    }

    /// Serializes to the stable JSON validated by
    /// `schemas/trace_report.schema.json` (hand-rolled; offline build).
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(2048);
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema_version\": {},", self.schema_version);
        let _ = writeln!(s, "  \"wall_ns\": {},", self.wall_ns);
        let _ = writeln!(s, "  \"workers\": {},", self.workers);
        let _ = writeln!(s, "  \"events\": {},", self.events);
        let _ = writeln!(s, "  \"dropped\": {},", self.dropped);
        let _ = writeln!(s, "  \"open_spans\": {},", self.open_spans);
        let _ = writeln!(s, "  \"nesting_violations\": {},", self.nesting_violations);
        let _ = writeln!(s, "  \"busy_ns_total\": {},", self.busy_ns_total);
        let _ = writeln!(s, "  \"idle_ns_total\": {},", self.idle_ns_total);
        match self.imbalance_ratio {
            Some(r) => {
                let _ = writeln!(s, "  \"imbalance_ratio\": {r:.6},");
            }
            None => s.push_str("  \"imbalance_ratio\": null,\n"),
        }
        let _ = writeln!(s, "  \"share_sum\": {:.6},", self.share_sum());
        s.push_str("  \"per_worker\": [\n");
        for (i, w) in self.per_worker.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"worker\": {}, \"busy_ns\": {}, \"idle_ns\": {}, \
                 \"busy_fraction\": {:.6}, \"spans\": {}, \"chunks\": {}, \"steals\": {}}}",
                w.worker, w.busy_ns, w.idle_ns, w.busy_fraction, w.spans, w.chunks, w.steals
            );
            s.push_str(if i + 1 == self.per_worker.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        s.push_str("  ],\n  \"layers\": [\n");
        for (i, l) in self.layers.iter().enumerate() {
            let _ = write!(
                s,
                "    {{\"layer\": \"{}\", \"ns\": {}, \"share\": {:.6}}}",
                l.layer, l.ns, l.share
            );
            s.push_str(if i + 1 == self.layers.len() {
                "\n"
            } else {
                ",\n"
            });
        }
        s.push_str("  ],\n");
        match &self.steal_latency {
            Some(sl) => {
                let _ = writeln!(
                    s,
                    "  \"steal_latency\": {{\"count\": {}, \"p50_ns\": {}, \
                     \"p90_ns\": {}, \"max_ns\": {}}},",
                    sl.count, sl.p50_ns, sl.p90_ns, sl.max_ns
                );
            }
            None => s.push_str("  \"steal_latency\": null,\n"),
        }
        match &self.roofline {
            Some(r) => {
                let _ = writeln!(
                    s,
                    "  \"roofline\": {{\"words_per_cycle\": {:.6}, \
                     \"peak_words_per_cycle\": {:.6}, \"fraction_of_peak\": {:.6}}}",
                    r.words_per_cycle, r.peak_words_per_cycle, r.fraction_of_peak
                );
            }
            None => s.push_str("  \"roofline\": null\n"),
        }
        s.push_str("}\n");
        s
    }

    /// Renders the human-readable report (`--trace-report` stderr view).
    pub fn render_text(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "trace           : {} events, {} workers, wall {}",
            self.events,
            self.workers,
            crate::fmt_ns(self.wall_ns)
        );
        if self.dropped != 0 {
            let _ = writeln!(
                s,
                "  WARNING       : {} events dropped (ring overflow) — timeline incomplete",
                self.dropped
            );
        }
        if self.open_spans != 0 || self.nesting_violations != 0 {
            let _ = writeln!(
                s,
                "  WARNING       : {} open spans, {} nesting violations",
                self.open_spans, self.nesting_violations
            );
        }
        for w in &self.per_worker {
            let _ = writeln!(
                s,
                "  worker {:<3}    : busy {:>10} ({:5.1}%), {} chunks, {} stolen",
                w.worker,
                crate::fmt_ns(w.busy_ns),
                100.0 * w.busy_fraction,
                w.chunks,
                w.steals
            );
        }
        if let Some(r) = self.imbalance_ratio {
            let _ = writeln!(s, "imbalance       : {r:.3} (max busy / mean busy)");
        }
        let _ = writeln!(s, "layer shares    : (of workers x wall)");
        for l in &self.layers {
            let _ = writeln!(
                s,
                "  {:<14}: {:>10}  ({:5.1}%)",
                l.layer,
                crate::fmt_ns(l.ns),
                100.0 * l.share
            );
        }
        let _ = writeln!(s, "  share sum     : {:.4}", self.share_sum());
        if let Some(sl) = &self.steal_latency {
            let _ = writeln!(
                s,
                "steal latency   : n={} p50={} p90={} max={}",
                sl.count,
                crate::fmt_ns(sl.p50_ns),
                crate::fmt_ns(sl.p90_ns),
                crate::fmt_ns(sl.max_ns)
            );
        }
        if let Some(r) = &self.roofline {
            let _ = writeln!(
                s,
                "roofline        : {:.3} word-pairs/cycle of {:.1} peak ({:.1}% of peak)",
                r.words_per_cycle,
                r.peak_words_per_cycle,
                100.0 * r.fraction_of_peak
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::SpanEvent;

    fn ev(kind: SpanKind, worker: u32, start: u64, dur: u64, arg: u64) -> SpanEvent {
        SpanEvent {
            kind,
            worker,
            start_ns: start,
            dur_ns: dur,
            arg,
        }
    }

    fn snap(events: Vec<SpanEvent>) -> TraceSnapshot {
        TraceSnapshot {
            events,
            dropped: 0,
            open_spans: 0,
            capacity_per_worker: 64,
            workers: 2,
        }
    }

    fn base_report(wall: u64, threads: usize) -> MetricsReport {
        MetricsReport::capture()
            .with_wall_ns(wall)
            .with_threads(threads)
    }

    #[test]
    fn shares_tile_the_area() {
        // worker 0: one chunk [0,100) containing pack_a [10,40) and
        // kernel [40,90); worker 1: chunk [0,50).
        let s = snap(vec![
            ev(SpanKind::Chunk, 0, 0, 100, 0),
            ev(SpanKind::PackA, 0, 10, 30, 0),
            ev(SpanKind::KernelBatch, 0, 40, 50, 0),
            ev(SpanKind::Chunk, 1, 0, 50, 0),
        ]);
        let r = analyze(&s, &base_report(100, 2), None);
        assert_eq!(r.wall_ns, 100);
        assert_eq!(r.workers, 2);
        assert_eq!(r.nesting_violations, 0);
        assert_eq!(r.busy_ns_total, 150, "nested spans count once");
        assert_eq!(r.idle_ns_total, 50);
        let get = |name: &str| r.layers.iter().find(|l| l.layer == name).unwrap();
        assert_eq!(get("pack_a").ns, 30);
        assert_eq!(get("kernel").ns, 50);
        assert_eq!(get("other_busy").ns, 70); // chunk overhead
        assert_eq!(get("idle").ns, 50);
        assert!((r.share_sum() - 1.0).abs() < 1e-9);
        // imbalance: busy 100 vs 50 → max 100 / mean 75
        let imb = r.imbalance_ratio.unwrap();
        assert!((imb - 100.0 / 75.0).abs() < 1e-9);
    }

    #[test]
    fn detects_partial_overlap() {
        let s = snap(vec![
            ev(SpanKind::PackA, 0, 0, 50, 0),
            ev(SpanKind::PackB, 0, 25, 50, 0), // overlaps without nesting
        ]);
        let r = analyze(&s, &base_report(100, 1), None);
        assert_eq!(r.nesting_violations, 1);
        assert_eq!(r.busy_ns_total, 75, "union, not sum");
    }

    #[test]
    fn steal_latency_percentiles() {
        let s = snap(vec![
            ev(SpanKind::Chunk, 0, 0, 10, 0 << 1),
            ev(SpanKind::Chunk, 0, 30, 10, (1 << 1) | 1), // stolen, gap 20
            ev(SpanKind::Chunk, 0, 45, 10, (2 << 1) | 1), // stolen, gap 5
        ]);
        let r = analyze(&s, &base_report(100, 1), None);
        let sl = r.steal_latency.unwrap();
        assert_eq!(sl.count, 2);
        assert_eq!(sl.p50_ns, 5);
        assert_eq!(sl.max_ns, 20);
        assert_eq!(r.per_worker[0].steals, 2);
        assert_eq!(r.per_worker[0].chunks, 3);
    }

    #[test]
    fn roofline_needs_context() {
        let s = snap(vec![ev(SpanKind::KernelBatch, 0, 0, 10, 0)]);
        let r = analyze(&s, &base_report(10, 1), Some(1.0));
        // capture() has no tsc_hz → no roofline
        assert!(r.roofline.is_none());

        let mut rep = base_report(10, 1).with_tsc_hz(Some(1e9));
        rep.counters[crate::Counter::KernelNs as usize] = 1_000;
        rep.counters[crate::Counter::KernelWords as usize] = 500;
        let r = analyze(&s, &rep, Some(1.0));
        let roof = r.roofline.unwrap();
        assert!((roof.words_per_cycle - 0.5).abs() < 1e-9);
        assert!((roof.fraction_of_peak - 0.5).abs() < 1e-9);
    }

    #[test]
    fn json_is_schema_shaped() {
        let s = snap(vec![
            ev(SpanKind::Chunk, 0, 0, 100, 1),
            ev(SpanKind::SlabEmit, 0, 100, 0, 0),
        ]);
        let r = analyze(&s, &base_report(100, 1), None);
        let j = r.to_json();
        for key in [
            "schema_version",
            "wall_ns",
            "workers",
            "events",
            "dropped",
            "open_spans",
            "nesting_violations",
            "busy_ns_total",
            "idle_ns_total",
            "imbalance_ratio",
            "share_sum",
            "per_worker",
            "layers",
            "steal_latency",
            "roofline",
        ] {
            assert!(j.contains(&format!("\"{key}\"")), "missing {key}");
        }
        assert!(j.contains("\"steal_latency\": null"));
        assert!(j.contains("\"roofline\": null"));
        // instants do not contribute busy time
        assert_eq!(r.busy_ns_total, 100);
    }

    #[test]
    fn empty_snapshot_analyzes_cleanly() {
        let r = analyze(&snap(vec![]), &MetricsReport::capture(), None);
        assert_eq!(r.events, 0);
        assert_eq!(r.busy_ns_total, 0);
        assert!(r.imbalance_ratio.is_none());
        assert!((r.share_sum() - 1.0).abs() < 1e-9, "idle fills the area");
        let _ = r.render_text();
    }
}
