//! Flight recorder: fixed-capacity, per-worker ring buffers of span events.
//!
//! The counters in the crate root say *how much* work each GotoBLAS layer
//! did; the recorder says *when* and *on which worker*. Each worker owns a
//! pre-allocated ring of [`SpanEvent`] slots; recording a span is two
//! `Instant` reads plus four relaxed atomic stores into a reserved slot —
//! **zero allocation on the hot path**, and with the `metrics` feature off
//! every entry point is an inlined no-op and [`Span`] is zero-sized.
//!
//! ## Lifecycle contract
//!
//! [`start`] installs a recorder, [`stop`] uninstalls it and returns a
//! [`TraceSnapshot`]. Both must be called from the coordinating thread
//! while **no spans are in flight** — the drivers guarantee this by
//! starting before they spawn workers and stopping after the join. A span
//! whose guard outlives `stop` does not corrupt memory (the recorder's
//! storage is retired only by the *next* [`start`]), it just records into
//! a buffer nobody will snapshot.
//!
//! ## Overflow policy: fill-and-drop
//!
//! When a worker's ring fills, later events are **dropped and counted**
//! (never wrapped — wrapping would silently destroy the oldest events and
//! break the monotonic-timeline invariant). Every drop increments
//! [`Counter::TraceEventsDropped`] so `MetricsReport` and CI can assert a
//! complete timeline; [`TraceSnapshot::dropped`] carries the same total.
//!
//! ## Sampling
//!
//! Micro-kernel batch spans ([`SpanKind::KernelBatch`]) cover a whole
//! `jr/ir` tile sweep per `(jc, pc, ic)` block — already coarse — and can
//! additionally be sampled 1-in-N via [`RecorderConfig::kernel_sample`]
//! for very large runs. All other kinds are recorded 1:1.

/// What a span measures. Mirrors the layer map in the crate root plus the
/// scheduler and driver events the counters cannot localize.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum SpanKind {
    /// Packing Ã micro-panels (MR-interleaved).
    PackA = 0,
    /// Packing B̃ micro-panels (NR-interleaved).
    PackB = 1,
    /// One micro-kernel tile batch: the `jr/ir` register-tile sweep of a
    /// `(jc, pc, ic)` block (sampled 1-in-`kernel_sample`).
    KernelBatch = 2,
    /// The batched `D = H − p pᵀ` statistic transform (setup + per-slab).
    Transform = 3,
    /// Large-buffer allocation/zeroing in the driver (scratch pool,
    /// packed output).
    Alloc = 4,
    /// One dynamic-scheduler chunk executed by a worker. `arg` encodes
    /// `(chunk_index << 1) | stolen`.
    Chunk = 5,
    /// A checkpoint snapshot being serialized and flushed to its sink.
    CheckpointFlush = 6,
    /// Instant marker: a row slab was completed and published. `arg` is
    /// the slab index.
    SlabEmit = 7,
}

impl SpanKind {
    /// Number of kinds (array sizing).
    pub const COUNT: usize = 8;

    /// All kinds, in stable order.
    pub const ALL: [SpanKind; SpanKind::COUNT] = [
        SpanKind::PackA,
        SpanKind::PackB,
        SpanKind::KernelBatch,
        SpanKind::Transform,
        SpanKind::Alloc,
        SpanKind::Chunk,
        SpanKind::CheckpointFlush,
        SpanKind::SlabEmit,
    ];

    /// Stable snake_case name (trace/report key).
    pub fn name(self) -> &'static str {
        match self {
            SpanKind::PackA => "pack_a",
            SpanKind::PackB => "pack_b",
            SpanKind::KernelBatch => "kernel",
            SpanKind::Transform => "transform",
            SpanKind::Alloc => "alloc",
            SpanKind::Chunk => "chunk",
            SpanKind::CheckpointFlush => "checkpoint_flush",
            SpanKind::SlabEmit => "slab_emit",
        }
    }

    /// True for zero-duration marker events.
    pub fn is_instant(self) -> bool {
        matches!(self, SpanKind::SlabEmit)
    }

    /// True for the *leaf* layers whose durations never contain one
    /// another (they may nest inside [`SpanKind::Chunk`]); the analyzer
    /// sums exactly these into the per-layer wall shares.
    pub fn is_leaf_layer(self) -> bool {
        matches!(
            self,
            SpanKind::PackA
                | SpanKind::PackB
                | SpanKind::KernelBatch
                | SpanKind::Transform
                | SpanKind::Alloc
                | SpanKind::CheckpointFlush
        )
    }

    #[cfg_attr(not(feature = "metrics"), allow(dead_code))]
    fn from_u8(v: u8) -> Option<SpanKind> {
        SpanKind::ALL.get(v as usize).copied()
    }
}

/// One recorded event. Timestamps are nanoseconds since the recorder's
/// epoch ([`start`]); instants have `dur_ns == 0`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SpanEvent {
    /// What was measured.
    pub kind: SpanKind,
    /// Logical worker id (ring index) that recorded the event.
    pub worker: u32,
    /// Start, nanoseconds since the recorder epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds (0 for instants).
    pub dur_ns: u64,
    /// Kind-specific payload (bytes packed, word-pairs, slab index,
    /// `(chunk << 1) | stolen`, …).
    pub arg: u64,
}

/// Recorder sizing and sampling knobs.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecorderConfig {
    /// Ring capacity per worker, in events. The default (16384 ≈ 512 KiB
    /// per worker) absorbs every span the fused driver emits for matrices
    /// far past the bench sizes; overflow is counted, never wrapped.
    pub capacity_per_worker: usize,
    /// Number of per-worker rings. Worker ids `>= workers` fold into the
    /// last ring (they stay race-free; the timeline just merges them).
    pub workers: usize,
    /// Record 1 in `kernel_sample` micro-kernel batch spans (0 is treated
    /// as 1 = record all).
    pub kernel_sample: u64,
}

impl RecorderConfig {
    /// Default capacity per worker (events).
    pub const DEFAULT_CAPACITY: usize = 16384;

    /// Sizing for a run with `threads` workers (plus nothing else: the
    /// coordinating thread shares ring 0, which is safe — slots are
    /// reserved atomically).
    pub fn for_threads(threads: usize) -> Self {
        Self {
            capacity_per_worker: Self::DEFAULT_CAPACITY,
            workers: threads.clamp(1, crate::MAX_WORKERS),
            kernel_sample: 1,
        }
    }
}

impl Default for RecorderConfig {
    fn default() -> Self {
        Self::for_threads(1)
    }
}

/// Everything [`stop`] extracts from the rings: the events (sorted by
/// `(worker, start_ns)`), the drop count, and the balance diagnostics the
/// invariant tests pin.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TraceSnapshot {
    /// All recorded events, sorted by `(worker, start_ns, dur_ns desc)` so
    /// each worker's timeline reads outer-before-inner.
    pub events: Vec<SpanEvent>,
    /// Events dropped because a ring filled (fill-and-drop policy).
    pub dropped: u64,
    /// Spans begun but never ended at snapshot time (must be 0 after a
    /// clean driver run — every begin has an end).
    pub open_spans: u64,
    /// Ring capacity the recorder ran with.
    pub capacity_per_worker: usize,
    /// Number of per-worker rings.
    pub workers: usize,
}

impl TraceSnapshot {
    /// Events recorded by logical worker `w`, in timeline order.
    pub fn worker_events(&self, w: u32) -> impl Iterator<Item = &SpanEvent> {
        self.events.iter().filter(move |e| e.worker == w)
    }

    /// Count of events of one kind.
    pub fn count(&self, kind: SpanKind) -> usize {
        self.events.iter().filter(|e| e.kind == kind).count()
    }
}

// ---------------------------------------------------------------------------
// Enabled implementation
// ---------------------------------------------------------------------------
#[cfg(feature = "metrics")]
mod imp {
    use super::{RecorderConfig, SpanEvent, SpanKind, TraceSnapshot};
    use crate::Counter;
    use std::cell::Cell;
    use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
    use std::sync::Mutex;
    use std::time::Instant;

    /// One event slot. Plain atomics so slot writes are race-free even if
    /// two OS threads share a logical worker id (each still owns a unique
    /// reserved index, and folding ids past the ring count is safe).
    struct Slot {
        kind: AtomicU64,
        start_ns: AtomicU64,
        dur_ns: AtomicU64,
        arg: AtomicU64,
    }

    struct Ring {
        /// Next slot to reserve; values past the capacity mean drops.
        head: AtomicUsize,
        /// Begin/end balance: +1 per span begin, −1 per span end.
        open: AtomicU64,
        slots: Box<[Slot]>,
    }

    pub(super) struct Recorder {
        epoch: Instant,
        cfg: RecorderConfig,
        kernel_seq: AtomicU64,
        rings: Box<[Ring]>,
    }

    impl Recorder {
        fn new(cfg: RecorderConfig) -> Self {
            let ring = || Ring {
                head: AtomicUsize::new(0),
                open: AtomicU64::new(0),
                slots: (0..cfg.capacity_per_worker)
                    .map(|_| Slot {
                        kind: AtomicU64::new(0),
                        start_ns: AtomicU64::new(0),
                        dur_ns: AtomicU64::new(0),
                        arg: AtomicU64::new(0),
                    })
                    .collect(),
            };
            Recorder {
                epoch: Instant::now(),
                cfg,
                kernel_seq: AtomicU64::new(0),
                rings: (0..cfg.workers.max(1)).map(|_| ring()).collect(),
            }
        }

        #[inline]
        fn now_ns(&self) -> u64 {
            u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX)
        }

        #[inline]
        fn ring(&self, worker: usize) -> &Ring {
            let w = worker.min(self.rings.len() - 1);
            &self.rings[w]
        }

        /// Reserve a slot and store the event; count a drop when full.
        #[inline]
        fn push(&self, worker: usize, kind: SpanKind, start_ns: u64, dur_ns: u64, arg: u64) {
            let ring = self.ring(worker);
            let idx = ring.head.fetch_add(1, Ordering::Relaxed);
            if idx < ring.slots.len() {
                let s = &ring.slots[idx];
                s.kind.store(kind as u64, Ordering::Relaxed);
                s.start_ns.store(start_ns, Ordering::Relaxed);
                s.dur_ns.store(dur_ns, Ordering::Relaxed);
                s.arg.store(arg, Ordering::Relaxed);
            } else {
                crate::add(Counter::TraceEventsDropped, 1);
            }
        }

        fn snapshot(&self) -> TraceSnapshot {
            let mut events = Vec::new();
            let mut dropped = 0u64;
            let mut open = 0i64;
            for (w, ring) in self.rings.iter().enumerate() {
                let head = ring.head.load(Ordering::Relaxed);
                let filled = head.min(ring.slots.len());
                dropped += (head - filled) as u64;
                open += ring.open.load(Ordering::Relaxed) as i64;
                for s in &ring.slots[..filled] {
                    let kind = match SpanKind::from_u8(s.kind.load(Ordering::Relaxed) as u8) {
                        Some(k) => k,
                        None => continue, // torn slot: skip, never panic
                    };
                    events.push(SpanEvent {
                        kind,
                        worker: w as u32,
                        start_ns: s.start_ns.load(Ordering::Relaxed),
                        dur_ns: s.dur_ns.load(Ordering::Relaxed),
                        arg: s.arg.load(Ordering::Relaxed),
                    });
                }
            }
            events.sort_by(|a, b| {
                (a.worker, a.start_ns, std::cmp::Reverse(a.dur_ns)).cmp(&(
                    b.worker,
                    b.start_ns,
                    std::cmp::Reverse(b.dur_ns),
                ))
            });
            TraceSnapshot {
                events,
                dropped,
                open_spans: u64::try_from(open.max(0)).unwrap_or(0),
                capacity_per_worker: self.cfg.capacity_per_worker,
                workers: self.rings.len(),
            }
        }
    }

    /// The active recorder, or null. Retirement rule: [`stop`] nulls this
    /// pointer but keeps the box alive in [`STORE`]; only the *next*
    /// [`start`] drops the previous recorder. A straggler span guard that
    /// outlives `stop` therefore writes into live (dead-to-snapshots)
    /// memory instead of freed memory.
    static ACTIVE: AtomicPtr<Recorder> = AtomicPtr::new(std::ptr::null_mut());
    static STORE: Mutex<Option<Box<Recorder>>> = Mutex::new(None);

    thread_local! {
        static WORKER: Cell<usize> = const { Cell::new(0) };
    }

    pub(super) fn set_worker(worker: usize) {
        WORKER.with(|w| w.set(worker));
    }

    pub(super) fn worker() -> usize {
        WORKER.with(Cell::get)
    }

    pub(super) fn start(cfg: RecorderConfig) {
        let mut store = STORE
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        // Uninstall first so nothing records into the recorder we are
        // about to drop, then install the replacement.
        ACTIVE.store(std::ptr::null_mut(), Ordering::Release);
        let mut boxed = Box::new(Recorder::new(cfg));
        let ptr: *mut Recorder = &mut *boxed;
        *store = Some(boxed);
        ACTIVE.store(ptr, Ordering::Release);
    }

    pub(super) fn stop() -> Option<TraceSnapshot> {
        let store = STORE
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        let was = ACTIVE.swap(std::ptr::null_mut(), Ordering::AcqRel);
        if was.is_null() {
            return None;
        }
        // The box outlives the snapshot (it stays in STORE until the next
        // start), so reading through the raw pointer is sound while we
        // hold the lock.
        let rec = store.as_deref()?;
        Some(rec.snapshot())
    }

    pub(super) fn is_active() -> bool {
        !ACTIVE.load(Ordering::Relaxed).is_null()
    }

    /// Snapshot without uninstalling: the live-daemon dump path
    /// (SIGUSR1, `dump-trace` opcode). Holding the STORE lock keeps the
    /// box alive while the rings are read; writers keep recording
    /// concurrently (relaxed ring reads — a dump is a point-in-time
    /// approximation, same as `stop`'s).
    pub(super) fn snapshot_live() -> Option<TraceSnapshot> {
        let store = STORE
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        if ACTIVE.load(Ordering::Acquire).is_null() {
            return None;
        }
        let rec = store.as_deref()?;
        Some(rec.snapshot())
    }

    /// Active recorder, if any. SAFETY: callers only use the reference
    /// transiently (no storage across calls); the pointed-to recorder is
    /// kept alive by STORE until the next `start`, per the module
    /// lifecycle contract.
    #[inline]
    fn active() -> Option<&'static Recorder> {
        let p = ACTIVE.load(Ordering::Acquire);
        if p.is_null() {
            None
        } else {
            // SAFETY: see above — non-null ACTIVE points into the boxed
            // recorder held by STORE, which is retired only by the next
            // start(); the reference does not escape the recording call.
            Some(unsafe { &*p })
        }
    }

    #[inline]
    pub(super) fn begin(kind: SpanKind) -> Option<(SpanKind, u64)> {
        let rec = active()?;
        if kind == SpanKind::KernelBatch {
            let n = rec.cfg.kernel_sample.max(1);
            if rec.kernel_seq.fetch_add(1, Ordering::Relaxed) % n != 0 {
                return None;
            }
        }
        rec.ring(worker()).open.fetch_add(1, Ordering::Relaxed);
        Some((kind, rec.now_ns()))
    }

    #[inline]
    pub(super) fn end(kind: SpanKind, start_ns: u64, arg: u64) {
        if let Some(rec) = active() {
            let w = worker();
            let end_ns = rec.now_ns();
            rec.push(w, kind, start_ns, end_ns.saturating_sub(start_ns), arg);
            // wrapping_sub: balance is tracked as a signed value read back
            // as i64 in snapshot(); underflow (end without begin) shows up
            // as a negative balance rather than corrupting anything.
            rec.ring(w).open.fetch_sub(1, Ordering::Relaxed);
        }
    }

    #[inline]
    pub(super) fn instant(kind: SpanKind, arg: u64) {
        if let Some(rec) = active() {
            let now = rec.now_ns();
            rec.push(worker(), kind, now, 0, arg);
        }
    }
}

// ---------------------------------------------------------------------------
// Public API (no-ops when `metrics` is off)
// ---------------------------------------------------------------------------

/// Installs a fresh recorder. Call from the coordinating thread before
/// spawning workers; replaces (and retires) any previous recorder.
/// No-op when `metrics` is off.
#[inline(always)]
pub fn start(cfg: RecorderConfig) {
    #[cfg(feature = "metrics")]
    imp::start(cfg);
    #[cfg(not(feature = "metrics"))]
    let _ = cfg;
}

/// Uninstalls the active recorder and returns its snapshot. Call after
/// joining workers. `None` when no recorder was active or `metrics` is
/// off.
#[inline(always)]
pub fn stop() -> Option<TraceSnapshot> {
    #[cfg(feature = "metrics")]
    return imp::stop();
    #[cfg(not(feature = "metrics"))]
    None
}

/// Snapshots the active recorder **without uninstalling it** — the
/// continuously-armed daemon dump path (SIGUSR1 / `dump-trace`).
/// Workers keep recording throughout; the returned snapshot is the same
/// point-in-time approximation [`stop`] produces. `None` when no
/// recorder is armed or `metrics` is off.
#[inline(always)]
pub fn snapshot_live() -> Option<TraceSnapshot> {
    #[cfg(feature = "metrics")]
    return imp::snapshot_live();
    #[cfg(not(feature = "metrics"))]
    None
}

/// True while a recorder is installed (always false when `metrics` is
/// off). One relaxed atomic load.
#[inline(always)]
pub fn is_active() -> bool {
    #[cfg(feature = "metrics")]
    return imp::is_active();
    #[cfg(not(feature = "metrics"))]
    false
}

/// Binds the calling OS thread to logical worker `worker` (its ring
/// index). Schedulers call this once per spawned worker; unbound threads
/// record into ring 0.
#[inline(always)]
pub fn set_worker(worker: usize) {
    #[cfg(feature = "metrics")]
    imp::set_worker(worker);
    #[cfg(not(feature = "metrics"))]
    let _ = worker;
}

/// Records a zero-duration marker event (e.g. [`SpanKind::SlabEmit`]).
#[inline(always)]
pub fn instant(kind: SpanKind, arg: u64) {
    #[cfg(feature = "metrics")]
    imp::instant(kind, arg);
    #[cfg(not(feature = "metrics"))]
    let _ = (kind, arg);
}

/// A scoped span guard. Zero-sized and clock-free when `metrics` is off;
/// inert (single relaxed load) when no recorder is active. End it with
/// [`Span::end`] to attach a payload, or let it drop (payload 0).
#[derive(Debug)]
#[must_use = "a span records on end/drop; binding to _ discards it immediately"]
pub struct Span {
    #[cfg(feature = "metrics")]
    inner: Option<(SpanKind, u64)>,
}

impl Span {
    /// Begins a span of `kind` on the current worker's timeline. Inert
    /// when no recorder is active or the kind is sampled out.
    #[inline(always)]
    pub fn begin(kind: SpanKind) -> Self {
        #[cfg(feature = "metrics")]
        {
            Span {
                inner: imp::begin(kind),
            }
        }
        #[cfg(not(feature = "metrics"))]
        {
            let _ = kind;
            Span {}
        }
    }

    /// Ends the span, recording `arg` as its payload.
    #[inline(always)]
    #[cfg_attr(not(feature = "metrics"), allow(unused_mut))]
    pub fn end(mut self, arg: u64) {
        #[cfg(feature = "metrics")]
        if let Some((kind, start_ns)) = self.inner.take() {
            imp::end(kind, start_ns, arg);
        }
        #[cfg(not(feature = "metrics"))]
        let _ = arg;
        std::mem::forget(self);
    }
}

impl Drop for Span {
    #[inline(always)]
    fn drop(&mut self) {
        #[cfg(feature = "metrics")]
        if let Some((kind, start_ns)) = self.inner.take() {
            imp::end(kind, start_ns, 0);
        }
    }
}

#[cfg(all(test, feature = "metrics"))]
mod tests {
    use super::*;
    use crate::Counter;

    // Recorder state is process-global; serialize the tests that touch it.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
    }

    #[test]
    fn inactive_recorder_is_inert() {
        let _g = lock();
        while stop().is_some() {}
        assert!(!is_active());
        let s = Span::begin(SpanKind::PackA);
        s.end(1);
        instant(SpanKind::SlabEmit, 0);
        assert!(stop().is_none());
    }

    #[test]
    fn records_and_snapshots_spans() {
        let _g = lock();
        crate::reset();
        start(RecorderConfig::for_threads(2));
        assert!(is_active());
        set_worker(0);
        let s = Span::begin(SpanKind::PackB);
        std::thread::sleep(std::time::Duration::from_millis(1));
        s.end(64);
        instant(SpanKind::SlabEmit, 3);
        let snap = stop().expect("snapshot");
        assert_eq!(snap.events.len(), 2);
        assert_eq!(snap.dropped, 0);
        assert_eq!(snap.open_spans, 0);
        let span = &snap.events[0];
        assert_eq!(span.kind, SpanKind::PackB);
        assert_eq!(span.arg, 64);
        assert!(span.dur_ns >= 1_000_000);
        assert_eq!(snap.events[1].kind, SpanKind::SlabEmit);
        assert_eq!(snap.events[1].dur_ns, 0);
        assert!(snap.events[1].start_ns >= span.start_ns + span.dur_ns);
        assert!(stop().is_none(), "stop is one-shot");
    }

    #[test]
    fn overflow_fills_and_drops_with_accounting() {
        let _g = lock();
        crate::reset();
        start(RecorderConfig {
            capacity_per_worker: 4,
            workers: 1,
            kernel_sample: 1,
        });
        for i in 0..10 {
            instant(SpanKind::SlabEmit, i);
        }
        let snap = stop().expect("snapshot");
        assert_eq!(snap.events.len(), 4, "ring keeps the first `cap` events");
        let args: Vec<u64> = snap.events.iter().map(|e| e.arg).collect();
        assert_eq!(args, vec![0, 1, 2, 3], "fill-and-drop, never wrap");
        assert_eq!(snap.dropped, 6);
        assert_eq!(crate::get(Counter::TraceEventsDropped), 6);
    }

    #[test]
    fn kernel_batch_sampling() {
        let _g = lock();
        crate::reset();
        start(RecorderConfig {
            capacity_per_worker: 64,
            workers: 1,
            kernel_sample: 4,
        });
        for _ in 0..16 {
            Span::begin(SpanKind::KernelBatch).end(0);
        }
        let snap = stop().expect("snapshot");
        assert_eq!(snap.count(SpanKind::KernelBatch), 4, "1-in-4 sampling");
        assert_eq!(snap.open_spans, 0, "sampled-out spans do not unbalance");
    }

    #[test]
    fn drop_guard_ends_the_span() {
        let _g = lock();
        crate::reset();
        start(RecorderConfig::for_threads(1));
        {
            let _s = Span::begin(SpanKind::Transform);
            // dropped without an explicit end
        }
        let snap = stop().expect("snapshot");
        assert_eq!(snap.count(SpanKind::Transform), 1);
        assert_eq!(snap.open_spans, 0);
    }

    #[test]
    fn worker_ids_fold_into_last_ring() {
        let _g = lock();
        crate::reset();
        start(RecorderConfig {
            capacity_per_worker: 8,
            workers: 2,
            kernel_sample: 1,
        });
        set_worker(57);
        instant(SpanKind::SlabEmit, 9);
        set_worker(0);
        let snap = stop().expect("snapshot");
        assert_eq!(snap.events.len(), 1);
        assert_eq!(snap.events[0].worker, 1, "folds into the last ring");
    }
}
