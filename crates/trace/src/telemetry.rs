//! The serve-side telemetry registry: outcome-labelled request
//! latencies, per-opcode service histograms, queue-wait tracking, and
//! the rolling windows behind the live p50/p99 gauges.
//!
//! `ld-serve` funnels every request — including ones shed at admission
//! or failed before a worker touched them — through [`record_served`].
//! Storage is the same static-atomics discipline as the counters: with
//! the `metrics` feature off every entry point is an inlined no-op; with
//! it on, a record is a handful of relaxed adds and never allocates.
//!
//! The legacy [`crate::record_request_latency`] histogram (health
//! endpoint p50/p99, `MetricsReport.request_latency`) is fed **only for
//! `Ok` outcomes** here, so shed/timeout/error latencies no longer
//! pollute the success quantiles; every outcome gets its own labelled
//! histogram instead.

use crate::histogram::HistogramSnapshot;
#[cfg(feature = "metrics")]
use crate::histogram::WINDOWS;

/// Wire opcodes the serve daemon dispatches, for per-opcode service-time
/// histograms. Mirrors `ld-serve`'s request enum (trace cannot depend on
/// serve; serve maps its types onto these).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum ServeOp {
    /// `health` — liveness/stats snapshot, answered inline.
    Health,
    /// `pair` — one r²/D/D′ value for a SNP pair.
    Pair,
    /// `region` — a dense LD block for a row range.
    Region,
    /// `metrics` — Prometheus exposition, answered inline.
    Metrics,
    /// `dump-trace` — live flight-recorder snapshot, answered inline.
    DumpTrace,
}

impl ServeOp {
    /// Number of opcodes (array sizing).
    pub const COUNT: usize = 5;

    /// All opcodes, in stable exposition order.
    pub const ALL: [ServeOp; ServeOp::COUNT] = [
        ServeOp::Health,
        ServeOp::Pair,
        ServeOp::Region,
        ServeOp::Metrics,
        ServeOp::DumpTrace,
    ];

    /// Stable label value (the `opcode="…"` exposition label).
    pub fn name(self) -> &'static str {
        match self {
            ServeOp::Health => "health",
            ServeOp::Pair => "pair",
            ServeOp::Region => "region",
            ServeOp::Metrics => "metrics",
            ServeOp::DumpTrace => "dump_trace",
        }
    }
}

/// Terminal outcome of a served request, for outcome-labelled latency
/// histograms. Mirrors the LDS1 status byte.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(usize)]
pub enum ServeOutcome {
    /// Served successfully.
    Ok,
    /// Rejected by admission control (queue full, memory budget).
    Shed,
    /// Malformed or unanswerable request.
    BadRequest,
    /// Unknown panel or out-of-range indices.
    NotFound,
    /// Worker panic or internal failure.
    Internal,
    /// Queue deadline expired before a worker picked it up.
    Timeout,
    /// Refused because the daemon is draining.
    ShuttingDown,
}

impl ServeOutcome {
    /// Number of outcomes (array sizing).
    pub const COUNT: usize = 7;

    /// All outcomes, in stable exposition order.
    pub const ALL: [ServeOutcome; ServeOutcome::COUNT] = [
        ServeOutcome::Ok,
        ServeOutcome::Shed,
        ServeOutcome::BadRequest,
        ServeOutcome::NotFound,
        ServeOutcome::Internal,
        ServeOutcome::Timeout,
        ServeOutcome::ShuttingDown,
    ];

    /// Stable label value (the `outcome="…"` exposition label).
    pub fn name(self) -> &'static str {
        match self {
            ServeOutcome::Ok => "ok",
            ServeOutcome::Shed => "shed",
            ServeOutcome::BadRequest => "bad_request",
            ServeOutcome::NotFound => "not_found",
            ServeOutcome::Internal => "internal",
            ServeOutcome::Timeout => "timeout",
            ServeOutcome::ShuttingDown => "shutting_down",
        }
    }
}

#[cfg(feature = "metrics")]
mod imp {
    use super::{ServeOp, ServeOutcome};
    use crate::histogram::{Histogram, RollingHistogram};

    #[allow(clippy::declare_interior_mutable_const)] // array-init pattern
    const EMPTY: Histogram = Histogram::new();

    /// Service time (worker compute, or inline handling) per opcode.
    pub(super) static SERVICE_BY_OP: [Histogram; ServeOp::COUNT] = [EMPTY; ServeOp::COUNT];
    /// End-to-end latency (accept → response ready) per outcome.
    pub(super) static TOTAL_BY_OUTCOME: [Histogram; ServeOutcome::COUNT] =
        [EMPTY; ServeOutcome::COUNT];
    /// Queue wait (enqueue → worker pop; 0 for inline/shed requests).
    pub(super) static QUEUE_WAIT: Histogram = Histogram::new();
    /// Rolling end-to-end latency of successful requests (the live
    /// p50/p99 windows).
    pub(super) static OK_ROLLING: RollingHistogram = RollingHistogram::new();
    /// Rolling end-to-end latency of everything else (error/shed bursts).
    pub(super) static ERR_ROLLING: RollingHistogram = RollingHistogram::new();

    pub(super) fn reset() {
        for h in SERVICE_BY_OP.iter().chain(&TOTAL_BY_OUTCOME) {
            h.reset();
        }
        QUEUE_WAIT.reset();
        OK_ROLLING.reset();
        ERR_ROLLING.reset();
    }
}

/// Records one served request: opcode, terminal outcome, queue wait
/// (0 when the request never queued), service time (0 when no worker
/// ran it) and end-to-end latency, all in nanoseconds. `Ok` outcomes
/// also feed the legacy success-only histogram behind
/// [`crate::latency_snapshot`]. No-op without the `metrics` feature.
#[inline(always)]
pub fn record_served(
    op: ServeOp,
    outcome: ServeOutcome,
    queue_ns: u64,
    service_ns: u64,
    total_ns: u64,
) {
    #[cfg(feature = "metrics")]
    {
        imp::SERVICE_BY_OP[op as usize].record(service_ns);
        imp::TOTAL_BY_OUTCOME[outcome as usize].record(total_ns);
        imp::QUEUE_WAIT.record(queue_ns);
        if matches!(outcome, ServeOutcome::Ok) {
            imp::OK_ROLLING.record(total_ns);
            crate::record_request_latency(total_ns);
        } else {
            imp::ERR_ROLLING.record(total_ns);
        }
    }
    #[cfg(not(feature = "metrics"))]
    let _ = (op, outcome, queue_ns, service_ns, total_ns);
}

/// One rolling window's latency stats (conservative bucket quantiles).
#[derive(Clone, Debug, PartialEq)]
pub struct WindowStats {
    /// Window label (`"10s"`, `"1m"`, `"5m"`).
    pub window: &'static str,
    /// Successful requests inside the window.
    pub count: u64,
    /// Window p50 (ns), when any success landed in the window.
    pub p50_ns: Option<u64>,
    /// Window p99 (ns), when any success landed in the window.
    pub p99_ns: Option<u64>,
    /// Non-`Ok` requests inside the window.
    pub err_count: u64,
}

/// A point-in-time copy of the whole serve-telemetry registry, the input
/// the Prometheus encoder renders. Empty (all zero) when metrics are
/// disabled.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServeTelemetry {
    /// `(opcode label, service-time histogram)` in [`ServeOp::ALL`] order.
    pub service_by_opcode: Vec<(&'static str, HistogramSnapshot)>,
    /// `(outcome label, end-to-end histogram)` in [`ServeOutcome::ALL`] order.
    pub total_by_outcome: Vec<(&'static str, HistogramSnapshot)>,
    /// Queue-wait histogram (enqueue → worker pop).
    pub queue_wait: HistogramSnapshot,
    /// Rolling-window success latency stats in
    /// [`crate::histogram::WINDOWS`] order.
    pub windows: Vec<WindowStats>,
}

/// Snapshots the registry (see [`ServeTelemetry`]).
pub fn serve_telemetry() -> ServeTelemetry {
    #[cfg(feature = "metrics")]
    {
        let now = crate::histogram::now_ns();
        ServeTelemetry {
            service_by_opcode: ServeOp::ALL
                .iter()
                .map(|op| (op.name(), imp::SERVICE_BY_OP[*op as usize].snapshot()))
                .collect(),
            total_by_outcome: ServeOutcome::ALL
                .iter()
                .map(|o| (o.name(), imp::TOTAL_BY_OUTCOME[*o as usize].snapshot()))
                .collect(),
            queue_wait: imp::QUEUE_WAIT.snapshot(),
            windows: WINDOWS
                .iter()
                .map(|&(label, secs)| {
                    let ok = imp::OK_ROLLING.window_at(now, secs);
                    let err = imp::ERR_ROLLING.window_at(now, secs);
                    WindowStats {
                        window: label,
                        count: ok.count,
                        p50_ns: ok.p50_ns(),
                        p99_ns: ok.p99_ns(),
                        err_count: err.count,
                    }
                })
                .collect(),
        }
    }
    #[cfg(not(feature = "metrics"))]
    ServeTelemetry::default()
}

/// Rolling-window success-latency stats only (the health endpoint's
/// live p50/p99). Equivalent to [`serve_telemetry`]`().windows` but
/// skips the histogram copies.
pub fn rolling_windows() -> Vec<WindowStats> {
    #[cfg(feature = "metrics")]
    {
        let now = crate::histogram::now_ns();
        WINDOWS
            .iter()
            .map(|&(label, secs)| {
                let ok = imp::OK_ROLLING.window_at(now, secs);
                let err = imp::ERR_ROLLING.window_at(now, secs);
                WindowStats {
                    window: label,
                    count: ok.count,
                    p50_ns: ok.p50_ns(),
                    p99_ns: ok.p99_ns(),
                    err_count: err.count,
                }
            })
            .collect()
    }
    #[cfg(not(feature = "metrics"))]
    Vec::new()
}

/// Zeroes the whole registry (called from [`crate::reset`]).
pub(crate) fn reset() {
    #[cfg(feature = "metrics")]
    imp::reset();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_sets_are_stable_and_unique() {
        let ops: Vec<&str> = ServeOp::ALL.iter().map(|o| o.name()).collect();
        assert_eq!(ops, ["health", "pair", "region", "metrics", "dump_trace"]);
        let outs: Vec<&str> = ServeOutcome::ALL.iter().map(|o| o.name()).collect();
        assert_eq!(
            outs,
            [
                "ok",
                "shed",
                "bad_request",
                "not_found",
                "internal",
                "timeout",
                "shutting_down"
            ]
        );
    }

    #[cfg(feature = "metrics")]
    #[test]
    fn outcomes_are_segregated() {
        crate::reset();
        record_served(ServeOp::Pair, ServeOutcome::Ok, 100, 400, 500);
        record_served(ServeOp::Pair, ServeOutcome::Shed, 0, 0, 9_000_000);
        record_served(ServeOp::Region, ServeOutcome::Timeout, 5_000, 0, 6_000);
        let t = serve_telemetry();
        let get = |label: &str| {
            t.total_by_outcome
                .iter()
                .find(|(l, _)| *l == label)
                .map(|(_, h)| h.count)
                .unwrap_or(0)
        };
        assert_eq!(get("ok"), 1);
        assert_eq!(get("shed"), 1);
        assert_eq!(get("timeout"), 1);
        assert_eq!(get("internal"), 0);
        // the legacy success histogram saw only the Ok request
        assert_eq!(crate::LatencySummary::capture().count, 1);
        // queue-wait saw all three
        assert_eq!(t.queue_wait.count, 3);
        // rolling windows: 1 success, 2 errors
        assert_eq!(t.windows.len(), 3);
        assert_eq!(t.windows[0].count, 1);
        assert_eq!(t.windows[0].err_count, 2);
        crate::reset();
        assert_eq!(serve_telemetry().queue_wait.count, 0);
    }
}
