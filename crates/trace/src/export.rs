//! Chrome trace-event / Perfetto JSON export of a [`TraceSnapshot`].
//!
//! The emitted document is the JSON *object format* of the Trace Event
//! spec (`{"traceEvents": [...]}`), which both `chrome://tracing` and
//! [Perfetto](https://ui.perfetto.dev) load directly:
//!
//! * one `"ph": "M"` (metadata) event per worker naming its track,
//! * `"ph": "X"` (complete) events for spans, `ts`/`dur` in microseconds
//!   relative to the recorder epoch,
//! * `"ph": "i"` (instant) events with thread scope for markers such as
//!   slab emission.
//!
//! Everything is hand-rolled: the workspace builds offline with no
//! external dependencies, and the event structure is flat enough that a
//! serializer would be more code than the writer below.

use crate::recorder::{SpanEvent, TraceSnapshot};
use std::fmt::Write as _;

/// Process id used for every event (one process: the LD run).
const PID: u32 = 1;

fn push_common(out: &mut String, ph: char, name: &str, tid: u32) {
    let _ = write!(
        out,
        "{{\"ph\":\"{ph}\",\"pid\":{PID},\"tid\":{tid},\"name\":\"{name}\""
    );
}

fn ts_us(ns: u64) -> f64 {
    ns as f64 / 1e3
}

fn push_event(out: &mut String, e: &SpanEvent) {
    if e.kind.is_instant() {
        push_common(out, 'i', e.kind.name(), e.worker);
        let _ = write!(
            out,
            ",\"ts\":{:.3},\"s\":\"t\",\"args\":{{\"arg\":{}}}}}",
            ts_us(e.start_ns),
            e.arg
        );
    } else {
        push_common(out, 'X', e.kind.name(), e.worker);
        let _ = write!(
            out,
            ",\"ts\":{:.3},\"dur\":{:.3},\"args\":{{\"arg\":{}}}}}",
            ts_us(e.start_ns),
            ts_us(e.dur_ns),
            e.arg
        );
    }
}

/// Serializes a snapshot to Chrome trace-event JSON (Perfetto-loadable).
///
/// Workers appear as threads `worker-0..n` of a single process; span
/// `arg` payloads are preserved under `args.arg`. The snapshot's drop
/// count is carried in the top-level `metadata` object so a truncated
/// timeline is detectable from the file alone.
pub fn chrome_trace_json(snap: &TraceSnapshot) -> String {
    let mut out = String::with_capacity(128 + snap.events.len() * 96);
    out.push_str("{\"traceEvents\":[");
    let mut first = true;
    let mut sep = |out: &mut String| {
        if first {
            first = false;
        } else {
            out.push(',');
        }
        out.push_str("\n  ");
    };
    // Track-naming metadata: one per worker ring that recorded anything.
    let mut workers: Vec<u32> = snap.events.iter().map(|e| e.worker).collect();
    workers.sort_unstable();
    workers.dedup();
    for w in &workers {
        sep(&mut out);
        push_common(&mut out, 'M', "thread_name", *w);
        let _ = write!(out, ",\"args\":{{\"name\":\"worker-{w}\"}}}}");
    }
    for e in &snap.events {
        sep(&mut out);
        push_event(&mut out, e);
    }
    let _ = write!(
        out,
        "\n],\"displayTimeUnit\":\"ms\",\"metadata\":{{\
         \"trace_events_dropped\":{},\"capacity_per_worker\":{},\"workers\":{}}}}}\n",
        snap.dropped, snap.capacity_per_worker, snap.workers
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::SpanKind;

    fn sample_snapshot() -> TraceSnapshot {
        TraceSnapshot {
            events: vec![
                SpanEvent {
                    kind: SpanKind::Chunk,
                    worker: 0,
                    start_ns: 1_000,
                    dur_ns: 9_000,
                    arg: 0,
                },
                SpanEvent {
                    kind: SpanKind::PackA,
                    worker: 0,
                    start_ns: 2_000,
                    dur_ns: 3_000,
                    arg: 512,
                },
                SpanEvent {
                    kind: SpanKind::SlabEmit,
                    worker: 1,
                    start_ns: 11_500,
                    dur_ns: 0,
                    arg: 7,
                },
            ],
            dropped: 0,
            open_spans: 0,
            capacity_per_worker: 16,
            workers: 2,
        }
    }

    #[test]
    fn emits_complete_and_instant_events() {
        let j = chrome_trace_json(&sample_snapshot());
        assert!(j.starts_with("{\"traceEvents\":["));
        assert!(j.contains("\"ph\":\"M\""));
        assert!(j.contains("\"name\":\"worker-0\""));
        assert!(j.contains("\"name\":\"worker-1\""));
        assert!(j.contains("\"ph\":\"X\",\"pid\":1,\"tid\":0,\"name\":\"pack_a\""));
        assert!(j.contains("\"ts\":2.000,\"dur\":3.000"));
        assert!(j.contains("\"ph\":\"i\""));
        assert!(j.contains("\"s\":\"t\""));
        assert!(j.contains("\"args\":{\"arg\":7}"));
        assert!(j.contains("\"trace_events_dropped\":0"));
    }

    #[test]
    fn empty_snapshot_is_valid() {
        let j = chrome_trace_json(&TraceSnapshot::default());
        assert!(j.contains("\"traceEvents\":["));
        assert!(j.trim_end().ends_with('}'));
    }
}
