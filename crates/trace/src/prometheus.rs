//! Prometheus text-exposition (v0.0.4) encoder over the `ld-trace`
//! counters, the serve-telemetry histograms, and caller-supplied gauges.
//!
//! ## Naming conventions
//!
//! Every metric carries the `gemm_ld_` prefix. Monotonic counters get a
//! `_total` suffix (`gemm_ld_requests_shed_total`); the one peak gauge
//! among the counters (`alloc_peak_bytes`) is exposed as a gauge without
//! it. Latency histograms are in **seconds** per Prometheus base-unit
//! convention, with `le` bounds at the log₂ bucket ceilings
//! (`…_bucket{le="2e-09"} …`, last ceiling folded into `+Inf`):
//!
//! * `gemm_ld_request_seconds{outcome=…}` — end-to-end latency per
//!   terminal outcome (`ok`, `shed`, `timeout`, …);
//! * `gemm_ld_request_service_seconds{opcode=…}` — worker/inline service
//!   time per opcode;
//! * `gemm_ld_request_queue_seconds` — admission-queue wait.
//!
//! Rolling-window quantiles are point-in-time **gauges** (a Prometheus
//! histogram is cumulative and cannot expire samples):
//! `gemm_ld_request_window_seconds{window="10s",quantile="0.99"}` and
//! `gemm_ld_request_window_count{window=…,result="ok"|"err"}`.
//!
//! The encoder core ([`render`]) is a pure function of its inputs so the
//! golden test can pin the exposition byte-for-byte; [`render_global`]
//! feeds it the live registry.

use crate::histogram::{bucket_ceiling_ns, HistogramSnapshot, BUCKETS};
use crate::telemetry::{serve_telemetry, ServeTelemetry};
use crate::Counter;
use std::fmt::Write as _;

/// One caller-supplied gauge sample. `labels` is the inner label-pair
/// block (e.g. `panel="chr1"`), empty for an unlabelled gauge; values in
/// label position must already be escaped with [`escape_label_value`].
/// Same-name samples must be adjacent so `# TYPE` is emitted once.
#[derive(Clone, Debug, PartialEq)]
pub struct PromGauge {
    /// Full metric name (caller includes the `gemm_ld_` prefix).
    pub name: String,
    /// One-line help text.
    pub help: &'static str,
    /// Inner label block (without braces), possibly empty.
    pub labels: String,
    /// Sample value.
    pub value: f64,
}

impl PromGauge {
    /// Convenience constructor for an unlabelled gauge.
    pub fn new(name: &str, help: &'static str, value: f64) -> Self {
        Self {
            name: name.to_string(),
            help,
            labels: String::new(),
            value,
        }
    }
}

/// Escapes a string for use inside a Prometheus label value (`\\`, `\"`
/// and newline per the v0.0.4 spec).
pub fn escape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn header(out: &mut String, name: &str, help: &str, ty: &str) {
    let _ = writeln!(out, "# HELP {name} {help}");
    let _ = writeln!(out, "# TYPE {name} {ty}");
}

fn sample(out: &mut String, name: &str, labels: &str, value: f64) {
    if labels.is_empty() {
        let _ = writeln!(out, "{name} {value}");
    } else {
        let _ = writeln!(out, "{name}{{{labels}}} {value}");
    }
}

/// The `le` bound (seconds) of log₂ bucket `i`, or `+Inf` for the last.
fn le_bound(i: usize) -> String {
    if i + 1 == BUCKETS {
        "+Inf".to_string()
    } else {
        (bucket_ceiling_ns(i) as f64 / 1e9).to_string()
    }
}

/// Writes one histogram metric (HELP/TYPE once, then the
/// `_bucket`/`_sum`/`_count` triple per label set). `series` holds
/// `(inner label block, snapshot)` pairs; the label block is `label`
/// rendered as `key="value"` or empty.
fn write_histogram(
    out: &mut String,
    name: &str,
    help: &str,
    series: &[(String, &HistogramSnapshot)],
) {
    header(out, name, help, "histogram");
    for (labels, snap) in series {
        let mut cumulative = 0u64;
        for i in 0..BUCKETS {
            cumulative += snap.buckets[i];
            let le = le_bound(i);
            let inner = if labels.is_empty() {
                format!("le=\"{le}\"")
            } else {
                format!("{labels},le=\"{le}\"")
            };
            let _ = writeln!(out, "{name}_bucket{{{inner}}} {cumulative}");
        }
        let sum_s = snap.sum_ns as f64 / 1e9;
        if labels.is_empty() {
            let _ = writeln!(out, "{name}_sum {sum_s}");
            let _ = writeln!(out, "{name}_count {}", snap.count);
        } else {
            let _ = writeln!(out, "{name}_sum{{{labels}}} {sum_s}");
            let _ = writeln!(out, "{name}_count{{{labels}}} {}", snap.count);
        }
    }
}

/// Short help text for a counter's exposition line.
fn counter_help(c: Counter) -> &'static str {
    match c {
        Counter::PackANs => "Nanoseconds packing A micro-panels",
        Counter::PackBNs => "Nanoseconds packing B micro-panels",
        Counter::KernelNs => "Nanoseconds in the popcount micro-kernel",
        Counter::TransformNs => "Nanoseconds in the statistic transform",
        Counter::KernelTiles => "Micro-tiles computed",
        Counter::KernelWords => "AND+POPCNT word-pair operations",
        Counter::BytesPacked => "Bytes written into pack buffers",
        Counter::SlabsEmitted => "Row slabs completed by the fused pipeline",
        Counter::BudgetShrinks => "Times the memory budget shrank the slab height",
        Counter::AllocPeakBytes => "Peak modeled transient footprint in bytes",
        Counter::TilesClaimed => "Dynamic-scheduler chunks claimed",
        Counter::StealCount => "Chunks claimed outside the static even split",
        Counter::IoLinesRead => "Input text lines parsed",
        Counter::IoBytesRead => "Input bytes consumed",
        Counter::CancelPolls => "Cancellation-token polls by the driver",
        Counter::CheckpointsWritten => "Checkpoint snapshots flushed",
        Counter::ResumeSlabsSkipped => "Slabs restored from a checkpoint",
        Counter::TraceEventsDropped => "Flight-recorder events dropped to full rings",
        Counter::ShardsLaunched => "Shard child processes spawned",
        Counter::ShardRetries => "Shard attempts re-dispatched after a failure",
        Counter::MergeSpansValidated => "Shard slab spans validated during merge",
        Counter::ChunksRead => "Tile-store chunks decoded",
        Counter::StoreBytesRead => "Bytes streamed out of a tile store",
        Counter::PrefetchHits => "Chunk reads the prefetcher had ready",
        Counter::PrefetchStallNs => "Nanoseconds compute stalled on the prefetcher",
        Counter::RequestsAccepted => "Queries accepted into the request queue",
        Counter::RequestsShed => "Queries rejected by admission control",
        Counter::RequestsFailed => "Accepted queries that failed internally",
        Counter::PanelsEvicted => "Resident panels evicted under memory pressure",
    }
}

/// Renders the full exposition from explicit inputs (pure; the golden
/// test pins its output byte-for-byte). `counters` is in
/// [`Counter::ALL`] order; `gauges` are appended last, and same-name
/// gauges must be adjacent.
pub fn render(
    counters: &[u64; Counter::COUNT],
    tel: &ServeTelemetry,
    gauges: &[PromGauge],
) -> String {
    let mut out = String::with_capacity(32 * 1024);
    for (i, c) in Counter::ALL.iter().enumerate() {
        let v = counters[i];
        if matches!(c, Counter::AllocPeakBytes) {
            header(
                &mut out,
                "gemm_ld_alloc_peak_bytes",
                counter_help(*c),
                "gauge",
            );
            let _ = writeln!(out, "gemm_ld_alloc_peak_bytes {v}");
        } else {
            let name = format!("gemm_ld_{}_total", c.name());
            header(&mut out, &name, counter_help(*c), "counter");
            let _ = writeln!(out, "{name} {v}");
        }
    }
    let outcome_series: Vec<(String, &HistogramSnapshot)> = tel
        .total_by_outcome
        .iter()
        .map(|(label, snap)| (format!("outcome=\"{label}\""), snap))
        .collect();
    write_histogram(
        &mut out,
        "gemm_ld_request_seconds",
        "End-to-end request latency by terminal outcome",
        &outcome_series,
    );
    let opcode_series: Vec<(String, &HistogramSnapshot)> = tel
        .service_by_opcode
        .iter()
        .map(|(label, snap)| (format!("opcode=\"{label}\""), snap))
        .collect();
    write_histogram(
        &mut out,
        "gemm_ld_request_service_seconds",
        "Service time by opcode",
        &opcode_series,
    );
    write_histogram(
        &mut out,
        "gemm_ld_request_queue_seconds",
        "Admission-queue wait",
        &[(String::new(), &tel.queue_wait)],
    );
    if !tel.windows.is_empty() {
        header(
            &mut out,
            "gemm_ld_request_window_seconds",
            "Rolling-window success-latency quantiles (bucket upper bounds)",
            "gauge",
        );
        for w in &tel.windows {
            for (q, v) in [("0.5", w.p50_ns), ("0.99", w.p99_ns)] {
                if let Some(ns) = v {
                    let _ = writeln!(
                        out,
                        "gemm_ld_request_window_seconds{{window=\"{}\",quantile=\"{q}\"}} {}",
                        w.window,
                        ns as f64 / 1e9
                    );
                }
            }
        }
        header(
            &mut out,
            "gemm_ld_request_window_count",
            "Requests inside each rolling window by result",
            "gauge",
        );
        for w in &tel.windows {
            for (r, v) in [("ok", w.count), ("err", w.err_count)] {
                let _ = writeln!(
                    out,
                    "gemm_ld_request_window_count{{window=\"{}\",result=\"{r}\"}} {v}",
                    w.window
                );
            }
        }
    }
    let mut prev: Option<&str> = None;
    for g in gauges {
        if prev != Some(g.name.as_str()) {
            header(&mut out, &g.name, g.help, "gauge");
            prev = Some(g.name.as_str());
        }
        sample(&mut out, &g.name, &g.labels, g.value);
    }
    out
}

/// Renders the live registry: current counters, current serve telemetry,
/// plus the caller's gauges (queue depth, residency, …).
pub fn render_global(gauges: &[PromGauge]) -> String {
    let mut counters = [0u64; Counter::COUNT];
    for (i, c) in Counter::ALL.iter().enumerate() {
        counters[i] = crate::get(*c);
    }
    render(&counters, &serve_telemetry(), gauges)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_escaping() {
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn le_bounds_are_seconds_with_inf_tail() {
        assert_eq!(le_bound(0), "0.000000001");
        assert_eq!(le_bound(BUCKETS - 1), "+Inf");
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_capped_by_count() {
        let mut snap = HistogramSnapshot::default();
        snap.buckets[0] = 2;
        snap.buckets[10] = 3;
        snap.count = 5;
        snap.sum_ns = 1_000_000;
        let mut out = String::new();
        write_histogram(&mut out, "m", "h", &[(String::new(), &snap)]);
        assert!(out.contains("m_bucket{le=\"0.000000001\"} 2"));
        assert!(out.contains("m_bucket{le=\"+Inf\"} 5"));
        assert!(out.contains("m_count 5"));
        assert!(out.contains("m_sum 0.001"));
        // cumulative counts never decrease
        let mut last = 0u64;
        for line in out.lines().filter(|l| l.starts_with("m_bucket")) {
            let v: u64 = line
                .rsplit(' ')
                .next()
                .and_then(|t| t.parse().ok())
                .unwrap_or(0);
            assert!(v >= last, "non-monotone bucket line: {line}");
            last = v;
        }
    }

    #[test]
    fn type_lines_appear_once_per_metric() {
        let text = render_global(&[
            PromGauge::new("gemm_ld_queue_depth", "Jobs waiting", 3.0),
            PromGauge {
                name: "gemm_ld_panel_bytes".into(),
                help: "Resident bytes per panel",
                labels: format!("panel=\"{}\"", escape_label_value("a")),
                value: 10.0,
            },
            PromGauge {
                name: "gemm_ld_panel_bytes".into(),
                help: "Resident bytes per panel",
                labels: format!("panel=\"{}\"", escape_label_value("b")),
                value: 20.0,
            },
        ]);
        let mut seen = std::collections::HashSet::new();
        for line in text.lines() {
            if let Some(rest) = line.strip_prefix("# TYPE ") {
                let name = rest.split(' ').next().unwrap_or("");
                assert!(seen.insert(name.to_string()), "duplicate TYPE for {name}");
            }
        }
        assert!(seen.contains("gemm_ld_requests_shed_total"));
        assert!(seen.contains("gemm_ld_request_seconds"));
        assert!(text.contains("gemm_ld_panel_bytes{panel=\"a\"} 10"));
    }
}
