//! CLI error taxonomy → process exit codes.
//!
//! | code | class    | examples                                           |
//! |------|----------|----------------------------------------------------|
//! | 1    | other    | internal failures with no better classification    |
//! | 2    | usage    | unknown command/flag, missing `--input`, bad value |
//! | 3    | parse    | malformed/truncated input file, duplicate samples  |
//! | 4    | resource | I/O failure, allocation failure, limit/budget hit  |
//! | 5    | interrupted | run cancelled (SIGINT / `--timeout`); with `--checkpoint` a resumable snapshot was flushed first |
//!
//! Every failure prints exactly one `error:` line on stderr — no panic
//! backtraces (the corpus step in `scripts/ci.sh` asserts this).

use std::fmt;

/// A classified CLI failure.
#[derive(Debug)]
pub enum CliError {
    /// Exit 2: the invocation itself was wrong.
    Usage(String),
    /// Exit 3: an input file violated its format.
    Parse(String),
    /// Exit 4: the system refused a resource (I/O, memory, limits).
    Resource(String),
    /// Exit 5: the run was cancelled cooperatively (SIGINT, `--timeout`);
    /// when `--checkpoint` was given, a resumable snapshot was flushed
    /// before this was reported.
    Interrupted(String),
    /// Exit 1: anything else.
    Other(String),
}

impl CliError {
    /// The process exit code for this class.
    pub fn exit_code(&self) -> u8 {
        match self {
            CliError::Other(_) => 1,
            CliError::Usage(_) => 2,
            CliError::Parse(_) => 3,
            CliError::Resource(_) => 4,
            CliError::Interrupted(_) => 5,
        }
    }
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(m)
            | CliError::Parse(m)
            | CliError::Resource(m)
            | CliError::Interrupted(m)
            | CliError::Other(m) => write!(f, "{m}"),
        }
    }
}

// Bare strings come from flag validation and similar user-facing checks.
impl From<String> for CliError {
    fn from(m: String) -> Self {
        CliError::Usage(m)
    }
}

impl From<&str> for CliError {
    fn from(m: &str) -> Self {
        CliError::Usage(m.to_string())
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Resource(e.to_string())
    }
}

impl From<ld_io::IoError> for CliError {
    fn from(e: ld_io::IoError) -> Self {
        use ld_io::IoError::*;
        match &e {
            Io(_) | LimitExceeded { .. } => CliError::Resource(e.to_string()),
            Parse { .. } | Truncated { .. } | DuplicateSample { .. } | Structure(_) => {
                CliError::Parse(e.to_string())
            }
        }
    }
}

impl From<ld_core::LdError> for CliError {
    fn from(e: ld_core::LdError) -> Self {
        use ld_core::LdError::*;
        match &e {
            AllocationFailed { .. } | BudgetExceeded { .. } | SizeOverflow { .. } | Worker(_) => {
                CliError::Resource(e.to_string())
            }
            DimensionMismatch { .. } | EmptyInput => CliError::Parse(e.to_string()),
            InvalidConfig { .. } => CliError::Usage(e.to_string()),
            Cancelled { .. } => CliError::Interrupted(e.to_string()),
            Checkpoint { .. } => CliError::Resource(e.to_string()),
            // shard inputs that disagree (fingerprint/header/overlap) or
            // leave gaps are malformed *input files* to the merge: exit 3
            ShardMismatch { .. } | IncompleteShardSet { .. } => CliError::Parse(e.to_string()),
            // a corrupt/truncated/transplanted tile-store chunk or manifest
            // is a malformed input, same class as a truncated .ms file
            TileStore { .. } => CliError::Parse(e.to_string()),
            _ => CliError::Other(e.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exit_codes_per_class() {
        assert_eq!(CliError::Other("x".into()).exit_code(), 1);
        assert_eq!(CliError::Usage("x".into()).exit_code(), 2);
        assert_eq!(CliError::Parse("x".into()).exit_code(), 3);
        assert_eq!(CliError::Resource("x".into()).exit_code(), 4);
    }

    #[test]
    fn io_error_classification() {
        let e: CliError = ld_io::IoError::Truncated {
            format: "ms",
            what: "EOF".into(),
        }
        .into();
        assert_eq!(e.exit_code(), 3);
        let e: CliError = std::io::Error::other("disk on fire").into();
        assert_eq!(e.exit_code(), 4);
    }

    #[test]
    fn ld_error_classification() {
        let e: CliError = ld_core::LdError::EmptyInput.into();
        assert_eq!(e.exit_code(), 3);
        let e: CliError = ld_core::LdError::BudgetExceeded {
            required: 10,
            budget: 5,
        }
        .into();
        assert_eq!(e.exit_code(), 4);
        let e: CliError = ld_core::LdError::InvalidConfig {
            message: "tile size must be positive",
        }
        .into();
        assert_eq!(e.exit_code(), 2);
        let e: CliError = ld_core::LdError::Cancelled {
            reason: "SIGINT".into(),
            completed_slabs: 3,
        }
        .into();
        assert_eq!(e.exit_code(), 5);
        assert!(e.to_string().contains("SIGINT"));
        let e: CliError = ld_core::LdError::Checkpoint {
            message: "bad magic".into(),
        }
        .into();
        assert_eq!(e.exit_code(), 4);
        let e: CliError = ld_core::LdError::ShardMismatch {
            message: "input 1 disagrees with input 0 on statistic".into(),
        }
        .into();
        assert_eq!(e.exit_code(), 3);
        let e: CliError = ld_core::LdError::IncompleteShardSet {
            missing: vec![(2, 4)],
            n_slabs: 8,
        }
        .into();
        assert_eq!(e.exit_code(), 3);
        assert!(e.to_string().contains("missing"), "{e}");
        let e: CliError = ld_core::LdError::TileStore {
            message: "chunk 3: CRC mismatch".into(),
        }
        .into();
        assert_eq!(e.exit_code(), 3);
        assert!(e.to_string().contains("chunk 3"), "{e}");
    }
}
