//! `gemm-ld` — command-line front end for the GEMM-based LD toolkit.
//!
//! ```text
//! gemm-ld info
//! gemm-ld simulate --samples 1000 --snps 500 -o data.ms
//! gemm-ld r2 -i data.ms --min-r2 0.2 -o pairs.tsv
//! gemm-ld import -i data.ms --store tiles/            # chunked on-disk store
//! gemm-ld r2 --store tiles/ -o pairs.tsv              # stream it out-of-core
//! gemm-ld run-sharded -i data.ms -o pairs.tsv --shards 4
//! gemm-ld r2 -i data.ms --shard 2/4 -o shard2.bin   # one shard by hand
//! gemm-ld merge shard*.bin -o pairs.tsv             # stitch + validate
//! gemm-ld omega -i data.ms --window 50 --step 10
//! gemm-ld tanimoto -i fingerprints.txt --top-k 5
//! gemm-ld convert -i data.ms -o data.vcf
//! gemm-ld serve panel=data.ms --addr 127.0.0.1:7711   # LD query daemon
//! ```

//! ## Exit codes
//!
//! `0` success · `1` other failure · `2` usage error · `3` input parse
//! error · `4` resource error (I/O, memory, limits) · `5` interrupted
//! (SIGINT / `--timeout`; with `--checkpoint` a resumable snapshot was
//! flushed first; for `serve`, the drain deadline expired with requests
//! abandoned). Every failure is a single `error:` line on stderr —
//! never a panic backtrace.

use std::process::ExitCode;

mod args;
mod commands;
mod error;
mod interrupt;

use error::CliError;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        eprintln!("{}", commands::USAGE);
        return ExitCode::from(2);
    };
    let parsed = args::Args::parse(rest.iter().cloned());
    let result = match cmd.as_str() {
        "info" => commands::info(&parsed),
        "simulate" => commands::simulate(&parsed),
        "r2" => commands::r2(&parsed),
        "import" => commands::import(&parsed),
        "merge" => commands::merge(&parsed),
        "run-sharded" => commands::run_sharded(&parsed),
        "omega" => commands::omega(&parsed),
        "tanimoto" => commands::tanimoto(&parsed),
        "prune" => commands::prune(&parsed),
        "decay" => commands::decay(&parsed),
        "blocks" => commands::blocks(&parsed),
        "assoc" => commands::assoc(&parsed),
        "convert" => commands::convert(&parsed),
        "serve" => commands::serve(&parsed),
        "monitor" => commands::monitor(&parsed),
        "tune" => commands::tune(&parsed),
        "help" | "--help" | "-h" => {
            println!("{}", commands::USAGE);
            Ok(())
        }
        other => Err(CliError::Usage(format!(
            "unknown command '{other}'\n\n{}",
            commands::USAGE
        ))),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(e.exit_code())
        }
    }
}
