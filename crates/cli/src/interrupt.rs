//! SIGINT → `CancelToken` bridge.
//!
//! The signal handler itself does the only async-signal-safe thing it can:
//! one atomic store. A detached watcher thread converts that flag into a
//! [`CancelToken`] trip (reason `"SIGINT"`) — the token's reason mutex must
//! never be taken inside a signal handler. The engine then drains at the
//! next slab boundary, flushes a final checkpoint when one is configured,
//! and the run surfaces as exit code 5 with a resumable snapshot on disk.

use ld_core::CancelToken;
use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Set by the handler; drained by the watcher thread.
static SIGINT_SEEN: AtomicBool = AtomicBool::new(false);

/// POSIX SIGINT number (avoids a libc dependency for one constant).
const SIGINT: i32 = 2;

extern "C" {
    /// POSIX `signal(2)`; handlers are passed as `sighandler_t` (a plain
    /// address on every platform this workspace targets).
    fn signal(signum: i32, handler: usize) -> usize;
}

extern "C" fn on_sigint(_sig: i32) {
    // Async-signal-safe: a single atomic store, no locks, no allocation.
    SIGINT_SEEN.store(true, Ordering::SeqCst);
}

/// Installs the SIGINT handler and spawns the watcher that trips `token`
/// with reason `"SIGINT"` when the signal arrives. The watcher exits as
/// soon as the token is cancelled *for any reason* — trip it after a
/// successful run (e.g. reason `"run complete"`) to reap the thread.
pub fn install_sigint_watcher(token: &CancelToken) {
    // SAFETY: `on_sigint` is async-signal-safe (one atomic store) and has
    // the exact `extern "C" fn(c_int)` ABI `signal(2)` expects.
    unsafe {
        signal(SIGINT, on_sigint as *const () as usize);
    }
    let t = token.clone();
    std::thread::spawn(move || loop {
        if SIGINT_SEEN.load(Ordering::SeqCst) {
            t.cancel_with_reason("SIGINT");
            return;
        }
        if t.is_cancelled() {
            return; // run finished (or was cancelled elsewhere): reap
        }
        std::thread::sleep(Duration::from_millis(25));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watcher_trips_token_on_flag() {
        let token = CancelToken::new();
        install_sigint_watcher(&token);
        SIGINT_SEEN.store(true, Ordering::SeqCst);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !token.is_cancelled() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(token.is_cancelled());
        assert_eq!(token.reason().as_deref(), Some("SIGINT"));
        SIGINT_SEEN.store(false, Ordering::SeqCst);
    }
}
