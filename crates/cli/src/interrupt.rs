//! SIGINT/SIGTERM → `CancelToken` bridge.
//!
//! The signal handler itself does the only async-signal-safe thing it can:
//! one atomic store. A detached watcher thread converts that flag into a
//! [`CancelToken`] trip (reason `"SIGINT"` / `"SIGTERM"`) — the token's
//! reason mutex must never be taken inside a signal handler. Batch runs
//! then drain at the next slab boundary (exit code 5, resumable snapshot
//! when checkpointed); the `serve` daemon stops accepting and drains
//! in-flight requests under its drain deadline.

use ld_core::CancelToken;
use std::sync::atomic::{AtomicBool, AtomicI32, Ordering};
use std::time::Duration;

/// Set by the handler; drained by the watcher thread.
static SIGINT_SEEN: AtomicBool = AtomicBool::new(false);

/// Last shutdown signal observed (`0` = none) — the daemon watcher
/// reports which of SIGINT/SIGTERM arrived in the cancel reason.
static SHUTDOWN_SIGNAL: AtomicI32 = AtomicI32::new(0);

/// POSIX SIGINT number (avoids a libc dependency for one constant).
pub const SIGINT: i32 = 2;

/// POSIX SIGKILL number — the shard supervisor's fault-injection harness
/// sends it to simulate a hard crash.
pub const SIGKILL: i32 = 9;

/// POSIX SIGTERM number — the polite service-manager shutdown request;
/// the `serve` daemon treats it exactly like SIGINT (drain, then exit).
pub const SIGTERM: i32 = 15;

/// POSIX SIGUSR1 number (Linux x86-64) — the daemon's live trace-dump
/// trigger: snapshot the flight recorder without stopping it.
pub const SIGUSR1: i32 = 10;

/// Deliveries of SIGUSR1 not yet consumed by the dump watcher.
static USR1_PENDING: AtomicI32 = AtomicI32::new(0);

extern "C" {
    /// POSIX `signal(2)`; handlers are passed as `sighandler_t` (a plain
    /// address on every platform this workspace targets).
    fn signal(signum: i32, handler: usize) -> usize;
    /// POSIX `kill(2)` — used by the shard supervisor to propagate SIGINT
    /// to its children and to inject SIGKILL faults.
    fn kill(pid: i32, sig: i32) -> i32;
}

/// Sends `sig` to process `pid`; returns whether the signal was
/// delivered. Used by `run-sharded` to forward its own interruption to
/// every shard child (so the whole tree lands on resumable checkpoints)
/// and by the fault-injection harness to SIGKILL a shard mid-run.
pub fn send_signal(pid: u32, sig: i32) -> bool {
    let Ok(pid) = i32::try_from(pid) else {
        return false;
    };
    // SAFETY: kill(2) is async-signal-safe and validates its arguments;
    // a stale pid at worst signals a process we just reaped (the
    // supervisor only targets children it still holds handles for).
    unsafe { kill(pid, sig) == 0 }
}

extern "C" fn on_sigint(_sig: i32) {
    // Async-signal-safe: a single atomic store, no locks, no allocation.
    SIGINT_SEEN.store(true, Ordering::SeqCst);
}

/// Installs the SIGINT handler and spawns the watcher that trips `token`
/// with reason `"SIGINT"` when the signal arrives. The watcher exits as
/// soon as the token is cancelled *for any reason* — trip it after a
/// successful run (e.g. reason `"run complete"`) to reap the thread.
pub fn install_sigint_watcher(token: &CancelToken) {
    // SAFETY: `on_sigint` is async-signal-safe (one atomic store) and has
    // the exact `extern "C" fn(c_int)` ABI `signal(2)` expects.
    unsafe {
        signal(SIGINT, on_sigint as *const () as usize);
    }
    let t = token.clone();
    std::thread::spawn(move || loop {
        if SIGINT_SEEN.load(Ordering::SeqCst) {
            t.cancel_with_reason("SIGINT");
            return;
        }
        if t.is_cancelled() {
            return; // run finished (or was cancelled elsewhere): reap
        }
        std::thread::sleep(Duration::from_millis(25));
    });
}

extern "C" fn on_shutdown_signal(sig: i32) {
    // Async-signal-safe: a single atomic store, no locks, no allocation.
    SHUTDOWN_SIGNAL.store(sig, Ordering::SeqCst);
}

/// Installs SIGINT *and* SIGTERM handlers and spawns the watcher that
/// trips `token` with the signal's name as the reason. The daemon's
/// graceful-shutdown entry point: either signal stops the accept loop
/// and starts the drain. The watcher exits once the token is cancelled
/// for any reason.
pub fn install_shutdown_watcher(token: &CancelToken) {
    // SAFETY: `on_shutdown_signal` is async-signal-safe (one atomic
    // store) and has the exact `extern "C" fn(c_int)` ABI `signal(2)`
    // expects.
    unsafe {
        signal(SIGINT, on_shutdown_signal as *const () as usize);
        signal(SIGTERM, on_shutdown_signal as *const () as usize);
    }
    let t = token.clone();
    std::thread::spawn(move || loop {
        match SHUTDOWN_SIGNAL.load(Ordering::SeqCst) {
            0 => {}
            SIGTERM => {
                t.cancel_with_reason("SIGTERM");
                return;
            }
            _ => {
                t.cancel_with_reason("SIGINT");
                return;
            }
        }
        if t.is_cancelled() {
            return; // daemon stopped for another reason: reap
        }
        std::thread::sleep(Duration::from_millis(25));
    });
}

extern "C" fn on_sigusr1(_sig: i32) {
    // Async-signal-safe: a single atomic add, no locks, no allocation.
    USR1_PENDING.fetch_add(1, Ordering::SeqCst);
}

/// Installs a *repeatable*, non-terminating SIGUSR1 watcher: every
/// delivery invokes `on_dump` once, on the watcher thread (never in the
/// handler), with a running dump counter. Unlike the shutdown watchers
/// the thread keeps serving after each signal; it exits only when
/// `token` is cancelled. The daemon wires `on_dump` to a live flight-
/// recorder snapshot, so `kill -USR1 <pid>` extracts a Perfetto trace
/// from a running process without restarting it.
pub fn install_usr1_watcher(token: &CancelToken, on_dump: impl Fn(u32) + Send + 'static) {
    // SAFETY: `on_sigusr1` is async-signal-safe (one atomic add) and has
    // the exact `extern "C" fn(c_int)` ABI `signal(2)` expects.
    unsafe {
        signal(SIGUSR1, on_sigusr1 as *const () as usize);
    }
    let t = token.clone();
    std::thread::spawn(move || {
        let mut dumps = 0u32;
        loop {
            while USR1_PENDING
                .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |n| {
                    (n > 0).then(|| n - 1)
                })
                .is_ok()
            {
                dumps += 1;
                on_dump(dumps);
            }
            if t.is_cancelled() {
                return; // daemon stopped: reap
            }
            std::thread::sleep(Duration::from_millis(25));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn watcher_trips_token_on_flag() {
        let token = CancelToken::new();
        install_sigint_watcher(&token);
        SIGINT_SEEN.store(true, Ordering::SeqCst);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !token.is_cancelled() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(token.is_cancelled());
        assert_eq!(token.reason().as_deref(), Some("SIGINT"));
        SIGINT_SEEN.store(false, Ordering::SeqCst);
    }

    #[test]
    fn shutdown_watcher_names_the_signal() {
        let token = CancelToken::new();
        install_shutdown_watcher(&token);
        SHUTDOWN_SIGNAL.store(SIGTERM, Ordering::SeqCst);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !token.is_cancelled() && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(token.is_cancelled());
        assert_eq!(token.reason().as_deref(), Some("SIGTERM"));
        SHUTDOWN_SIGNAL.store(0, Ordering::SeqCst);
    }

    #[test]
    fn usr1_watcher_fires_once_per_delivery_and_keeps_running() {
        let token = CancelToken::new();
        let dumps = std::sync::Arc::new(std::sync::atomic::AtomicU32::new(0));
        let d = dumps.clone();
        install_usr1_watcher(&token, move |n| {
            d.store(n, Ordering::SeqCst);
        });
        // simulate two separate deliveries without raising a real signal
        USR1_PENDING.fetch_add(1, Ordering::SeqCst);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while dumps.load(Ordering::SeqCst) < 1 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(dumps.load(Ordering::SeqCst), 1);
        USR1_PENDING.fetch_add(1, Ordering::SeqCst);
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while dumps.load(Ordering::SeqCst) < 2 && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        assert_eq!(
            dumps.load(Ordering::SeqCst),
            2,
            "watcher must survive a dump"
        );
        token.cancel_with_reason("test done");
    }

    #[test]
    fn send_signal_reaches_processes() {
        // signal 0 performs the permission/existence check without
        // delivering anything: our own pid exists, pid range errors don't
        assert!(send_signal(std::process::id(), 0));
        assert!(!send_signal(u32::MAX, 0));
    }
}
