//! Subcommand implementations.

use crate::args::Args;
use crate::error::CliError;
use ld_bitmat::BitMatrix;
use ld_core::{LdEngine, NanPolicy};
use ld_data::HaplotypeSimulator;
use ld_data::SweepSimulator;
use ld_ext::tanimoto::{tanimoto_cross, top_k_neighbors};
use ld_kernels::KernelKind;
use ld_omega::OmegaScan;
use ld_popcount::CpuFeatures;
use std::io::BufReader;
use std::path::Path;

/// Top-level usage text.
pub const USAGE: &str = "gemm-ld — linkage disequilibrium as dense linear algebra

USAGE:
  gemm-ld <command> [options]

COMMANDS:
  info        show CPU features and available micro-kernels
  simulate    generate haplotype data
              --samples N --snps M [--seed S] [--founders F]
              [--sweep CENTER [--sweep-width W]] -o out.{ms,txt,vcf}
  r2          all-pairs LD
              -i in.{ms,txt,vcf} [--min-r2 X] [--threads T]
              [--kernel auto|scalar|avx2-mula|avx512-vpopcnt]
              [--stat r2|d|dprime] [-o pairs.tsv]
              [--profile[=text|json]] [--profile-out metrics.json]
  omega       selective-sweep scan (omega statistic)
              -i in.{ms,txt,vcf} [--window W] [--step S] [--threads T]
  tanimoto    all-vs-all fingerprint similarity
              -i fingerprints.txt [--top-k K] [--threads T]
  prune       LD pruning (plink --indep-pairwise style)
              -i in [--window W] [--step S] [--threshold X] [-o kept.txt]
  decay       mean r-squared by SNP distance
              -i in [--max-dist D] [--bin W]
  blocks      haplotype blocks (solid spine of LD on D')
              -i in [--threshold X]
  assoc       case/control association scan + LD clumping
              -i in [--causal i,j,...] [--beta X] [--p X] [--clump-r2 X]
              [--clump-window W] [--seed S]
  convert     convert between formats: -i in.{ms,txt,vcf} -o out.{ms,txt,vcf}
  help        this message";

type CmdResult = Result<(), CliError>;

/// Parses a `--kernel` flag value.
fn parse_kernel(args: &Args) -> Result<KernelKind, CliError> {
    match args.get("kernel") {
        None => Ok(KernelKind::Auto),
        Some(name) => name.parse().map_err(CliError::Usage),
    }
}

/// Parses `--profile[=json|text]`: absent → `None`, bare / `=text` → text
/// rendering on stderr, `=json` → the stable-schema JSON document.
fn parse_profile(args: &Args) -> Result<Option<&'static str>, CliError> {
    match args.get("profile") {
        None => Ok(None),
        Some("") | Some("text") => Ok(Some("text")),
        Some("json") => Ok(Some("json")),
        Some(other) => Err(CliError::Usage(format!(
            "unknown profile mode '{other}' (expected --profile, --profile=text or --profile=json)"
        ))),
    }
}

/// Captures the per-layer metrics accumulated since the last
/// [`ld_trace::reset`] and emits them: text to stderr, JSON to stdout or
/// to `--profile-out FILE`. When the binary was built without the
/// `metrics` feature the report still has the stable schema, with
/// `"enabled": false` and all counters zero.
fn emit_profile(
    mode: &str,
    out: Option<&str>,
    wall_ns: u64,
    threads: usize,
) -> Result<(), CliError> {
    let report = ld_trace::MetricsReport::capture()
        .with_wall_ns(wall_ns)
        .with_threads(threads)
        .with_tsc_hz(ld_kernels::clock::tsc_hz());
    if mode == "json" {
        let body = report.to_json();
        match out {
            Some(path) if !path.is_empty() => {
                std::fs::write(path, body + "\n")?;
                eprintln!("wrote profile to {path}");
            }
            _ => println!("{body}"),
        }
    } else {
        eprintln!("{}", report.render_text());
    }
    Ok(())
}

/// Loads a haplotype matrix, dispatching on the file extension.
pub fn load_matrix(path: &str) -> Result<BitMatrix, CliError> {
    let p = Path::new(path);
    let ext = p.extension().and_then(|e| e.to_str()).unwrap_or("");
    let open = || {
        std::fs::File::open(p).map_err(|e| CliError::Resource(format!("cannot open {path}: {e}")))
    };
    match ext {
        "ms" => Ok(ld_io::ms::read_ms_first(BufReader::new(open()?))?.matrix),
        "vcf" => Ok(ld_io::vcf::read_vcf(BufReader::new(open()?))?.matrix),
        "txt" | "mat" | "" => Ok(ld_io::text::read_matrix(BufReader::new(open()?))?),
        other => Err(CliError::Usage(format!(
            "unsupported input extension '.{other}' (expected ms/vcf/txt)"
        ))),
    }
}

/// Saves a haplotype matrix, dispatching on the file extension.
pub fn save_matrix(path: &str, g: &BitMatrix) -> Result<(), CliError> {
    let p = Path::new(path);
    let ext = p.extension().and_then(|e| e.to_str()).unwrap_or("");
    let create = || {
        std::fs::File::create(p)
            .map_err(|e| CliError::Resource(format!("cannot create {path}: {e}")))
    };
    match ext {
        "ms" => {
            let rep = ld_io::ms::MsReplicate {
                positions: (0..g.n_snps())
                    .map(|j| (j as f64 + 0.5) / g.n_snps() as f64)
                    .collect(),
                matrix: g.clone(),
            };
            Ok(ld_io::ms::write_ms(
                std::io::BufWriter::new(create()?),
                std::slice::from_ref(&rep),
            )?)
        }
        "vcf" => {
            let sites = ld_io::vcf::synthetic_sites(g.n_snps(), 1000);
            Ok(ld_io::vcf::write_vcf(
                std::io::BufWriter::new(create()?),
                g,
                &sites,
                1,
            )?)
        }
        "txt" | "mat" | "" => Ok(ld_io::text::write_matrix(
            std::io::BufWriter::new(create()?),
            g,
        )?),
        other => Err(CliError::Usage(format!(
            "unsupported output extension '.{other}'"
        ))),
    }
}

/// `gemm-ld info`
pub fn info(_args: &Args) -> CmdResult {
    let f = CpuFeatures::detect();
    println!("gemm-ld {}", env!("CARGO_PKG_VERSION"));
    println!("cpu features : {}", f.summary());
    println!("hw threads   : {}", ld_parallel::available_threads());
    match ld_kernels::clock::tsc_hz() {
        Some(hz) => println!("tsc          : {:.2} GHz", hz / 1e9),
        None => println!("tsc          : unavailable"),
    }
    println!("micro-kernels:");
    for k in ld_kernels::micro::supported_kernels() {
        println!(
            "  {:<22} MR={} NR={} lanes={}",
            k.kind().to_string(),
            k.mr(),
            k.nr(),
            k.lanes()
        );
    }
    let auto = ld_kernels::Kernel::resolve(KernelKind::Auto).map_err(|e| e.to_string())?;
    println!("auto selects : {}", auto.kind());
    Ok(())
}

/// `gemm-ld simulate`
pub fn simulate(args: &Args) -> CmdResult {
    let samples = args.get_parsed("samples", 1000usize)?;
    let snps = args.get_parsed("snps", 500usize)?;
    let seed = args.get_parsed("seed", 42u64)?;
    let founders = args.get_parsed("founders", 16usize)?;
    let out = args.require("output")?;
    let base = HaplotypeSimulator::new(samples, snps)
        .seed(seed)
        .founders(founders);
    let g = if args.has("sweep") {
        let center = args.get_parsed("sweep", snps / 2)?;
        let width = args.get_parsed("sweep-width", snps / 10)?;
        SweepSimulator::new(base, center, width)
            .seed(seed ^ 0xdead)
            .generate()
    } else {
        base.generate()
    };
    save_matrix(out, &g)?;
    println!(
        "wrote {} samples x {} SNPs (density {:.3}) to {}",
        g.n_samples(),
        g.n_snps(),
        g.density(),
        out
    );
    Ok(())
}

/// `gemm-ld r2`
pub fn r2(args: &Args) -> CmdResult {
    let profile = parse_profile(args)?;
    if profile.is_some() {
        // Fresh counters for this run (parse errors above leave the
        // accumulated state alone).
        ld_trace::reset();
    }
    let input = args.require("input")?;
    let g = load_matrix(input)?;
    let threads = args.get_parsed("threads", ld_parallel::available_threads())?;
    let min_r2 = args.get_parsed("min-r2", 0.0f64)?;
    let stat = match args.get("stat") {
        None | Some("r2") => ld_core::LdStats::RSquared,
        Some("d") => ld_core::LdStats::D,
        Some("dprime") | Some("d'") => ld_core::LdStats::DPrime,
        Some(other) => return Err(CliError::Usage(format!("unknown stat '{other}'"))),
    };
    let engine = LdEngine::new()
        .kernel(parse_kernel(args)?)
        .threads(threads)
        .nan_policy(NanPolicy::Zero);
    let t0 = std::time::Instant::now();
    // Compute-region wall time (excludes the result post-processing below),
    // captured where each branch finishes its LD computation — this is the
    // denominator of the profile's layer-coverage figure. Deliberately
    // uninitialized: both match arms assign it exactly once.
    let compute_wall_ns;
    let pairs = g.n_snps() * (g.n_snps() + 1) / 2;
    match args.get("output") {
        Some(path) if !path.is_empty() => {
            // Stream row slabs straight into the table — the full packed
            // matrix is never materialized, so memory stays at the engine's
            // O(threads × slab × n_snps) scratch bound regardless of n.
            use std::fmt::Write as _;
            use std::io::Write as _;
            let f = std::fs::File::create(path)?;
            let mut w = std::io::BufWriter::new(f);
            writeln!(w, "SNP_A\tSNP_B\tR2")?;
            // slabs arrive in unspecified order under threading: hold
            // out-of-order blocks briefly and flush the in-order prefix
            let mut pending: std::collections::BTreeMap<usize, (usize, String)> =
                std::collections::BTreeMap::new();
            let mut next_row = 0usize;
            let mut io_err: Option<std::io::Error> = None;
            engine.try_stat_rows(&g, stat, |s| {
                let mut block = String::new();
                for (i, row) in s.rows() {
                    for (t, &v) in row.iter().enumerate().skip(1) {
                        if !v.is_nan() && v >= min_r2 {
                            let _ = writeln!(block, "snp{i}\tsnp{}\t{v:.6}", i + t);
                        }
                    }
                }
                pending.insert(s.row_start(), (s.n_rows(), block));
                while let Some((rows, block)) = pending.remove(&next_row) {
                    next_row += rows;
                    if io_err.is_none() {
                        if let Err(e) = w.write_all(block.as_bytes()) {
                            io_err = Some(e);
                        }
                    }
                }
            })?;
            if let Some(e) = io_err {
                return Err(e.into());
            }
            w.flush()?;
            let wall = t0.elapsed();
            compute_wall_ns = wall.as_nanos() as u64;
            let dt = wall.as_secs_f64();
            eprintln!(
                "{} SNPs x {} samples: {} LD values in {:.3}s ({:.1} MLD/s)",
                g.n_snps(),
                g.n_samples(),
                pairs,
                dt,
                pairs as f64 / dt / 1e6
            );
            eprintln!("wrote pair table to {path}");
        }
        _ => {
            let m = engine.try_stat_matrix(&g, stat)?;
            let wall = t0.elapsed();
            compute_wall_ns = wall.as_nanos() as u64;
            let dt = wall.as_secs_f64();
            eprintln!(
                "{} SNPs x {} samples: {} LD values in {:.3}s ({:.1} MLD/s)",
                g.n_snps(),
                g.n_samples(),
                pairs,
                dt,
                pairs as f64 / dt / 1e6
            );
            let mut kept: Vec<(usize, usize, f64)> = m
                .iter_pairs()
                .filter(|&(_, _, v)| !v.is_nan() && v >= min_r2)
                .collect();
            kept.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
            println!("top pairs (threshold {min_r2}):");
            for (i, j, v) in kept.into_iter().take(20) {
                println!("  snp{i:<6} snp{j:<6} {v:.4}");
            }
        }
    }
    if let Some(mode) = profile {
        emit_profile(mode, args.get("profile-out"), compute_wall_ns, threads)?;
    }
    Ok(())
}

/// `gemm-ld omega`
pub fn omega(args: &Args) -> CmdResult {
    let input = args.require("input")?;
    let g = load_matrix(input)?;
    let window = args.get_parsed("window", 50usize)?;
    let step = args.get_parsed("step", (window / 4).max(1))?;
    let threads = args.get_parsed("threads", ld_parallel::available_threads())?;
    let scan = OmegaScan::new(window, step)
        .engine(LdEngine::new().kernel(parse_kernel(args)?).threads(threads));
    let points = scan.scan(&g);
    if points.is_empty() {
        return Err(CliError::Usage(format!(
            "input has {} SNPs, fewer than the window ({window})",
            g.n_snps()
        )));
    }
    println!("window_start\twindow_end\tbest_split\tomega");
    for p in &points {
        println!(
            "{}\t{}\t{}\t{:.4}",
            p.window_start, p.window_end, p.best_split, p.omega
        );
    }
    let best = points.iter().max_by(|a, b| {
        a.omega
            .partial_cmp(&b.omega)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    if let Some(best) = best {
        eprintln!(
            "strongest signal: omega = {:.3} at split SNP {}",
            best.omega, best.best_split
        );
    }
    Ok(())
}

/// `gemm-ld tanimoto`
pub fn tanimoto(args: &Args) -> CmdResult {
    let input = args.require("input")?;
    // fingerprints as a text matrix: rows = bits, columns = compounds
    let fp = load_matrix(input)?;
    let k = args.get_parsed("top-k", 5usize)?;
    let threads = args.get_parsed("threads", ld_parallel::available_threads())?;
    let v = fp.full_view();
    let sim = tanimoto_cross(&v, &v, parse_kernel(args)?, threads);
    let nn = top_k_neighbors(&sim, k + 1); // +1: self is always rank 1
    println!("compound\tneighbors (tanimoto)");
    for (i, row) in nn.iter().enumerate() {
        let line: Vec<String> = row
            .iter()
            .filter(|(j, _)| *j != i)
            .take(k)
            .map(|(j, s)| format!("{j}:{s:.3}"))
            .collect();
        println!("{i}\t{}", line.join(" "));
    }
    Ok(())
}

/// `gemm-ld prune`
pub fn prune(args: &Args) -> CmdResult {
    let input = args.require("input")?;
    let g = load_matrix(input)?;
    let window = args.get_parsed("window", 100usize)?;
    let step = args.get_parsed("step", (window / 2).max(1))?;
    let threshold = args.get_parsed("threshold", 0.5f64)?;
    let engine = LdEngine::new()
        .kernel(parse_kernel(args)?)
        .nan_policy(NanPolicy::Zero);
    let n = g.n_snps();
    let mut keep = vec![true; n];
    let mut start = 0usize;
    while start < n {
        let end = (start + window).min(n);
        let r2 = engine.try_r2_matrix(g.view(start, end))?;
        for i in 0..end - start {
            if !keep[start + i] {
                continue;
            }
            for j in i + 1..end - start {
                if keep[start + j] && r2.get(i, j) > threshold {
                    keep[start + j] = false;
                }
            }
        }
        if end == n {
            break;
        }
        start += step;
    }
    let kept: Vec<usize> = (0..n).filter(|&i| keep[i]).collect();
    eprintln!(
        "kept {}/{} SNPs at r² <= {threshold} (window {window}, step {step})",
        kept.len(),
        n
    );
    match args.get("output") {
        Some(path) if !path.is_empty() => {
            let body: String = kept.iter().map(|i| format!("snp{i}\n")).collect();
            std::fs::write(path, body)?;
            eprintln!("wrote kept-SNP list to {path}");
        }
        _ => {
            for i in &kept {
                println!("snp{i}");
            }
        }
    }
    Ok(())
}

/// `gemm-ld decay`
pub fn decay(args: &Args) -> CmdResult {
    let input = args.require("input")?;
    let g = load_matrix(input)?;
    let max_dist = args.get_parsed(
        "max-dist",
        100usize.min(g.n_snps().saturating_sub(1).max(1)),
    )?;
    let bin = args.get_parsed("bin", (max_dist / 20).max(1))?;
    let engine = LdEngine::new()
        .kernel(parse_kernel(args)?)
        .nan_policy(NanPolicy::Zero);
    let profile = ld_core::DecayProfile::compute(&engine, &g, max_dist, bin);
    println!("distance\tmean_r2\tpairs");
    for b in profile.bins() {
        println!(
            "{}-{}\t{:.4}\t{}",
            b.min_dist, b.max_dist, b.mean_r2, b.count
        );
    }
    match profile.half_distance() {
        Some(d) => eprintln!(
            "r² halves by distance ~{d} SNPs (near level {:.3})",
            profile.near_r2()
        ),
        None => eprintln!("r² does not halve within {max_dist} SNPs"),
    }
    Ok(())
}

/// `gemm-ld blocks`
pub fn blocks(args: &Args) -> CmdResult {
    let input = args.require("input")?;
    let g = load_matrix(input)?;
    let threshold = args.get_parsed("threshold", 0.8f64)?;
    let engine = LdEngine::new()
        .kernel(parse_kernel(args)?)
        .nan_policy(NanPolicy::Zero);
    let found = ld_core::haplotype_blocks(&engine, &g, threshold);
    println!("block\tfirst_snp\tlast_snp\tsize");
    for (k, b) in found.iter().enumerate() {
        println!("{k}\t{}\t{}\t{}", b.start, b.end - 1, b.len());
    }
    let covered: usize = found.iter().map(|b| b.len()).sum();
    eprintln!(
        "{} blocks covering {covered}/{} SNPs (D' >= {threshold})",
        found.len(),
        g.n_snps()
    );
    Ok(())
}

/// `gemm-ld assoc`
pub fn assoc(args: &Args) -> CmdResult {
    let input = args.require("input")?;
    let g = load_matrix(input)?;
    let threads = args.get_parsed("threads", ld_parallel::available_threads())?;
    let seed = args.get_parsed("seed", 17u64)?;
    let beta = args.get_parsed("beta", 1.0f64)?;
    // causal SNPs: explicit list, or the most common SNP as a demo default
    let causal: Vec<usize> = match args.get("causal") {
        Some(list) if !list.is_empty() => list
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<usize>()
                    .map_err(|_| CliError::Usage(format!("invalid causal index '{s}'")))
            })
            .collect::<Result<_, _>>()?,
        _ => {
            let best = (0..g.n_snps())
                .max_by_key(|&j| {
                    let ones = g.ones_in_snp(j);
                    ones.min(g.n_samples() as u64 - ones)
                })
                .ok_or("matrix has no SNPs")?;
            eprintln!("no --causal given; planting effect at the most common SNP ({best})");
            vec![best]
        }
    };
    for &c in &causal {
        if c >= g.n_snps() {
            return Err(CliError::Usage(format!(
                "causal SNP {c} out of range (< {})",
                g.n_snps()
            )));
        }
    }
    let (_labels, mask) =
        ld_assoc::PhenotypeSimulator::new(causal.iter().map(|&c| (c, beta)).collect())
            .seed(seed)
            .simulate(&g);
    let results = ld_assoc::allelic_scan(&g.full_view(), &mask, threads);
    let lambda = ld_assoc::genomic_lambda(&results.iter().map(|r| r.chi2).collect::<Vec<_>>());
    let p_cut = args.get_parsed("p", 0.05 / g.n_snps().max(1) as f64)?;
    let clump_r2 = args.get_parsed("clump-r2", 0.3f64)?;
    let window = args.get_parsed("clump-window", 100usize)?;
    let engine = LdEngine::new().kernel(parse_kernel(args)?).threads(threads);
    let clumps = ld_assoc::clump(&g.full_view(), &results, &engine, p_cut, clump_r2, window);
    eprintln!(
        "scanned {} SNPs; lambda_GC = {lambda:.3}; {} hits at p <= {p_cut:.2e}; {} clumps",
        g.n_snps(),
        results.iter().filter(|r| r.p <= p_cut).count(),
        clumps.len()
    );
    println!("clump\tindex_snp\tp\todds_ratio\tmembers");
    for (k, c) in clumps.iter().enumerate() {
        let or = results[c.index_snp].odds_ratio;
        println!(
            "{k}\tsnp{}\t{:.3e}\t{or:.3}\t{}",
            c.index_snp,
            c.p,
            c.members.len()
        );
    }
    Ok(())
}

/// `gemm-ld convert`
pub fn convert(args: &Args) -> CmdResult {
    let input = args.require("input")?;
    let output = args.require("output")?;
    let g = load_matrix(input)?;
    save_matrix(output, &g)?;
    println!(
        "converted {input} -> {output} ({} samples x {} SNPs)",
        g.n_samples(),
        g.n_snps()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("gemm_ld_cli_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn args(list: &[&str]) -> Args {
        Args::parse(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn info_runs() {
        info(&args(&[])).unwrap();
    }

    #[test]
    fn simulate_r2_omega_pipeline() {
        let d = tmpdir();
        let ms = d.join("toy.ms");
        let mss = ms.to_str().unwrap();
        simulate(&args(&[
            "--samples",
            "120",
            "--snps",
            "80",
            "--sweep",
            "40",
            "-o",
            mss,
        ]))
        .unwrap();
        let table = d.join("pairs.tsv");
        r2(&args(&[
            "-i",
            mss,
            "--min-r2",
            "0.5",
            "-o",
            table.to_str().unwrap(),
        ]))
        .unwrap();
        let rows = ld_io::text::read_r2_table(BufReader::new(std::fs::File::open(&table).unwrap()))
            .unwrap();
        assert!(!rows.is_empty(), "a sweep must produce r2 >= 0.5 pairs");
        omega(&args(&["-i", mss, "--window", "20", "--step", "10"])).unwrap();
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn convert_round_trip() {
        let d = tmpdir();
        let ms = d.join("x.ms");
        let vcf = d.join("x.vcf");
        let txt = d.join("x.txt");
        simulate(&args(&[
            "--samples",
            "30",
            "--snps",
            "10",
            "-o",
            ms.to_str().unwrap(),
        ]))
        .unwrap();
        convert(&args(&[
            "-i",
            ms.to_str().unwrap(),
            "-o",
            vcf.to_str().unwrap(),
        ]))
        .unwrap();
        convert(&args(&[
            "-i",
            vcf.to_str().unwrap(),
            "-o",
            txt.to_str().unwrap(),
        ]))
        .unwrap();
        let a = load_matrix(ms.to_str().unwrap()).unwrap();
        let b = load_matrix(txt.to_str().unwrap()).unwrap();
        assert_eq!(a, b);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn tanimoto_on_text_fingerprints() {
        let d = tmpdir();
        let path = d.join("fp.txt");
        let fp = ld_data::fingerprints::clustered_fingerprints(12, 256, 3, 0.1, 0.02, 5);
        save_matrix(path.to_str().unwrap(), &fp).unwrap();
        tanimoto(&args(&["-i", path.to_str().unwrap(), "--top-k", "3"])).unwrap();
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn prune_decay_blocks_pipeline() {
        let d = tmpdir();
        let ms = d.join("panel.ms");
        let mss = ms.to_str().unwrap();
        simulate(&args(&[
            "--samples",
            "200",
            "--snps",
            "120",
            "--founders",
            "8",
            "-o",
            mss,
        ]))
        .unwrap();
        let kept = d.join("kept.txt");
        prune(&args(&[
            "-i",
            mss,
            "--window",
            "40",
            "--step",
            "20",
            "--threshold",
            "0.5",
            "-o",
            kept.to_str().unwrap(),
        ]))
        .unwrap();
        let body = std::fs::read_to_string(&kept).unwrap();
        let n_kept = body.lines().count();
        assert!(
            n_kept > 0 && n_kept < 120,
            "pruning should remove something: {n_kept}"
        );
        decay(&args(&["-i", mss, "--max-dist", "30", "--bin", "5"])).unwrap();
        blocks(&args(&["-i", mss, "--threshold", "0.9"])).unwrap();
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn assoc_subcommand_runs() {
        let d = tmpdir();
        let ms = d.join("cohort.ms");
        let mss = ms.to_str().unwrap();
        simulate(&args(&["--samples", "600", "--snps", "80", "-o", mss])).unwrap();
        assoc(&args(&["-i", mss, "--beta", "1.5", "--p", "0.001"])).unwrap();
        assoc(&args(&["-i", mss, "--causal", "10,20", "--beta", "1.0"])).unwrap();
        assert!(assoc(&args(&["-i", mss, "--causal", "999"])).is_err());
        assert!(assoc(&args(&["-i", mss, "--causal", "x"])).is_err());
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn errors_are_reported() {
        assert!(r2(&args(&[])).is_err()); // missing input
        assert!(load_matrix("/nonexistent/x.ms").is_err());
        assert!(load_matrix("/nonexistent/x.weird").is_err());
        assert!(parse_kernel(&args(&["--kernel", "bogus"])).is_err());
        let d = tmpdir();
        let p = d.join("small.txt");
        std::fs::write(&p, "0101\n1010\n").unwrap();
        assert!(omega(&args(&["-i", p.to_str().unwrap(), "--window", "50"])).is_err());
        std::fs::remove_dir_all(&d).ok();
    }
}
