//! Subcommand implementations.

use crate::args::Args;
use crate::error::CliError;
use ld_bitmat::BitMatrix;
use ld_core::{
    CancelToken, CheckpointPlan, CheckpointState, Deadline, LdEngine, NanPolicy, RunControl,
};
use ld_data::HaplotypeSimulator;
use ld_data::SweepSimulator;
use ld_ext::tanimoto::{tanimoto_cross, top_k_neighbors};
use ld_io::atomic::{write_atomic, write_atomic_with};
use ld_kernels::{BlockSizes, CpuProfile, KernelKind, TunedParams};
use ld_omega::OmegaScan;
use ld_popcount::{CpuFeatures, CpuFingerprint};
use ld_trace::Counter;
use std::io::BufReader;
use std::path::Path;
use std::time::Duration;

/// Top-level usage text.
pub const USAGE: &str = "gemm-ld — linkage disequilibrium as dense linear algebra

USAGE:
  gemm-ld <command> [options]

COMMANDS:
  info        show CPU features and available micro-kernels
  simulate    generate haplotype data
              --samples N --snps M [--seed S] [--founders F]
              [--sweep CENTER [--sweep-width W]] -o out.{ms,txt,vcf}
  r2          all-pairs LD
              -i in.{ms,txt,vcf} [--min-r2 X] [--threads T]
              [--kernel auto|scalar|avx2-mula|avx512-vpopcnt]
              [--stat r2|d|dprime] [-o pairs.tsv]
              [--profile[=text|json]] [--profile-out metrics.json]
              [--trace-out trace.json] [--trace-report report.json]
              (--trace-out records a span timeline and writes Chrome
              trace-event JSON loadable in Perfetto / chrome://tracing;
              --trace-report writes the timeline analysis — busy/idle,
              imbalance, steal latency, layer shares, roofline — as
              stable-schema JSON and prints it to stderr)
              [--timeout SECS] [--checkpoint FILE [--resume]]
              (SIGINT or an expired --timeout stops at the next slab
              boundary with exit code 5; --checkpoint makes the run
              resumable, --resume picks it back up bit-identically)
              [--shard i/N] (compute only shard i of an N-way row-slab
              plan and write its slabs to -o FILE in the checkpoint
              interchange format; run every i in 1..=N — in parallel,
              on separate machines, or under run-sharded — then stitch
              with merge)
              [--store DIR] (read the genotype matrix out-of-core from a
              chunked tile store written by 'import' instead of -i; the
              matrix is streamed panel-by-panel with a prefetch thread,
              so it never has to fit in memory. Combines with -o,
              --checkpoint/--resume, --shard and
              [--memory-budget-mb N] (cap working memory; the slab
              height shrinks to fit))
  import      chunk a genotype matrix into an out-of-core tile store
              -i in.{ms,txt,vcf} --store DIR [--chunk-snps N]
              (fixed-size CRC-checked chunks + a fingerprinted manifest;
              'r2 --store DIR' streams it, any damage is a typed error
              naming the chunk)
  merge       stitch shard outputs into one pair table
              gemm-ld merge shard1.bin shard2.bin ... -o pairs.tsv
              [--min-r2 X] [-i in (verify the shard fingerprints against
              this input)] [--shards N (name the shards to re-run in the
              gap report)]
              (every input is CRC- and fingerprint-validated; overlapping
              or missing slab spans abort with a gap report instead of a
              truncated panel)
  run-sharded one command = N shard processes + supervised merge
              -i in -o pairs.tsv --shards N [--retries R] [--backoff-ms B]
              [--work-dir DIR] [--threads T] [--min-r2 X] [--timeout SECS]
              [--stat ...] [--kernel ...] [--fault-kill i]
              (spawns one r2 --shard process per shard, classifies every
              exit — success / resumable / crash / corrupt output — and
              re-dispatches failures with capped exponential backoff,
              resuming from each shard's own checkpoint; SIGINT/--timeout
              interrupt the whole tree resumably; the run manifest is
              written to DIR/manifest.json; --fault-kill SIGKILLs one
              shard's first attempt to exercise the recovery path)
  omega       selective-sweep scan (omega statistic)
              -i in.{ms,txt,vcf} [--window W] [--step S] [--threads T]
  tanimoto    all-vs-all fingerprint similarity
              -i fingerprints.txt [--top-k K] [--threads T]
  prune       LD pruning (plink --indep-pairwise style)
              -i in [--window W] [--step S] [--threshold X] [-o kept.txt]
  decay       mean r-squared by SNP distance
              -i in [--max-dist D] [--bin W]
  blocks      haplotype blocks (solid spine of LD on D')
              -i in [--threshold X]
  assoc       case/control association scan + LD clumping
              -i in [--causal i,j,...] [--beta X] [--p X] [--clump-r2 X]
              [--clump-window W] [--seed S]
  convert     convert between formats: -i in.{ms,txt,vcf} -o out.{ms,txt,vcf}
  serve       LD query daemon: answer point/region queries over TCP
              gemm-ld serve [name=]input ... [--addr HOST:PORT]
              [--workers N] [--queue DEPTH] [--max-conns N]
              [--memory-budget-mb MB] [--request-timeout-ms MS]
              [--drain-ms MS] [--preload] [--threads T] [--kernel ...]
              [--profile[=text|json] [--profile-out FILE]]
              (panels are text inputs or 'import' tile stores; resident
              LD matrices are cached LRU under the memory budget —
              admission overload and budget exhaustion shed with typed
              responses instead of stalling or dying. SIGINT/SIGTERM
              stop accepting and drain in-flight work under --drain-ms:
              exit 0 on a clean drain, 5 if the deadline expired. Prints
              'listening on HOST:PORT' at startup; --addr host:0 picks a
              free port)
              [--metrics-addr HOST:PORT] (plain-HTTP GET /metrics
              Prometheus endpoint + GET /health; prints 'metrics on
              HOST:PORT'; port 0 picks a free port)
              [--request-log FILE] (append-only JSON-lines request log,
              one event per lifecycle transition; see
              schemas/request_log.schema.json)
              [--slow-ms MS] (mirror slower requests to stderr)
              [--trace-dump FILE] (arm the flight recorder at boot;
              'kill -USR1 <pid>' — or the dump_trace opcode — snapshots
              a Perfetto-loadable trace from the live daemon without
              restarting it)
  monitor     live terminal dashboard over a running daemon
              gemm-ld monitor HOST:PORT [--interval-ms N] [--once]
              [--raw] (polls the 'metrics' opcode: queue depth,
              in-flight, shed rate, rolling p50/p99 windows, panel
              residency; --raw prints the Prometheus text verbatim)
  tune        autotune kernel + blocking for this CPU and cache the result
              [--quick|--full] [--threads T] [--out profile.json]
              (staged coordinate descent over kernel, kc/mc/nc blocks,
              slab height and scheduler chunk, scored best-of-N by
              words/cycle from the metrics counters; the winning profile
              is written atomically, keyed to this CPU's fingerprint,
              and picked up automatically by later r2/bench runs)
  help        this message

ENVIRONMENT:
  LD_KERNEL          kernel name forced wherever 'auto' would resolve
                     (invalid values warn once and fall back)
  LD_CPU_PROFILE     tuned-profile path (default
                     $XDG_CACHE_HOME/gemm-ld/cpu-profile.json)
  LD_NO_CPU_PROFILE  set to 1 to ignore any cached profile

Tuned-parameter precedence: explicit flags > LD_KERNEL > cached CPU
profile > built-in defaults.";

type CmdResult = Result<(), CliError>;

/// Parses a `--kernel` flag value.
fn parse_kernel(args: &Args) -> Result<KernelKind, CliError> {
    match args.get("kernel") {
        None => Ok(KernelKind::Auto),
        Some(name) => name.parse().map_err(CliError::Usage),
    }
}

/// Builds an [`LdEngine`] honoring the tuning precedence: explicit CLI
/// flags > `LD_KERNEL` env > cached per-CPU profile (`gemm-ld tune`) >
/// built-in defaults.
///
/// The profile supplies kernel, `kc/mc/nc` blocking, slab height and
/// scheduler chunk; `--kernel`, `--slab-rows` and `--chunk-slabs` each
/// override their own parameter without discarding the rest. A present
/// `LD_KERNEL` suppresses only the profile's kernel choice (the env
/// override itself is applied inside `auto` resolution).
fn tuned_engine(args: &Args, threads: usize) -> Result<LdEngine, CliError> {
    let mut engine = LdEngine::new().threads(threads);
    let cli_kernel = args.get("kernel").is_some();
    let env_kernel = std::env::var("LD_KERNEL")
        .map(|v| !v.trim().is_empty())
        .unwrap_or(false);
    if let Some(p) = ld_kernels::profile::load_active() {
        let t = &p.tuned;
        engine = engine
            .blocks(t.blocks)
            .slab_rows(t.slab_rows)
            .chunk_slabs(t.chunk_slabs);
        if !cli_kernel && !env_kernel {
            engine = engine.kernel(t.kernel);
        }
    }
    if cli_kernel {
        engine = engine.kernel(parse_kernel(args)?);
    }
    if args.get("slab-rows").is_some() {
        engine = engine.slab_rows(args.get_parsed("slab-rows", 64usize)?);
    }
    if args.get("chunk-slabs").is_some() {
        engine = engine.chunk_slabs(args.get_parsed("chunk-slabs", 1usize)?);
    }
    Ok(engine)
}

/// Parses `--profile[=json|text]`: absent → `None`, bare / `=text` → text
/// rendering on stderr, `=json` → the stable-schema JSON document.
fn parse_profile(args: &Args) -> Result<Option<&'static str>, CliError> {
    match args.get("profile") {
        None => Ok(None),
        Some("") | Some("text") => Ok(Some("text")),
        Some("json") => Ok(Some("json")),
        Some(other) => Err(CliError::Usage(format!(
            "unknown profile mode '{other}' (expected --profile, --profile=text or --profile=json)"
        ))),
    }
}

/// Fails fast when the directory that will receive `path` is missing or
/// unwritable: probed at argument-parse time with a create-then-remove
/// marker file, so a doomed `-o`/`--checkpoint`/`--trace-out` destination
/// costs an exit-4 error up front instead of hours of compute followed by
/// a failed write.
fn probe_writable(path: &str, flag: &str) -> Result<(), CliError> {
    use std::sync::atomic::{AtomicU64, Ordering};
    static PROBE_SEQ: AtomicU64 = AtomicU64::new(0);
    let parent = match Path::new(path).parent() {
        Some(d) if !d.as_os_str().is_empty() => d.to_path_buf(),
        _ => std::path::PathBuf::from("."),
    };
    let probe = parent.join(format!(
        ".gemm-ld-probe-{}-{}",
        std::process::id(),
        PROBE_SEQ.fetch_add(1, Ordering::Relaxed)
    ));
    match std::fs::OpenOptions::new()
        .write(true)
        .create_new(true)
        .open(&probe)
    {
        Ok(f) => {
            drop(f);
            let _ = std::fs::remove_file(&probe);
            Ok(())
        }
        Err(e) => Err(CliError::Resource(format!(
            "{flag} {path}: directory {} is not writable: {e}",
            parent.display()
        ))),
    }
}

/// Probes every writable destination a command was given, before any
/// input is read or compute starts.
fn probe_output_flags(args: &Args, keys: &[(&str, &str)]) -> Result<(), CliError> {
    for (flag, key) in keys {
        if let Some(p) = args.get(key).filter(|s| !s.is_empty()) {
            probe_writable(p, flag)?;
        }
    }
    Ok(())
}

/// Parses `--shard i/N`: a 1-based shard index over an N-way plan.
fn parse_shard(args: &Args) -> Result<Option<(usize, usize)>, CliError> {
    let Some(v) = args.get("shard").filter(|s| !s.is_empty()) else {
        return Ok(None);
    };
    let bad = || {
        CliError::Usage(format!(
            "invalid value '{v}' for --shard (expected i/N, e.g. --shard 2/4)"
        ))
    };
    let (i, n) = v.split_once('/').ok_or_else(bad)?;
    let i: usize = i.trim().parse().map_err(|_| bad())?;
    let n: usize = n.trim().parse().map_err(|_| bad())?;
    if n == 0 || i == 0 || i > n {
        return Err(CliError::Usage(format!(
            "--shard index out of range: got '{v}', need 1 <= i <= N"
        )));
    }
    Ok(Some((i, n)))
}

/// Parsed interruption/recovery flags of a long-running command.
struct Interruption {
    /// Tripped by SIGINT (via the watcher) or cancelled to reap it.
    token: CancelToken,
    /// `--timeout SECS` as a monotonic deadline.
    deadline: Option<Deadline>,
    /// `--checkpoint FILE` destination.
    checkpoint_path: Option<String>,
    /// Parsed `--resume` state (validated against the input by the engine).
    resume_state: Option<CheckpointState>,
}

impl Interruption {
    /// Parses `--timeout` / `--checkpoint` / `--resume` and, when any
    /// interruption feature is requested, installs the SIGINT handler
    /// (plain runs keep the default SIGINT disposition).
    fn parse(args: &Args) -> Result<Self, CliError> {
        let timeout = match args.get("timeout") {
            None | Some("") => None,
            Some(v) => {
                let secs: f64 = v
                    .parse()
                    .map_err(|_| CliError::Usage(format!("invalid value '{v}' for --timeout")))?;
                if !secs.is_finite() || secs < 0.0 {
                    return Err(CliError::Usage(format!(
                        "--timeout must be a non-negative number of seconds, got '{v}'"
                    )));
                }
                Some(secs)
            }
        };
        let checkpoint_path = args
            .get("checkpoint")
            .filter(|s| !s.is_empty())
            .map(str::to_owned);
        let resume_state = if args.has("resume") {
            let Some(path) = checkpoint_path.as_deref() else {
                return Err(CliError::Usage(
                    "--resume requires --checkpoint FILE".into(),
                ));
            };
            match ld_io::checkpoint::read_checkpoint_path(path) {
                Ok(state) => Some(state),
                // A missing file is the normal first run of a resumable
                // job — only absence may fall through to a fresh start.
                Err(ld_io::IoError::Io(e)) if e.kind() == std::io::ErrorKind::NotFound => {
                    eprintln!("no checkpoint at {path}; starting fresh");
                    None
                }
                // Anything else (unreadable, truncated, CRC/parse
                // failure) is a damaged snapshot: surface it (exit 3/4 by
                // class) instead of silently recomputing from scratch.
                Err(e) => return Err(e.into()),
            }
        } else {
            None
        };
        let token = CancelToken::new();
        if timeout.is_some() || checkpoint_path.is_some() {
            crate::interrupt::install_sigint_watcher(&token);
        }
        Ok(Self {
            token,
            deadline: timeout.map(|s| Deadline::after(Duration::from_secs_f64(s))),
            checkpoint_path,
            resume_state,
        })
    }

    /// True when any interruption feature was requested.
    fn active(&self) -> bool {
        self.deadline.is_some() || self.checkpoint_path.is_some()
    }

    /// Reaps the SIGINT watcher thread after a finished run (tripping the
    /// token after completion changes nothing — the loop already drained).
    fn finish(&self) {
        if self.active() && !self.token.is_cancelled() {
            self.token.cancel_with_reason("run complete");
        }
    }
}

impl Drop for Interruption {
    /// Runs on every exit path (success *and* error returns), so the
    /// watcher thread never outlives the command.
    fn drop(&mut self) {
        self.finish();
    }
}

/// Captures the per-layer metrics accumulated since the last
/// [`ld_trace::reset`] and emits them: text to stderr, JSON to stdout or
/// to `--profile-out FILE`. When the binary was built without the
/// `metrics` feature the report still has the stable schema, with
/// `"enabled": false` and all counters zero.
fn emit_profile(
    mode: &str,
    out: Option<&str>,
    wall_ns: u64,
    threads: usize,
) -> Result<(), CliError> {
    let report = ld_trace::MetricsReport::capture()
        .with_wall_ns(wall_ns)
        .with_threads(threads)
        .with_tsc_hz(ld_kernels::clock::tsc_hz());
    if mode == "json" {
        let body = report.to_json();
        match out {
            Some(path) if !path.is_empty() => {
                write_atomic(path, (body + "\n").as_bytes())?;
                eprintln!("wrote profile to {path}");
            }
            _ => println!("{body}"),
        }
    } else {
        eprintln!("{}", report.render_text());
    }
    Ok(())
}

/// Loads a haplotype matrix, dispatching on the file extension.
pub fn load_matrix(path: &str) -> Result<BitMatrix, CliError> {
    let p = Path::new(path);
    let ext = p.extension().and_then(|e| e.to_str()).unwrap_or("");
    let open = || {
        std::fs::File::open(p).map_err(|e| CliError::Resource(format!("cannot open {path}: {e}")))
    };
    match ext {
        "ms" => Ok(ld_io::ms::read_ms_first(BufReader::new(open()?))?.matrix),
        "vcf" => Ok(ld_io::vcf::read_vcf(BufReader::new(open()?))?.matrix),
        "txt" | "mat" | "" => Ok(ld_io::text::read_matrix(BufReader::new(open()?))?),
        other => Err(CliError::Usage(format!(
            "unsupported input extension '.{other}' (expected ms/vcf/txt)"
        ))),
    }
}

/// Saves a haplotype matrix, dispatching on the file extension. The write
/// is atomic (temp + fsync + rename): an interrupted run never leaves a
/// truncated file under the final name.
pub fn save_matrix(path: &str, g: &BitMatrix) -> Result<(), CliError> {
    let p = Path::new(path);
    let ext = p.extension().and_then(|e| e.to_str()).unwrap_or("");
    // ld-io format errors inside the atomic closure ride on io::Error;
    // they all classify as resource failures here anyway.
    let io_other = |e: ld_io::IoError| std::io::Error::other(e.to_string());
    let result = match ext {
        "ms" => {
            let rep = ld_io::ms::MsReplicate {
                positions: (0..g.n_snps())
                    .map(|j| (j as f64 + 0.5) / g.n_snps() as f64)
                    .collect(),
                matrix: g.clone(),
            };
            write_atomic_with(p, |w| {
                ld_io::ms::write_ms(w, std::slice::from_ref(&rep)).map_err(io_other)
            })
        }
        "vcf" => {
            let sites = ld_io::vcf::synthetic_sites(g.n_snps(), 1000);
            write_atomic_with(p, |w| {
                ld_io::vcf::write_vcf(w, g, &sites, 1).map_err(io_other)
            })
        }
        "txt" | "mat" | "" => {
            write_atomic_with(p, |w| ld_io::text::write_matrix(w, g).map_err(io_other))
        }
        other => {
            return Err(CliError::Usage(format!(
                "unsupported output extension '.{other}'"
            )))
        }
    };
    result.map_err(|e| CliError::Resource(format!("cannot write {path}: {e}")))
}

/// `gemm-ld info`
pub fn info(_args: &Args) -> CmdResult {
    let f = CpuFeatures::detect();
    println!("gemm-ld {}", env!("CARGO_PKG_VERSION"));
    println!("cpu features : {}", f.summary());
    println!("hw threads   : {}", ld_parallel::available_threads());
    match ld_kernels::clock::tsc_hz() {
        Some(hz) => println!("tsc          : {:.2} GHz", hz / 1e9),
        None => println!("tsc          : unavailable"),
    }
    println!("micro-kernels:");
    for k in ld_kernels::micro::supported_kernels() {
        println!(
            "  {:<22} MR={} NR={} lanes={}",
            k.kind().to_string(),
            k.mr(),
            k.nr(),
            k.lanes()
        );
    }
    let auto = ld_kernels::Kernel::resolve(KernelKind::Auto).map_err(|e| e.to_string())?;
    println!("auto selects : {}", auto.kind());
    Ok(())
}

/// `gemm-ld simulate`
pub fn simulate(args: &Args) -> CmdResult {
    let samples = args.get_parsed("samples", 1000usize)?;
    let snps = args.get_parsed("snps", 500usize)?;
    let seed = args.get_parsed("seed", 42u64)?;
    let founders = args.get_parsed("founders", 16usize)?;
    let out = args.require("output")?;
    let base = HaplotypeSimulator::new(samples, snps)
        .seed(seed)
        .founders(founders);
    let g = if args.has("sweep") {
        let center = args.get_parsed("sweep", snps / 2)?;
        let width = args.get_parsed("sweep-width", snps / 10)?;
        SweepSimulator::new(base, center, width)
            .seed(seed ^ 0xdead)
            .generate()
    } else {
        base.generate()
    };
    save_matrix(out, &g)?;
    println!(
        "wrote {} samples x {} SNPs (density {:.3}) to {}",
        g.n_samples(),
        g.n_snps(),
        g.density(),
        out
    );
    Ok(())
}

/// `gemm-ld r2`
pub fn r2(args: &Args) -> CmdResult {
    let profile = parse_profile(args)?;
    let trace_out = args.get("trace-out").filter(|s| !s.is_empty());
    let trace_report = args.get("trace-report").filter(|s| !s.is_empty());
    let tracing = trace_out.is_some() || trace_report.is_some();
    if profile.is_some() || tracing {
        // Fresh counters for this run (parse errors above leave the
        // accumulated state alone).
        ld_trace::reset();
    }
    // Every destination this run will eventually write is probed now —
    // a doomed path is an exit-4 error before any compute.
    probe_output_flags(
        args,
        &[
            ("-o", "output"),
            ("--checkpoint", "checkpoint"),
            ("--trace-out", "trace-out"),
            ("--trace-report", "trace-report"),
            ("--profile-out", "profile-out"),
        ],
    )?;
    let mut intr = Interruption::parse(args)?;
    // `--store DIR`: same statistics, but the matrix is streamed from an
    // on-disk tile store instead of loaded whole. Separate path: every
    // compute call goes through the out-of-core driver.
    if let Some(dir) = args.get("store").filter(|s| !s.is_empty()) {
        if args.get("input").is_some() {
            return Err(CliError::Usage(
                "r2 takes either -i FILE or --store DIR, not both".into(),
            ));
        }
        return r2_store(args, dir, intr, profile, trace_out, trace_report);
    }
    let input = args.require("input")?;
    let g = load_matrix(input)?;
    let threads = args.get_parsed("threads", ld_parallel::available_threads())?;
    if tracing {
        if cfg!(feature = "metrics") {
            ld_trace::recorder::start(ld_trace::recorder::RecorderConfig::for_threads(threads));
        } else {
            eprintln!(
                "warning: built without the `metrics` feature; \
                 --trace-out/--trace-report will record no events"
            );
        }
    }
    let min_r2 = args.get_parsed("min-r2", 0.0f64)?;
    let stat = match args.get("stat") {
        None | Some("r2") => ld_core::LdStats::RSquared,
        Some("d") => ld_core::LdStats::D,
        Some("dprime") | Some("d'") => ld_core::LdStats::DPrime,
        Some(other) => return Err(CliError::Usage(format!("unknown stat '{other}'"))),
    };
    let engine = tuned_engine(args, threads)?.nan_policy(NanPolicy::Zero);
    // Run control: SIGINT token + --timeout deadline + --checkpoint plan.
    // The sink must outlive the plan borrowing it.
    let sink = intr
        .checkpoint_path
        .clone()
        .map(ld_io::checkpoint::AtomicFileSink::new);
    let mut ctl = RunControl::new().with_token(&intr.token);
    if let Some(d) = intr.deadline {
        ctl = ctl.with_deadline(d);
    }
    if let Some(s) = &sink {
        let mut plan = CheckpointPlan::new(s).every_secs(5.0);
        if let Some(state) = intr.resume_state.take() {
            plan = plan.resume_from(state);
        }
        ctl = ctl.with_checkpoint(plan);
    }
    // `--shard i/N`: compute one shard of the N-way slab plan and write
    // it in the checkpoint interchange format — the pair table comes
    // later, from `merge` over all N shard outputs.
    if let Some((idx, n_shards)) = parse_shard(args)? {
        let Some(out) = args.get("output").filter(|s| !s.is_empty()) else {
            return Err(CliError::Usage(
                "--shard requires -o FILE (the shard output path)".into(),
            ));
        };
        let t0 = std::time::Instant::now();
        let plan = engine.shard_plan(g.n_snps(), n_shards)?;
        let range = plan[idx - 1];
        ctl = ctl.with_shard(range);
        let state = match engine.try_stat_shard_with(&g, stat, &ctl) {
            Ok(s) => s,
            Err(e @ ld_core::LdError::Cancelled { .. }) => {
                if let Some(p) = &intr.checkpoint_path {
                    return Err(CliError::Interrupted(format!(
                        "{e}; resumable checkpoint saved to {p} (rerun with --resume)"
                    )));
                }
                return Err(e.into());
            }
            Err(e) => return Err(e.into()),
        };
        let wall_ns = t0.elapsed().as_nanos() as u64;
        write_atomic(out, &state.to_bytes())
            .map_err(|e| CliError::Resource(format!("cannot write {out}: {e}")))?;
        if let Some(p) = &intr.checkpoint_path {
            // the shard completed: its snapshot is now redundant
            if std::fs::remove_file(p).is_ok() {
                eprintln!("shard complete; removed checkpoint {p}");
            }
        }
        let (r0, r1) = range.rows(state.slab as usize, g.n_snps());
        eprintln!(
            "shard {idx}/{n_shards}: slabs {range} (rows {r0}..{r1}) of {} SNPs -> {out}",
            g.n_snps()
        );
        if tracing {
            emit_trace(
                trace_out,
                trace_report,
                wall_ns,
                threads,
                engine.kernel_kind(),
            )?;
        }
        if let Some(mode) = profile {
            emit_profile(mode, args.get("profile-out"), wall_ns, threads)?;
        }
        return Ok(());
    }
    let t0 = std::time::Instant::now();
    // Compute-region wall time (excludes the result post-processing below),
    // captured where each branch finishes its LD computation — this is the
    // denominator of the profile's layer-coverage figure. Deliberately
    // uninitialized: both match arms assign it exactly once.
    let compute_wall_ns;
    let pairs = g.n_snps() * (g.n_snps() + 1) / 2;
    let print_summary = |wall: std::time::Duration| {
        let dt = wall.as_secs_f64();
        eprintln!(
            "{} SNPs x {} samples: {} LD values in {:.3}s ({:.1} MLD/s)",
            g.n_snps(),
            g.n_samples(),
            pairs,
            dt,
            pairs as f64 / dt / 1e6
        );
    };
    match args.get("output") {
        // Streaming path — only without --checkpoint: the streaming driver
        // hands each slab to the writer and retains nothing, so there is no
        // engine-side state to persist (the packed path below has).
        Some(path) if !path.is_empty() && sink.is_none() => {
            // Stream row slabs straight into the table — the full packed
            // matrix is never materialized, so memory stays at the engine's
            // O(threads × slab × n_snps) scratch bound regardless of n.
            // The table itself is written atomically: it appears under
            // `path` only complete — a cancelled run leaves no torn file.
            use std::fmt::Write as _;
            use std::io::Write as _;
            let mut ld_err: Option<ld_core::LdError> = None;
            let res = write_atomic_with(path, |w| {
                writeln!(w, "SNP_A\tSNP_B\tR2")?;
                // slabs arrive in unspecified order under threading: hold
                // out-of-order blocks briefly and flush the in-order prefix
                let mut pending: std::collections::BTreeMap<usize, (usize, String)> =
                    std::collections::BTreeMap::new();
                let mut next_row = 0usize;
                let mut io_err: Option<std::io::Error> = None;
                let mut fmt_err = false;
                let run = engine.try_stat_rows_with(
                    &g,
                    stat,
                    |s| {
                        let mut block = String::new();
                        for (i, row) in s.rows() {
                            for (t, &v) in row.iter().enumerate().skip(1) {
                                if !v.is_nan() && v >= min_r2 {
                                    // String formatting cannot fail short of
                                    // OOM, but swallowing the Result would
                                    // silently drop rows — record it.
                                    if writeln!(block, "snp{i}\tsnp{}\t{v:.6}", i + t).is_err() {
                                        fmt_err = true;
                                    }
                                }
                            }
                        }
                        pending.insert(s.row_start(), (s.n_rows(), block));
                        while let Some((rows, block)) = pending.remove(&next_row) {
                            next_row += rows;
                            if io_err.is_none() {
                                if let Err(e) = w.write_all(block.as_bytes()) {
                                    io_err = Some(e);
                                }
                            }
                        }
                    },
                    &ctl,
                );
                if let Err(e) = run {
                    ld_err = Some(e);
                    return Err(std::io::Error::other("LD computation failed"));
                }
                if let Some(e) = io_err {
                    return Err(e);
                }
                if fmt_err {
                    return Err(std::io::Error::other(
                        "formatting a pair-table block failed",
                    ));
                }
                Ok(())
            });
            if let Some(e) = ld_err {
                return Err(e.into());
            }
            res.map_err(|e| CliError::Resource(format!("cannot write {path}: {e}")))?;
            let wall = t0.elapsed();
            compute_wall_ns = wall.as_nanos() as u64;
            print_summary(wall);
            eprintln!("wrote pair table to {path}");
        }
        output => {
            // Packed-matrix path: the default, and mandatory under
            // --checkpoint (completed slabs live in the packed triangle the
            // engine snapshots).
            let m = match engine.try_stat_matrix_with(&g, stat, &ctl) {
                Ok(m) => m,
                Err(e @ ld_core::LdError::Cancelled { .. }) => {
                    if let Some(p) = &intr.checkpoint_path {
                        return Err(CliError::Interrupted(format!(
                            "{e}; resumable checkpoint saved to {p} (rerun with --resume)"
                        )));
                    }
                    return Err(e.into());
                }
                Err(e) => return Err(e.into()),
            };
            let wall = t0.elapsed();
            compute_wall_ns = wall.as_nanos() as u64;
            print_summary(wall);
            if let Some(p) = &intr.checkpoint_path {
                // the run completed: its snapshot is now redundant
                if std::fs::remove_file(p).is_ok() {
                    eprintln!("run complete; removed checkpoint {p}");
                }
            }
            match output {
                Some(path) if !path.is_empty() => {
                    write_pair_table(path, &m, min_r2)?;
                    eprintln!("wrote pair table to {path}");
                }
                _ => {
                    let mut kept: Vec<(usize, usize, f64)> = m
                        .iter_pairs()
                        .filter(|&(_, _, v)| !v.is_nan() && v >= min_r2)
                        .collect();
                    kept.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
                    println!("top pairs (threshold {min_r2}):");
                    for (i, j, v) in kept.into_iter().take(20) {
                        println!("  snp{i:<6} snp{j:<6} {v:.4}");
                    }
                }
            }
        }
    }
    if tracing {
        emit_trace(
            trace_out,
            trace_report,
            compute_wall_ns,
            threads,
            engine.kernel_kind(),
        )?;
    }
    if let Some(mode) = profile {
        emit_profile(mode, args.get("profile-out"), compute_wall_ns, threads)?;
    }
    Ok(())
}

/// `gemm-ld r2 --store DIR` — the out-of-core arm of `r2`.
///
/// Identical statistics and identical output bytes, but the genotype
/// matrix is streamed from a chunked on-disk tile store panel-by-panel
/// (prefetch thread double-buffering reads against compute) instead of
/// being loaded whole, so the input never has to fit in memory;
/// `--memory-budget-mb` additionally shrinks the slab height to fit.
/// Supports the same `--shard`, `--checkpoint`/`--resume`, `-o`
/// streaming and trace/profile plumbing as the in-memory arm.
fn r2_store(
    args: &Args,
    dir: &str,
    mut intr: Interruption,
    profile: Option<&'static str>,
    trace_out: Option<&str>,
    trace_report: Option<&str>,
) -> CmdResult {
    let tracing = trace_out.is_some() || trace_report.is_some();
    let store = ld_io::tilestore::DirTileStore::open(dir)?;
    let meta = ld_core::TileSource::meta(&store).clone();
    let (n, n_samples) = (meta.n_snps, meta.n_samples);
    let threads = args.get_parsed("threads", ld_parallel::available_threads())?;
    if tracing {
        if cfg!(feature = "metrics") {
            ld_trace::recorder::start(ld_trace::recorder::RecorderConfig::for_threads(threads));
        } else {
            eprintln!(
                "warning: built without the `metrics` feature; \
                 --trace-out/--trace-report will record no events"
            );
        }
    }
    let min_r2 = args.get_parsed("min-r2", 0.0f64)?;
    let stat = match args.get("stat") {
        None | Some("r2") => ld_core::LdStats::RSquared,
        Some("d") => ld_core::LdStats::D,
        Some("dprime") | Some("d'") => ld_core::LdStats::DPrime,
        Some(other) => return Err(CliError::Usage(format!("unknown stat '{other}'"))),
    };
    let mut engine = tuned_engine(args, threads)?.nan_policy(NanPolicy::Zero);
    if let Some(v) = args.get("memory-budget-mb").filter(|s| !s.is_empty()) {
        let mib: usize = v
            .parse()
            .map_err(|_| CliError::Usage(format!("invalid value '{v}' for --memory-budget-mb")))?;
        engine = engine.memory_budget(ld_core::MemoryBudget::mib(mib));
    }
    let sink = intr
        .checkpoint_path
        .clone()
        .map(ld_io::checkpoint::AtomicFileSink::new);
    let mut ctl = RunControl::new().with_token(&intr.token);
    if let Some(d) = intr.deadline {
        ctl = ctl.with_deadline(d);
    }
    if let Some(s) = &sink {
        let mut plan = CheckpointPlan::new(s).every_secs(5.0);
        if let Some(state) = intr.resume_state.take() {
            plan = plan.resume_from(state);
        }
        ctl = ctl.with_checkpoint(plan);
    }
    eprintln!(
        "streaming {n} SNPs x {n_samples} samples from {dir} ({} chunks of {} SNPs)",
        meta.n_chunks(),
        meta.chunk_snps
    );
    // `--shard i/N`: one shard of the slab plan, in interchange format.
    if let Some((idx, n_shards)) = parse_shard(args)? {
        let Some(out) = args.get("output").filter(|s| !s.is_empty()) else {
            return Err(CliError::Usage(
                "--shard requires -o FILE (the shard output path)".into(),
            ));
        };
        let t0 = std::time::Instant::now();
        let plan = engine.shard_plan(n, n_shards)?;
        let range = plan[idx - 1];
        ctl = ctl.with_shard(range);
        let state = match engine.try_stat_shard_outofcore_with(&store, stat, &ctl) {
            Ok(s) => s,
            Err(e @ ld_core::LdError::Cancelled { .. }) => {
                if let Some(p) = &intr.checkpoint_path {
                    return Err(CliError::Interrupted(format!(
                        "{e}; resumable checkpoint saved to {p} (rerun with --resume)"
                    )));
                }
                return Err(e.into());
            }
            Err(e) => return Err(e.into()),
        };
        let wall_ns = t0.elapsed().as_nanos() as u64;
        write_atomic(out, &state.to_bytes())
            .map_err(|e| CliError::Resource(format!("cannot write {out}: {e}")))?;
        if let Some(p) = &intr.checkpoint_path {
            if std::fs::remove_file(p).is_ok() {
                eprintln!("shard complete; removed checkpoint {p}");
            }
        }
        let (r0, r1) = range.rows(state.slab as usize, n);
        eprintln!("shard {idx}/{n_shards}: slabs {range} (rows {r0}..{r1}) of {n} SNPs -> {out}");
        if tracing {
            emit_trace(
                trace_out,
                trace_report,
                wall_ns,
                threads,
                engine.kernel_kind(),
            )?;
        }
        if let Some(mode) = profile {
            emit_profile(mode, args.get("profile-out"), wall_ns, threads)?;
        }
        return Ok(());
    }
    let t0 = std::time::Instant::now();
    let compute_wall_ns;
    let pairs = n * (n + 1) / 2;
    let print_summary = |wall: std::time::Duration| {
        let dt = wall.as_secs_f64();
        eprintln!(
            "{n} SNPs x {n_samples} samples: {pairs} LD values in {dt:.3}s ({:.1} MLD/s)",
            pairs as f64 / dt / 1e6
        );
    };
    match args.get("output") {
        // Streaming path (no --checkpoint): slab rows go straight into
        // the table — neither the matrix nor the packed triangle is ever
        // materialized. Bytes are identical to `r2 -i … -o`.
        Some(path) if !path.is_empty() && sink.is_none() => {
            use std::fmt::Write as _;
            use std::io::Write as _;
            let mut ld_err: Option<ld_core::LdError> = None;
            let res = write_atomic_with(path, |w| {
                writeln!(w, "SNP_A\tSNP_B\tR2")?;
                let mut io_err: Option<std::io::Error> = None;
                let mut fmt_err = false;
                let run = engine.try_stat_rows_outofcore_with(
                    &store,
                    stat,
                    |s| {
                        // the out-of-core driver emits slabs strictly in
                        // row order — no reorder buffer needed
                        let mut block = String::new();
                        for (i, row) in s.rows() {
                            for (t, &v) in row.iter().enumerate().skip(1) {
                                if !v.is_nan()
                                    && v >= min_r2
                                    && writeln!(block, "snp{i}\tsnp{}\t{v:.6}", i + t).is_err()
                                {
                                    fmt_err = true;
                                }
                            }
                        }
                        if io_err.is_none() {
                            if let Err(e) = w.write_all(block.as_bytes()) {
                                io_err = Some(e);
                            }
                        }
                    },
                    &ctl,
                );
                if let Err(e) = run {
                    ld_err = Some(e);
                    return Err(std::io::Error::other("LD computation failed"));
                }
                if let Some(e) = io_err {
                    return Err(e);
                }
                if fmt_err {
                    return Err(std::io::Error::other(
                        "formatting a pair-table block failed",
                    ));
                }
                Ok(())
            });
            if let Some(e) = ld_err {
                return Err(e.into());
            }
            res.map_err(|e| CliError::Resource(format!("cannot write {path}: {e}")))?;
            let wall = t0.elapsed();
            compute_wall_ns = wall.as_nanos() as u64;
            print_summary(wall);
            eprintln!("wrote pair table to {path}");
        }
        output => {
            // Packed path: default, and mandatory under --checkpoint.
            let m = match engine.try_stat_matrix_outofcore_with(&store, stat, &ctl) {
                Ok(m) => m,
                Err(e @ ld_core::LdError::Cancelled { .. }) => {
                    if let Some(p) = &intr.checkpoint_path {
                        return Err(CliError::Interrupted(format!(
                            "{e}; resumable checkpoint saved to {p} (rerun with --resume)"
                        )));
                    }
                    return Err(e.into());
                }
                Err(e) => return Err(e.into()),
            };
            let wall = t0.elapsed();
            compute_wall_ns = wall.as_nanos() as u64;
            print_summary(wall);
            if let Some(p) = &intr.checkpoint_path {
                if std::fs::remove_file(p).is_ok() {
                    eprintln!("run complete; removed checkpoint {p}");
                }
            }
            match output {
                Some(path) if !path.is_empty() => {
                    write_pair_table(path, &m, min_r2)?;
                    eprintln!("wrote pair table to {path}");
                }
                _ => {
                    let mut kept: Vec<(usize, usize, f64)> = m
                        .iter_pairs()
                        .filter(|&(_, _, v)| !v.is_nan() && v >= min_r2)
                        .collect();
                    kept.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
                    println!("top pairs (threshold {min_r2}):");
                    for (i, j, v) in kept.into_iter().take(20) {
                        println!("  snp{i:<6} snp{j:<6} {v:.4}");
                    }
                }
            }
        }
    }
    if tracing {
        emit_trace(
            trace_out,
            trace_report,
            compute_wall_ns,
            threads,
            engine.kernel_kind(),
        )?;
    }
    if let Some(mode) = profile {
        emit_profile(mode, args.get("profile-out"), compute_wall_ns, threads)?;
    }
    Ok(())
}

/// `gemm-ld import` — chunk a genotype matrix into an out-of-core tile
/// store: fixed-size CRC-32-trailed chunk files plus a fingerprinted,
/// CRC-guarded manifest, all written atomically. `r2 --store DIR`
/// streams the result without ever loading the whole matrix.
pub fn import(args: &Args) -> CmdResult {
    let input = args.require("input")?;
    let Some(dir) = args.get("store").filter(|s| !s.is_empty()) else {
        return Err(CliError::Usage(
            "import requires --store DIR (the tile-store directory to create)".into(),
        ));
    };
    let chunk_snps = args.get_parsed("chunk-snps", ld_core::tilestore::DEFAULT_CHUNK_SNPS)?;
    let g = load_matrix(input)?;
    let meta = ld_io::tilestore::import_to_dir(&g, chunk_snps, dir)?;
    println!(
        "imported {} samples x {} SNPs into {} ({} chunks of <= {} SNPs, fingerprint {:#018x})",
        meta.n_samples,
        meta.n_snps,
        dir,
        meta.n_chunks(),
        meta.chunk_snps,
        meta.fingerprint
    );
    Ok(())
}

/// Stops the flight recorder and emits its artifacts: Chrome trace-event
/// JSON (Perfetto-loadable) to `--trace-out`, and the span-timeline
/// analysis to stderr plus, under `--trace-report FILE`, as stable-schema
/// JSON. Both files are written atomically; unwritable paths surface as
/// resource errors (exit code 4), never a panic or a torn file.
fn emit_trace(
    trace_out: Option<&str>,
    trace_report: Option<&str>,
    wall_ns: u64,
    threads: usize,
    kind: KernelKind,
) -> Result<(), CliError> {
    let snap = ld_trace::recorder::stop().unwrap_or_default();
    if let Some(path) = trace_out {
        let body = ld_trace::export::chrome_trace_json(&snap);
        write_atomic(path, (body + "\n").as_bytes())
            .map_err(|e| CliError::Resource(format!("cannot write {path}: {e}")))?;
        eprintln!("wrote trace timeline to {path} (open in ui.perfetto.dev)");
    }
    let report = ld_trace::MetricsReport::capture()
        .with_wall_ns(wall_ns)
        .with_threads(threads)
        .with_tsc_hz(ld_kernels::clock::tsc_hz());
    // Analytical peak of the kernel this run resolved to (§IV/§V model:
    // `lanes` 64-bit word-pairs per cycle at 3 fused ops/cycle).
    let peak = ld_kernels::Kernel::resolve(kind)
        .ok()
        .map(|k| k.lanes() as f64);
    let analysis = ld_trace::analyze::analyze(&snap, &report, peak);
    eprintln!("{}", analysis.render_text());
    if let Some(path) = trace_report {
        write_atomic(path, (analysis.to_json() + "\n").as_bytes())
            .map_err(|e| CliError::Resource(format!("cannot write {path}: {e}")))?;
        eprintln!("wrote trace report to {path}");
    }
    Ok(())
}

/// Writes the standard pair table — the exact bytes `r2 -o` produces —
/// atomically to `path`. `merge` and `run-sharded` route through this so
/// a stitched panel is byte-identical to a single-process run.
fn write_pair_table(path: &str, m: &ld_core::LdMatrix, min_r2: f64) -> Result<(), CliError> {
    use std::io::Write as _;
    write_atomic_with(path, |w| {
        writeln!(w, "SNP_A\tSNP_B\tR2")?;
        for (i, j, v) in m.iter_pairs() {
            if !v.is_nan() && v >= min_r2 {
                writeln!(w, "snp{i}\tsnp{j}\t{v:.6}")?;
            }
        }
        Ok(())
    })
    .map_err(|e| CliError::Resource(format!("cannot write {path}: {e}")))
}

/// `gemm-ld merge` — stitches shard outputs (from `r2 --shard i/N`) into
/// one pair table.
///
/// Every input is fully validated before a single output byte is
/// written: CRC framing on read, then cross-input agreement on matrix
/// fingerprint, statistic, NaN policy, slab geometry and kernel,
/// per-record span geometry, overlap rejection, and completeness of the
/// slab grid. Partial input aborts with a gap report naming the missing
/// slab spans (and, given `--shards N`, which shard to re-run) — never a
/// silently truncated panel.
pub fn merge(args: &Args) -> CmdResult {
    let inputs = args.positional();
    if inputs.is_empty() {
        return Err(CliError::Usage(
            "merge needs shard files: gemm-ld merge shard1.bin shard2.bin ... -o pairs.tsv".into(),
        ));
    }
    probe_output_flags(args, &[("-o", "output")])?;
    let min_r2 = args.get_parsed("min-r2", 0.0f64)?;
    let mut states = Vec::with_capacity(inputs.len());
    for path in inputs {
        let state = ld_io::checkpoint::read_checkpoint_path(path).map_err(|e| match e {
            ld_io::IoError::Io(io) if io.kind() == std::io::ErrorKind::NotFound => CliError::Parse(
                format!("shard input {path} is missing (re-run that shard, then merge again)"),
            ),
            other => other.into(),
        })?;
        states.push(state);
    }
    let grid = states.first().map(|s| (s.n_snps as usize, s.slab as usize));
    let merged = match ld_core::merge_shard_states(states) {
        Ok(m) => m,
        Err(e @ ld_core::LdError::IncompleteShardSet { .. }) => {
            // attribute the gaps to shard indices when the caller told us
            // the plan width
            if let (ld_core::LdError::IncompleteShardSet { missing, .. }, Some((n_snps, slab))) =
                (&e, grid)
            {
                let n_shards = args.get_parsed("shards", 0usize)?;
                if n_shards > 0 {
                    if let Ok(plan) = ld_core::plan_shards(n_snps, slab, n_shards) {
                        for (k, r) in plan.iter().enumerate() {
                            let hit = missing
                                .iter()
                                .any(|&(a, b)| (a as usize) < r.end && r.start < b as usize);
                            if hit {
                                eprintln!(
                                    "gap report: re-run shard {}/{} (slabs {}), then merge again",
                                    k + 1,
                                    n_shards,
                                    r
                                );
                            }
                        }
                    }
                }
            }
            return Err(e.into());
        }
        Err(e) => return Err(e.into()),
    };
    // optional end-to-end check against the actual input matrix
    if let Some(input) = args.get("input").filter(|s| !s.is_empty()) {
        let g = load_matrix(input)?;
        let actual = ld_core::matrix_fingerprint(&g.full_view());
        if actual != merged.matrix_hash {
            return Err(CliError::Parse(format!(
                "shard outputs do not match {input}: matrix fingerprint {:#018x} vs {actual:#018x} \
                 (the shards were computed from a different input)",
                merged.matrix_hash
            )));
        }
        eprintln!("verified shard fingerprints against {input}");
    }
    let m = ld_core::state_to_matrix(&merged)?;
    eprintln!(
        "merged {} shard file(s): {} slabs (slab height {}) covering {} SNPs",
        inputs.len(),
        merged.n_slabs,
        merged.slab,
        merged.n_snps
    );
    match args.get("output") {
        Some(path) if !path.is_empty() => {
            write_pair_table(path, &m, min_r2)?;
            eprintln!("wrote pair table to {path}");
        }
        _ => {
            let mut kept: Vec<(usize, usize, f64)> = m
                .iter_pairs()
                .filter(|&(_, _, v)| !v.is_nan() && v >= min_r2)
                .collect();
            kept.sort_by(|a, b| b.2.partial_cmp(&a.2).unwrap_or(std::cmp::Ordering::Equal));
            println!("top pairs (threshold {min_r2}):");
            for (i, j, v) in kept.into_iter().take(20) {
                println!("  snp{i:<6} snp{j:<6} {v:.4}");
            }
        }
    }
    Ok(())
}

/// Exit classification of a shard child process, driving the
/// supervisor's retry policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum ShardExit {
    /// Exit 0 and the shard output parses against the run's input.
    Success,
    /// Exit 0 but the output is unreadable/corrupt or from another input.
    CorruptOutput,
    /// Exit 5: interrupted, with a resumable checkpoint on disk.
    Resumable,
    /// Exit 3: the child rejected its own state (corrupt checkpoint).
    CorruptState,
    /// Killed by a signal, or any other exit code.
    Crash,
}

impl ShardExit {
    fn name(self) -> &'static str {
        match self {
            ShardExit::Success => "success",
            ShardExit::CorruptOutput => "corrupt-output",
            ShardExit::Resumable => "resumable",
            ShardExit::CorruptState => "corrupt-state",
            ShardExit::Crash => "crash",
        }
    }
}

/// Maps a child's exit code (None = killed by signal) and output
/// validation result to its classification.
fn classify_shard_exit(code: Option<i32>, output_ok: bool) -> ShardExit {
    match code {
        Some(0) if output_ok => ShardExit::Success,
        Some(0) => ShardExit::CorruptOutput,
        Some(5) => ShardExit::Resumable,
        Some(3) => ShardExit::CorruptState,
        _ => ShardExit::Crash,
    }
}

/// Delay before re-dispatching shard `shard_idx` after `failed_attempts`
/// failures: the shared [`ld_parallel::Backoff`] capped exponential
/// (`base × 2^(failures−1)`, capped at 10 s) with deterministic equal
/// jitter seeded by the shard index, so shards felled by one shared fault
/// don't re-stampede the machine in lock-step.
fn retry_backoff(base_ms: u64, failed_attempts: usize, shard_idx: u64) -> Duration {
    ld_parallel::Backoff::new(
        Duration::from_millis(base_ms),
        Duration::from_millis(10_000),
    )
    .with_seed(shard_idx)
    .delay(failed_attempts)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// One shard tracked by the `run-sharded` supervisor.
struct ShardSlot {
    /// 1-based shard index (`--shard idx/N`).
    idx: usize,
    /// Shard output path (checkpoint interchange format).
    out: String,
    /// The shard's own `--checkpoint` path (resume state).
    ckpt: String,
    /// Per-shard stderr log.
    log: String,
    /// Attempts launched so far.
    attempts: usize,
    /// pending | running | done | resumable | failed.
    state: &'static str,
    /// Exit classification of every finished attempt, in order.
    classifications: Vec<&'static str>,
    child: Option<std::process::Child>,
    spawned_at: Option<std::time::Instant>,
    /// Backoff gate: no respawn before this instant.
    not_before: std::time::Instant,
}

/// Serializes the supervisor's run manifest
/// (`schemas/shard_manifest.schema.json`) and writes it atomically.
#[allow(clippy::too_many_arguments)]
fn write_manifest(
    path: &str,
    input: &str,
    output: &str,
    retries: usize,
    backoff_ms: u64,
    interrupted: bool,
    shards: &[ShardSlot],
) -> Result<(), CliError> {
    use std::fmt::Write as _;
    let mut s = String::with_capacity(512);
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema_version\": 1,");
    let _ = writeln!(s, "  \"input\": \"{}\",", json_escape(input));
    let _ = writeln!(s, "  \"output\": \"{}\",", json_escape(output));
    let _ = writeln!(s, "  \"shards\": {},", shards.len());
    let _ = writeln!(s, "  \"retries\": {retries},");
    let _ = writeln!(s, "  \"backoff_ms\": {backoff_ms},");
    let _ = writeln!(s, "  \"interrupted\": {interrupted},");
    s.push_str("  \"shard_states\": [\n");
    for (i, sh) in shards.iter().enumerate() {
        let classes: Vec<String> = sh
            .classifications
            .iter()
            .map(|c| format!("\"{c}\""))
            .collect();
        let _ = write!(
            s,
            "    {{\"shard\": {}, \"state\": \"{}\", \"attempts\": {}, \"classifications\": [{}]}}",
            sh.idx,
            sh.state,
            sh.attempts,
            classes.join(", ")
        );
        s.push_str(if i + 1 == shards.len() { "\n" } else { ",\n" });
    }
    s.push_str("  ]\n}\n");
    write_atomic(path, s.as_bytes())
        .map_err(|e| CliError::Resource(format!("cannot write {path}: {e}")))
}

/// `gemm-ld run-sharded` — the fault-tolerant shard supervisor: spawns
/// one `r2 --shard i/N` process per shard, monitors and classifies every
/// exit, re-dispatches failures with capped exponential backoff (each
/// retry resumes from that shard's own checkpoint), and merges the
/// validated shard outputs into the final pair table. SIGINT or
/// `--timeout` interrupts the whole tree resumably: every child receives
/// SIGINT, lands on its checkpoint, and a re-run of the same command
/// picks all shards back up.
pub fn run_sharded(args: &Args) -> CmdResult {
    let input = args.require("input")?.to_owned();
    let out = args.require("output")?.to_owned();
    let n_shards = args.get_parsed("shards", 2usize)?;
    if n_shards == 0 {
        return Err(CliError::Usage("--shards must be at least 1".into()));
    }
    let retries = args.get_parsed("retries", 2usize)?;
    let backoff_ms = args.get_parsed("backoff-ms", 500u64)?;
    let threads = args.get_parsed("threads", ld_parallel::available_threads())?;
    let min_r2 = args.get_parsed("min-r2", 0.0f64)?;
    let timeout = match args.get("timeout") {
        None | Some("") => None,
        Some(v) => {
            let secs: f64 = v
                .parse()
                .map_err(|_| CliError::Usage(format!("invalid value '{v}' for --timeout")))?;
            if !secs.is_finite() || secs < 0.0 {
                return Err(CliError::Usage(format!(
                    "--timeout must be a non-negative number of seconds, got '{v}'"
                )));
            }
            Some(secs)
        }
    };
    let mut fault_kill = match args.get("fault-kill") {
        None | Some("") => None,
        Some(v) => {
            let k: usize = v
                .parse()
                .map_err(|_| CliError::Usage(format!("invalid value '{v}' for --fault-kill")))?;
            if k == 0 || k > n_shards {
                return Err(CliError::Usage(format!(
                    "--fault-kill shard {k} out of range (1..={n_shards})"
                )));
            }
            Some(k)
        }
    };
    probe_output_flags(args, &[("-o", "output")])?;
    let work_dir = args
        .get("work-dir")
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .unwrap_or_else(|| format!("{out}.shards"));
    std::fs::create_dir_all(&work_dir)
        .map_err(|e| CliError::Resource(format!("cannot create {work_dir}: {e}")))?;
    let manifest_path = args
        .get("manifest")
        .filter(|s| !s.is_empty())
        .map(str::to_owned)
        .unwrap_or_else(|| format!("{work_dir}/manifest.json"));
    probe_writable(&manifest_path, "--manifest")?;

    // Loading the input up front validates it before any child is
    // spawned and pins the fingerprint every shard output must carry.
    let fingerprint = ld_core::matrix_fingerprint(&load_matrix(&input)?.full_view());

    let per_threads = (threads / n_shards).max(1);
    if per_threads * n_shards > threads {
        eprintln!(
            "warning: {n_shards} shards x {per_threads} thread(s) each oversubscribe \
             the {threads} available thread(s)"
        );
    }
    let exe = std::env::current_exe()
        .map_err(|e| CliError::Resource(format!("cannot locate own executable: {e}")))?;
    let token = CancelToken::new();
    crate::interrupt::install_sigint_watcher(&token);
    let deadline = timeout.map(|s| Deadline::after(Duration::from_secs_f64(s)));

    let now = std::time::Instant::now();
    let mut shards: Vec<ShardSlot> = (1..=n_shards)
        .map(|i| ShardSlot {
            idx: i,
            out: format!("{work_dir}/shard_{i}.bin"),
            ckpt: format!("{work_dir}/shard_{i}.ckpt"),
            log: format!("{work_dir}/shard_{i}.log"),
            attempts: 0,
            state: "pending",
            classifications: Vec::new(),
            child: None,
            spawned_at: None,
            not_before: now,
        })
        .collect();
    // A previous interrupted run may have left finished shard outputs:
    // reuse the ones that match this input, drop anything stale.
    for s in &mut shards {
        if !Path::new(&s.out).exists() {
            continue;
        }
        match ld_io::checkpoint::read_checkpoint_path(&s.out) {
            Ok(st) if st.matrix_hash == fingerprint => {
                s.state = "done";
                eprintln!(
                    "shard {}/{n_shards}: reusing completed output {}",
                    s.idx, s.out
                );
            }
            _ => {
                let _ = std::fs::remove_file(&s.out);
            }
        }
    }

    let mut interrupted_reason: Option<String> = None;
    loop {
        // 1. Interruption: one trip forwards SIGINT to every running
        // child so the whole tree lands on resumable checkpoints.
        if interrupted_reason.is_none() {
            if token.is_cancelled() {
                interrupted_reason = Some(token.reason().unwrap_or_else(|| "cancelled".into()));
            } else if deadline.is_some_and(|d| d.expired()) {
                interrupted_reason = Some("deadline exceeded".into());
            }
            if interrupted_reason.is_some() {
                for s in &shards {
                    if let Some(c) = &s.child {
                        crate::interrupt::send_signal(c.id(), crate::interrupt::SIGINT);
                    }
                }
            }
        }
        // 2. Fault injection (`--fault-kill i`): SIGKILL shard i's first
        // attempt shortly after launch — a deterministic stand-in for
        // "a shard process died mid-run" in the CI recovery leg.
        if let Some(k) = fault_kill {
            let s = &shards[k - 1];
            if let (Some(c), Some(t0)) = (&s.child, s.spawned_at) {
                if s.attempts == 1 && t0.elapsed() >= Duration::from_millis(25) {
                    eprintln!(
                        "fault injection: SIGKILL shard {k}/{n_shards} (pid {})",
                        c.id()
                    );
                    crate::interrupt::send_signal(c.id(), crate::interrupt::SIGKILL);
                    fault_kill = None;
                }
            }
        }
        // 3. Reap finished children and classify their exits.
        let mut dirty = false;
        for s in &mut shards {
            let Some(child) = &mut s.child else { continue };
            let status = match child.try_wait() {
                Ok(Some(st)) => st,
                Ok(None) => continue,
                Err(e) => {
                    eprintln!("shard {}/{n_shards}: wait failed: {e}", s.idx);
                    continue;
                }
            };
            s.child = None;
            dirty = true;
            let code = status.code();
            let output_ok = code == Some(0)
                && ld_io::checkpoint::read_checkpoint_path(&s.out)
                    .map(|st| st.matrix_hash == fingerprint)
                    .unwrap_or(false);
            let class = classify_shard_exit(code, output_ok);
            s.classifications.push(class.name());
            match class {
                ShardExit::Success => {
                    s.state = "done";
                    eprintln!(
                        "shard {}/{n_shards}: done after {} attempt(s)",
                        s.idx, s.attempts
                    );
                }
                _ => {
                    // quarantine whatever the classification distrusts
                    match class {
                        ShardExit::CorruptOutput => {
                            let _ = std::fs::remove_file(&s.out);
                        }
                        ShardExit::CorruptState => {
                            let _ = std::fs::remove_file(&s.ckpt);
                        }
                        _ => {}
                    }
                    if interrupted_reason.is_some() {
                        s.state = "resumable";
                    } else if s.attempts > retries {
                        s.state = "failed";
                        eprintln!(
                            "shard {}/{n_shards}: {} on attempt {} — retry budget ({retries}) \
                             exhausted; see {}",
                            s.idx,
                            class.name(),
                            s.attempts,
                            s.log
                        );
                    } else {
                        s.state = "pending";
                        let delay = retry_backoff(backoff_ms, s.attempts, s.idx as u64);
                        s.not_before = std::time::Instant::now() + delay;
                        ld_trace::add(Counter::ShardRetries, 1);
                        eprintln!(
                            "shard {}/{n_shards}: {} on attempt {}; retrying in {} ms",
                            s.idx,
                            class.name(),
                            s.attempts,
                            delay.as_millis()
                        );
                    }
                }
            }
        }
        // 4. (Re)spawn pending shards whose backoff has elapsed.
        if interrupted_reason.is_none() {
            for i in 0..shards.len() {
                let ready = shards[i].state == "pending"
                    && shards[i].child.is_none()
                    && std::time::Instant::now() >= shards[i].not_before;
                if !ready {
                    continue;
                }
                let mut cmd = std::process::Command::new(&exe);
                cmd.arg("r2")
                    .arg("-i")
                    .arg(&input)
                    .arg("--shard")
                    .arg(format!("{}/{n_shards}", shards[i].idx))
                    .arg("--threads")
                    .arg(per_threads.to_string())
                    .arg("--checkpoint")
                    .arg(&shards[i].ckpt)
                    .arg("--resume")
                    .arg("-o")
                    .arg(&shards[i].out);
                // engine geometry must agree across shards and with the
                // merge, so pass-through flags ride along verbatim
                for key in ["stat", "kernel", "slab-rows", "chunk-slabs"] {
                    if let Some(v) = args.get(key).filter(|v| !v.is_empty()) {
                        cmd.arg(format!("--{key}")).arg(v);
                    }
                }
                let log = std::fs::File::create(&shards[i].log).map_err(|e| {
                    CliError::Resource(format!("cannot create {}: {e}", shards[i].log))
                });
                let spawned = log.and_then(|log| {
                    cmd.stdout(std::process::Stdio::null())
                        .stderr(log)
                        .spawn()
                        .map_err(|e| {
                            CliError::Resource(format!("cannot spawn shard {}: {e}", shards[i].idx))
                        })
                });
                match spawned {
                    Ok(child) => {
                        shards[i].attempts += 1;
                        shards[i].state = "running";
                        shards[i].spawned_at = Some(std::time::Instant::now());
                        eprintln!(
                            "shard {}/{n_shards}: attempt {} launched (pid {})",
                            shards[i].idx,
                            shards[i].attempts,
                            child.id()
                        );
                        shards[i].child = Some(child);
                        ld_trace::add(Counter::ShardsLaunched, 1);
                        dirty = true;
                    }
                    Err(e) => {
                        // a spawn failure is an environment problem, not a
                        // shard problem: interrupt everything resumably
                        for s in &shards {
                            if let Some(c) = &s.child {
                                crate::interrupt::send_signal(c.id(), crate::interrupt::SIGINT);
                            }
                        }
                        interrupted_reason = Some(e.to_string());
                    }
                }
            }
        }
        if dirty {
            write_manifest(
                &manifest_path,
                &input,
                &out,
                retries,
                backoff_ms,
                interrupted_reason.is_some(),
                &shards,
            )?;
        }
        // 5. Exit conditions.
        let running = shards.iter().any(|s| s.child.is_some());
        let pending = shards.iter().any(|s| s.state == "pending");
        if !running && (interrupted_reason.is_some() || !pending) {
            break;
        }
        std::thread::sleep(Duration::from_millis(20));
    }

    if let Some(reason) = &interrupted_reason {
        for s in &mut shards {
            if s.state != "done" && s.state != "failed" {
                s.state = "resumable";
            }
        }
        write_manifest(
            &manifest_path,
            &input,
            &out,
            retries,
            backoff_ms,
            true,
            &shards,
        )?;
        // reap the watcher thread
        token.cancel_with_reason("run complete");
        return Err(CliError::Interrupted(format!(
            "run-sharded interrupted ({reason}); every shard left resumable state in \
             {work_dir} — re-run the same command to resume"
        )));
    }
    token.cancel_with_reason("run complete");
    write_manifest(
        &manifest_path,
        &input,
        &out,
        retries,
        backoff_ms,
        false,
        &shards,
    )?;
    let failed: Vec<usize> = shards
        .iter()
        .filter(|s| s.state == "failed")
        .map(|s| s.idx)
        .collect();
    if !failed.is_empty() {
        let list: Vec<String> = failed.iter().map(|i| i.to_string()).collect();
        return Err(CliError::Other(format!(
            "shard(s) {} failed permanently after {} attempt(s) each; no panel written \
             (logs and manifest in {work_dir})",
            list.join(", "),
            retries + 1
        )));
    }
    // Merge: the same validation wall `gemm-ld merge` applies.
    let mut states = Vec::with_capacity(n_shards);
    for s in &shards {
        states.push(ld_io::checkpoint::read_checkpoint_path(&s.out)?);
    }
    let merged = ld_core::merge_shard_states(states)?;
    if merged.matrix_hash != fingerprint {
        return Err(CliError::Parse(format!(
            "merged shard fingerprint {:#018x} does not match {input} ({fingerprint:#018x})",
            merged.matrix_hash
        )));
    }
    let m = ld_core::state_to_matrix(&merged)?;
    write_pair_table(&out, &m, min_r2)?;
    // intermediates served their purpose; logs + manifest stay for audit
    for s in &shards {
        let _ = std::fs::remove_file(&s.out);
        let _ = std::fs::remove_file(&s.ckpt);
    }
    eprintln!(
        "run-sharded complete: {n_shards} shard(s) merged into {out} (manifest {manifest_path})"
    );
    Ok(())
}

/// `gemm-ld omega`
pub fn omega(args: &Args) -> CmdResult {
    let input = args.require("input")?;
    let g = load_matrix(input)?;
    let window = args.get_parsed("window", 50usize)?;
    let step = args.get_parsed("step", (window / 4).max(1))?;
    let threads = args.get_parsed("threads", ld_parallel::available_threads())?;
    let scan = OmegaScan::new(window, step)
        .engine(LdEngine::new().kernel(parse_kernel(args)?).threads(threads));
    let points = scan.scan(&g);
    if points.is_empty() {
        return Err(CliError::Usage(format!(
            "input has {} SNPs, fewer than the window ({window})",
            g.n_snps()
        )));
    }
    println!("window_start\twindow_end\tbest_split\tomega");
    for p in &points {
        println!(
            "{}\t{}\t{}\t{:.4}",
            p.window_start, p.window_end, p.best_split, p.omega
        );
    }
    let best = points.iter().max_by(|a, b| {
        a.omega
            .partial_cmp(&b.omega)
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    if let Some(best) = best {
        eprintln!(
            "strongest signal: omega = {:.3} at split SNP {}",
            best.omega, best.best_split
        );
    }
    Ok(())
}

/// `gemm-ld tanimoto`
pub fn tanimoto(args: &Args) -> CmdResult {
    let input = args.require("input")?;
    // fingerprints as a text matrix: rows = bits, columns = compounds
    let fp = load_matrix(input)?;
    let k = args.get_parsed("top-k", 5usize)?;
    let threads = args.get_parsed("threads", ld_parallel::available_threads())?;
    let v = fp.full_view();
    let sim = tanimoto_cross(&v, &v, parse_kernel(args)?, threads);
    let nn = top_k_neighbors(&sim, k + 1); // +1: self is always rank 1
    println!("compound\tneighbors (tanimoto)");
    for (i, row) in nn.iter().enumerate() {
        let line: Vec<String> = row
            .iter()
            .filter(|(j, _)| *j != i)
            .take(k)
            .map(|(j, s)| format!("{j}:{s:.3}"))
            .collect();
        println!("{i}\t{}", line.join(" "));
    }
    Ok(())
}

/// `gemm-ld prune`
pub fn prune(args: &Args) -> CmdResult {
    let input = args.require("input")?;
    let g = load_matrix(input)?;
    let window = args.get_parsed("window", 100usize)?;
    let step = args.get_parsed("step", (window / 2).max(1))?;
    let threshold = args.get_parsed("threshold", 0.5f64)?;
    let engine = LdEngine::new()
        .kernel(parse_kernel(args)?)
        .nan_policy(NanPolicy::Zero);
    let n = g.n_snps();
    let mut keep = vec![true; n];
    let mut start = 0usize;
    while start < n {
        let end = (start + window).min(n);
        let r2 = engine.try_r2_matrix(g.view(start, end))?;
        for i in 0..end - start {
            if !keep[start + i] {
                continue;
            }
            for j in i + 1..end - start {
                if keep[start + j] && r2.get(i, j) > threshold {
                    keep[start + j] = false;
                }
            }
        }
        if end == n {
            break;
        }
        start += step;
    }
    let kept: Vec<usize> = (0..n).filter(|&i| keep[i]).collect();
    eprintln!(
        "kept {}/{} SNPs at r² <= {threshold} (window {window}, step {step})",
        kept.len(),
        n
    );
    match args.get("output") {
        Some(path) if !path.is_empty() => {
            let body: String = kept.iter().map(|i| format!("snp{i}\n")).collect();
            write_atomic(path, body.as_bytes())?;
            eprintln!("wrote kept-SNP list to {path}");
        }
        _ => {
            for i in &kept {
                println!("snp{i}");
            }
        }
    }
    Ok(())
}

/// `gemm-ld decay`
pub fn decay(args: &Args) -> CmdResult {
    let input = args.require("input")?;
    let g = load_matrix(input)?;
    let max_dist = args.get_parsed(
        "max-dist",
        100usize.min(g.n_snps().saturating_sub(1).max(1)),
    )?;
    let bin = args.get_parsed("bin", (max_dist / 20).max(1))?;
    let engine = LdEngine::new()
        .kernel(parse_kernel(args)?)
        .nan_policy(NanPolicy::Zero);
    let profile = ld_core::DecayProfile::compute(&engine, &g, max_dist, bin);
    println!("distance\tmean_r2\tpairs");
    for b in profile.bins() {
        println!(
            "{}-{}\t{:.4}\t{}",
            b.min_dist, b.max_dist, b.mean_r2, b.count
        );
    }
    match profile.half_distance() {
        Some(d) => eprintln!(
            "r² halves by distance ~{d} SNPs (near level {:.3})",
            profile.near_r2()
        ),
        None => eprintln!("r² does not halve within {max_dist} SNPs"),
    }
    Ok(())
}

/// `gemm-ld blocks`
pub fn blocks(args: &Args) -> CmdResult {
    let input = args.require("input")?;
    let g = load_matrix(input)?;
    let threshold = args.get_parsed("threshold", 0.8f64)?;
    let engine = LdEngine::new()
        .kernel(parse_kernel(args)?)
        .nan_policy(NanPolicy::Zero);
    let found = ld_core::haplotype_blocks(&engine, &g, threshold);
    println!("block\tfirst_snp\tlast_snp\tsize");
    for (k, b) in found.iter().enumerate() {
        println!("{k}\t{}\t{}\t{}", b.start, b.end - 1, b.len());
    }
    let covered: usize = found.iter().map(|b| b.len()).sum();
    eprintln!(
        "{} blocks covering {covered}/{} SNPs (D' >= {threshold})",
        found.len(),
        g.n_snps()
    );
    Ok(())
}

/// `gemm-ld assoc`
pub fn assoc(args: &Args) -> CmdResult {
    let input = args.require("input")?;
    let g = load_matrix(input)?;
    let threads = args.get_parsed("threads", ld_parallel::available_threads())?;
    let seed = args.get_parsed("seed", 17u64)?;
    let beta = args.get_parsed("beta", 1.0f64)?;
    // causal SNPs: explicit list, or the most common SNP as a demo default
    let causal: Vec<usize> = match args.get("causal") {
        Some(list) if !list.is_empty() => list
            .split(',')
            .map(|s| {
                s.trim()
                    .parse::<usize>()
                    .map_err(|_| CliError::Usage(format!("invalid causal index '{s}'")))
            })
            .collect::<Result<_, _>>()?,
        _ => {
            let best = (0..g.n_snps())
                .max_by_key(|&j| {
                    let ones = g.ones_in_snp(j);
                    ones.min(g.n_samples() as u64 - ones)
                })
                .ok_or("matrix has no SNPs")?;
            eprintln!("no --causal given; planting effect at the most common SNP ({best})");
            vec![best]
        }
    };
    for &c in &causal {
        if c >= g.n_snps() {
            return Err(CliError::Usage(format!(
                "causal SNP {c} out of range (< {})",
                g.n_snps()
            )));
        }
    }
    let (_labels, mask) =
        ld_assoc::PhenotypeSimulator::new(causal.iter().map(|&c| (c, beta)).collect())
            .seed(seed)
            .simulate(&g);
    let results = ld_assoc::allelic_scan(&g.full_view(), &mask, threads);
    let lambda = ld_assoc::genomic_lambda(&results.iter().map(|r| r.chi2).collect::<Vec<_>>());
    let p_cut = args.get_parsed("p", 0.05 / g.n_snps().max(1) as f64)?;
    let clump_r2 = args.get_parsed("clump-r2", 0.3f64)?;
    let window = args.get_parsed("clump-window", 100usize)?;
    let engine = LdEngine::new().kernel(parse_kernel(args)?).threads(threads);
    let clumps = ld_assoc::clump(&g.full_view(), &results, &engine, p_cut, clump_r2, window);
    eprintln!(
        "scanned {} SNPs; lambda_GC = {lambda:.3}; {} hits at p <= {p_cut:.2e}; {} clumps",
        g.n_snps(),
        results.iter().filter(|r| r.p <= p_cut).count(),
        clumps.len()
    );
    println!("clump\tindex_snp\tp\todds_ratio\tmembers");
    for (k, c) in clumps.iter().enumerate() {
        let or = results[c.index_snp].odds_ratio;
        println!(
            "{k}\tsnp{}\t{:.3e}\t{or:.3}\t{}",
            c.index_snp,
            c.p,
            c.members.len()
        );
    }
    Ok(())
}

/// One point of the autotuner's search space plus its measured score.
#[derive(Clone)]
struct TuneCandidate {
    kernel: KernelKind,
    blocks: BlockSizes,
    slab: usize,
    chunk: usize,
    score: f64,
}

/// `gemm-ld tune` — staged coordinate descent over the kernel and the
/// scheduling/blocking parameters, scored on a synthetic workload.
///
/// Search order: (1) micro-kernel race at default geometry, then
/// one-dimensional sweeps of (2) `kc`, (3) `mc`, (4) `nc`, (5) slab
/// height, (6) scheduler chunk — each stage keeps the incumbent for the
/// dimensions it does not touch, so the budget is `O(sum of stage
/// sizes)` instead of the full grid. Every candidate is scored best-of-N
/// (N = 2 quick, 3 full): for throughput, *max* over reps is the right
/// statistic — noise only ever slows a run down.
///
/// The score is words/cycle from the metrics counters (the roofline
/// numerator: packed word-pairs through the micro-kernel per TSC cycle),
/// which isolates kernel+blocking quality from constant setup costs;
/// builds without the `metrics` feature (or without an invariant TSC)
/// fall back to whole-run throughput.
pub fn tune(args: &Args) -> CmdResult {
    let full = args.has("full");
    if full && args.has("quick") {
        return Err(CliError::Usage("--quick and --full are exclusive".into()));
    }
    let threads = args.get_parsed("threads", ld_parallel::available_threads())?;
    // Quick: a few hundred ms total, enough to separate kernels by 2x+.
    // Full: paper-scale samples (2504 haplotypes -> 40 packed words) so
    // the kc sweep actually has depth to block over.
    let (n_samples, n_snps, reps) = if full { (2504, 4000, 3) } else { (512, 768, 2) };
    let wpc = ld_trace::enabled() && ld_kernels::clock::tsc_hz().is_some();
    let metric = if wpc {
        "words-per-cycle"
    } else {
        "runs-per-sec"
    };
    eprintln!(
        "tuning on {n_samples} samples x {n_snps} SNPs, threads={threads}, \
         best-of-{reps}, metric={metric}"
    );
    let g = HaplotypeSimulator::new(n_samples, n_snps)
        .seed(0x7u64)
        .generate();

    let score_of = |c: &TuneCandidate| -> Result<f64, CliError> {
        let engine = LdEngine::new()
            .kernel(c.kernel)
            .blocks(c.blocks)
            .threads(threads)
            .slab_rows(c.slab)
            .chunk_slabs(c.chunk)
            .nan_policy(NanPolicy::Zero);
        let mut best = 0.0f64;
        for _ in 0..reps {
            ld_trace::reset();
            let t0 = std::time::Instant::now();
            let m = engine.try_stat_matrix(&g, ld_core::LdStats::RSquared)?;
            let wall = t0.elapsed().as_nanos().max(1) as u64;
            drop(m);
            let s = if wpc {
                ld_trace::MetricsReport::capture()
                    .with_wall_ns(wall)
                    .with_threads(threads)
                    .with_tsc_hz(ld_kernels::clock::tsc_hz())
                    .words_per_cycle()
                    .unwrap_or(0.0)
            } else {
                1e9 / wall as f64
            };
            best = best.max(s);
        }
        Ok(best)
    };

    // Incumbent: whatever `auto` resolves to, at the built-in geometry.
    let auto = ld_kernels::Kernel::resolve(KernelKind::Auto).map_err(|e| e.to_string())?;
    let mut best = TuneCandidate {
        kernel: auto.kind(),
        blocks: BlockSizes::default(),
        slab: 64,
        chunk: 1,
        score: 0.0,
    };
    best.score = score_of(&best)?;

    // Each stage mutates one dimension of the incumbent; a candidate is
    // skipped (not failed) when its blocks don't fit the kernel's tile.
    let race = |label: &str, cands: Vec<TuneCandidate>, best: &mut TuneCandidate| -> CmdResult {
        eprintln!("stage {label}:");
        for c in cands {
            let (desc, same) = describe(&c, best);
            if same {
                eprintln!("    {desc:<44} {:>9.4} (incumbent)", best.score);
                continue;
            }
            let k = match ld_kernels::Kernel::resolve(c.kernel) {
                Ok(k) => k,
                Err(_) => continue,
            };
            if c.blocks.validate_for(k.mr(), k.nr()).is_err() {
                continue;
            }
            let score = score_of(&c)?;
            let mark = if score > best.score {
                " <- new best"
            } else {
                ""
            };
            eprintln!("    {desc:<44} {score:>9.4}{mark}");
            if score > best.score {
                *best = TuneCandidate { score, ..c };
            }
        }
        Ok(())
    };
    fn describe(c: &TuneCandidate, best: &TuneCandidate) -> (String, bool) {
        let desc = format!(
            "{} kc={} mc={} nc={} slab={} chunk={}",
            c.kernel.name(),
            c.blocks.kc,
            c.blocks.mc,
            c.blocks.nc,
            c.slab,
            c.chunk
        );
        let same = c.kernel == best.kernel
            && c.blocks == best.blocks
            && c.slab == best.slab
            && c.chunk == best.chunk;
        (desc, same)
    }

    let kernels: Vec<TuneCandidate> = ld_kernels::micro::supported_kernels()
        .into_iter()
        .map(|k| TuneCandidate {
            kernel: k.kind(),
            ..best.clone()
        })
        .collect();
    race("kernel", kernels, &mut best)?;
    let kc_values: &[usize] = if full {
        &[64, 128, 256, 512, 1024]
    } else {
        &[128, 256, 512]
    };
    let sweep =
        |values: &[usize], f: fn(&TuneCandidate, usize) -> TuneCandidate, best: &TuneCandidate| {
            values.iter().map(|&v| f(best, v)).collect::<Vec<_>>()
        };
    let cands = sweep(
        kc_values,
        |b, v| TuneCandidate {
            blocks: BlockSizes { kc: v, ..b.blocks },
            ..b.clone()
        },
        &best,
    );
    race("kc", cands, &mut best)?;
    let cands = sweep(
        &[256, 512, 1024],
        |b, v| TuneCandidate {
            blocks: BlockSizes { mc: v, ..b.blocks },
            ..b.clone()
        },
        &best,
    );
    race("mc", cands, &mut best)?;
    let cands = sweep(
        &[2048, 4096, 8192],
        |b, v| TuneCandidate {
            blocks: BlockSizes { nc: v, ..b.blocks },
            ..b.clone()
        },
        &best,
    );
    race("nc", cands, &mut best)?;
    let cands = sweep(
        &[16, 32, 64, 128],
        |b, v| TuneCandidate {
            slab: v,
            ..b.clone()
        },
        &best,
    );
    race("slab", cands, &mut best)?;
    let cands = sweep(
        &[1, 2, 4],
        |b, v| TuneCandidate {
            chunk: v,
            ..b.clone()
        },
        &best,
    );
    race("chunk", cands, &mut best)?;

    let profile = CpuProfile {
        fingerprint: CpuFingerprint::detect().clone(),
        tuned: TunedParams {
            kernel: best.kernel,
            blocks: best.blocks,
            slab_rows: best.slab,
            chunk_slabs: best.chunk,
            threads,
            score: best.score,
            metric: metric.to_string(),
        },
    };
    let path = match args.get("out").filter(|s| !s.is_empty()) {
        Some(p) => std::path::PathBuf::from(p),
        None => ld_kernels::profile::profile_path().ok_or_else(|| {
            CliError::Resource(
                "no profile location: set LD_CPU_PROFILE, XDG_CACHE_HOME or HOME".into(),
            )
        })?,
    };
    if let Some(parent) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
        std::fs::create_dir_all(parent)
            .map_err(|e| CliError::Resource(format!("cannot create {}: {e}", parent.display())))?;
    }
    write_atomic(&path, profile.to_json().as_bytes())
        .map_err(|e| CliError::Resource(format!("cannot write {}: {e}", path.display())))?;
    let (desc, _) = describe(&best, &best);
    println!("best: {desc}  ({:.4} {metric})", best.score);
    println!("wrote tuned profile to {}", path.display());
    println!("(picked up automatically by r2/bench on this CPU; LD_NO_CPU_PROFILE=1 disables)");
    Ok(())
}

/// `gemm-ld serve` — the fault-tolerant LD query daemon.
///
/// Positional arguments are panel specs, `[name=]path`, where `path` is
/// a text input (`.ms`/`.vcf`/`.txt`) or a tile-store directory from
/// `import`; a bare path registers under its file stem. The daemon
/// binds `--addr`, prints `listening on HOST:PORT` (so scripts binding
/// port 0 can discover the port), and serves LDS1 queries until SIGINT
/// or SIGTERM, then drains in-flight requests under `--drain-ms`.
///
/// Exit codes follow the CLI contract: `0` clean drain, `5` drain
/// deadline exceeded (in-flight work was abandoned with typed
/// `ShuttingDown` responses), `4` bind failure, `3` a `--preload`
/// panel failed to parse.
pub fn serve(args: &Args) -> CmdResult {
    let profile = parse_profile(args)?;
    if profile.is_some() {
        ld_trace::reset();
    }
    let specs = args.positional();
    if specs.is_empty() {
        return Err(CliError::Usage(
            "serve needs at least one panel: gemm-ld serve [name=]input.ms [--addr HOST:PORT]"
                .into(),
        ));
    }
    let threads = args.get_parsed("threads", ld_parallel::available_threads())?;
    let budget_mb = args.get_parsed("memory-budget-mb", 1024usize)?;
    let engine = tuned_engine(args, threads)?.nan_policy(NanPolicy::Zero);
    let mut registry = ld_serve::PanelRegistry::new(engine, budget_mb.saturating_mul(1024 * 1024));
    for spec in specs {
        let (name, path) = match spec.split_once('=') {
            Some((n, p)) if !n.is_empty() => (n.to_string(), p),
            _ => {
                let stem = Path::new(spec.as_str())
                    .file_stem()
                    .and_then(|s| s.to_str())
                    .unwrap_or(spec.as_str());
                (stem.to_string(), spec.as_str())
            }
        };
        if !Path::new(path).exists() {
            return Err(CliError::Usage(format!(
                "panel '{name}': no such file or directory: {path}"
            )));
        }
        if !registry.add_source(name.clone(), ld_serve::PanelSource::detect(path)) {
            return Err(CliError::Usage(format!(
                "panel name '{name}' registered twice"
            )));
        }
    }

    let workers = args.get_parsed("workers", threads.clamp(1, 8))?;
    let cfg = ld_serve::ServeConfig {
        addr: args.get("addr").unwrap_or("127.0.0.1:7711").to_string(),
        workers,
        queue_depth: args.get_parsed("queue", 64usize)?,
        max_connections: args.get_parsed("max-conns", 256usize)?,
        request_timeout: Duration::from_millis(args.get_parsed("request-timeout-ms", 30_000u64)?),
        drain_timeout: Duration::from_millis(args.get_parsed("drain-ms", 30_000u64)?),
        // Test/CI aids: deterministic overload and panic-isolation
        // windows for the fault-injection harness.
        inject_delay: Duration::from_millis(args.get_parsed("inject-delay-ms", 0u64)?),
        fault_panel: args.has("fault-panel"),
        // Telemetry plane: Prometheus scrape endpoint, structured
        // request log, slow-request mirroring.
        metrics_addr: args.get("metrics-addr").map(str::to_string),
        request_log: args.get("request-log").map(str::to_string),
        slow_ms: match args.get("slow-ms") {
            Some(v) => Some(v.parse::<u64>().map_err(|_| {
                CliError::Usage(format!("--slow-ms wants a millisecond count, got '{v}'"))
            })?),
            None => None,
        },
        ..ld_serve::ServeConfig::default()
    };

    // `--trace-dump PATH`: arm the flight recorder before any panel
    // compute, so `--preload` spans land in the ring too; the SIGUSR1
    // watcher that snapshots it hooks in after bind (it needs the
    // shutdown token).
    let trace_dump = args.get("trace-dump").map(str::to_string);
    if trace_dump.is_some() {
        if cfg!(feature = "metrics") {
            ld_trace::recorder::start(ld_trace::recorder::RecorderConfig::for_threads(workers));
        } else {
            eprintln!(
                "warning: built without the `metrics` feature; \
                 --trace-dump and SIGUSR1 dumps are disabled"
            );
        }
    }

    // `--preload`: compute every registered panel before accepting —
    // a parse failure is exit 3 now, not an Internal response later.
    if args.has("preload") {
        let token = CancelToken::new();
        let deadline = Deadline::after(Duration::from_secs(24 * 3600));
        let names = registry.names();
        for name in names {
            registry
                .get(&name, ld_core::LdStats::RSquared, &token, deadline)
                .map_err(|e| match e {
                    ld_serve::RegistryError::Load { .. } => {
                        CliError::Parse(format!("preload failed: {e}"))
                    }
                    other => CliError::Resource(format!("preload failed: {other}")),
                })?;
            eprintln!("preloaded panel '{name}'");
        }
    }

    let started = std::time::Instant::now();
    let server = ld_serve::Server::bind(cfg, registry)
        .map_err(|e| CliError::Resource(format!("cannot bind: {e}")))?;
    let addr = server
        .local_addr()
        .map_err(|e| CliError::Resource(format!("cannot resolve bound address: {e}")))?;
    let metrics_addr = server.metrics_addr();
    let shutdown = server.shutdown_token();
    crate::interrupt::install_shutdown_watcher(&shutdown);

    // Each SIGUSR1 snapshots the armed recorder *live* (it stays armed)
    // and writes Perfetto-loadable trace-event JSON atomically.
    if let Some(dump_path) = trace_dump {
        if cfg!(feature = "metrics") {
            crate::interrupt::install_usr1_watcher(&shutdown, move |n| {
                match ld_trace::recorder::snapshot_live() {
                    Some(snap) => {
                        let json = ld_trace::export::chrome_trace_json(&snap);
                        match write_atomic(Path::new(&dump_path), json.as_bytes()) {
                            Ok(()) => eprintln!("trace dump #{n}: wrote {dump_path}"),
                            Err(e) => eprintln!("trace dump #{n}: cannot write {dump_path}: {e}"),
                        }
                    }
                    None => eprintln!("trace dump #{n}: no recorder armed"),
                }
            });
        }
    }

    // Scripts parse this line to learn the port (`--addr host:0`).
    println!("listening on {addr}");
    if let Some(maddr) = metrics_addr {
        // Same contract for the scrape port.
        println!("metrics on {maddr}");
    }
    use std::io::Write as _;
    let _ = std::io::stdout().flush();

    let outcome = server.run();
    let reason = shutdown.reason().unwrap_or_else(|| "shutdown".to_string());
    if let Some(mode) = profile {
        emit_profile(
            mode,
            args.get("profile-out"),
            started.elapsed().as_nanos() as u64,
            threads,
        )?;
    }
    match outcome {
        ld_serve::DrainOutcome::Drained => {
            eprintln!("{reason}: drained cleanly, exiting");
            Ok(())
        }
        ld_serve::DrainOutcome::DeadlineExceeded { abandoned } => Err(CliError::Interrupted(
            format!("{reason}: drain deadline exceeded, {abandoned} request(s) abandoned"),
        )),
    }
}

/// One parsed Prometheus sample: `(metric name, labels, value)`.
type PromSample = (String, String, f64);

/// Parses text-exposition sample lines (comments skipped). Tolerant of
/// anything it does not recognize — the dashboard only needs a lookup.
fn prom_samples(text: &str) -> Vec<PromSample> {
    let mut out = Vec::new();
    for line in text.lines() {
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        let Some((name_labels, value)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(value) = value.parse::<f64>() else {
            continue;
        };
        let (name, labels) = match name_labels.split_once('{') {
            Some((n, l)) => (n, l.trim_end_matches('}')),
            None => (name_labels, ""),
        };
        out.push((name.to_string(), labels.to_string(), value));
    }
    out
}

/// Looks up one sample by metric name and a label fragment.
fn prom_get(samples: &[PromSample], name: &str, label_frag: &str) -> Option<f64> {
    samples
        .iter()
        .find(|(n, l, _)| n == name && l.contains(label_frag))
        .map(|(_, _, v)| *v)
}

/// `gemm-ld monitor ADDR` — a refreshing terminal dashboard over a live
/// daemon, polled through the `metrics` opcode (the same bytes `GET
/// /metrics` serves). `--once` prints a single snapshot; `--raw` dumps
/// the exposition text verbatim (what the CI consistency check diffs
/// against the HTTP scrape); Ctrl-C exits.
pub fn monitor(args: &Args) -> CmdResult {
    let positional = args.positional();
    let addr = positional
        .first()
        .map(|s| s.to_string())
        .or_else(|| args.get("addr").map(str::to_string))
        .ok_or_else(|| {
            CliError::Usage(
                "monitor needs the daemon address: \
                 gemm-ld monitor HOST:PORT [--interval-ms N] [--once] [--raw]"
                    .into(),
            )
        })?;
    let interval = Duration::from_millis(args.get_parsed("interval-ms", 1000u64)?);
    let once = args.has("once") || args.has("raw");
    let fetch = |addr: &str| -> Result<String, CliError> {
        let mut client = ld_serve::Client::connect(addr, Duration::from_secs(5))
            .map_err(|e| CliError::Resource(format!("cannot connect to {addr}: {e}")))?;
        let resp = client
            .request(&ld_serve::Request::Metrics)
            .map_err(|e| CliError::Resource(format!("metrics request failed: {e}")))?;
        if resp.status != ld_serve::Status::Ok {
            return Err(CliError::Resource(format!(
                "metrics request refused: {}",
                resp.message()
            )));
        }
        String::from_utf8(resp.body)
            .map_err(|_| CliError::Resource("metrics body is not UTF-8".into()))
    };
    if args.has("raw") {
        print!("{}", fetch(&addr)?);
        return Ok(());
    }
    let token = CancelToken::new();
    if !once {
        crate::interrupt::install_sigint_watcher(&token);
    }
    let mut prev: Option<(std::time::Instant, f64, f64)> = None; // (when, accepted, shed)
    loop {
        match fetch(&addr) {
            Ok(text) => {
                let s = prom_samples(&text);
                let accepted = prom_get(&s, "gemm_ld_requests_accepted_total", "").unwrap_or(0.0);
                let shed = prom_get(&s, "gemm_ld_requests_shed_total", "").unwrap_or(0.0);
                let now = std::time::Instant::now();
                let (rps, shed_rate) = match prev {
                    Some((t0, a0, s0)) => {
                        let dt = now.duration_since(t0).as_secs_f64().max(1e-9);
                        ((accepted - a0) / dt, (shed - s0) / dt)
                    }
                    None => (0.0, 0.0),
                };
                prev = Some((now, accepted, shed));
                if !once {
                    print!("\x1b[2J\x1b[H"); // clear screen, home cursor
                }
                let draining = prom_get(&s, "gemm_ld_draining", "").unwrap_or(0.0) > 0.5;
                println!(
                    "gemm-ld monitor — {addr}  [{}]  up {:.0}s",
                    if draining { "DRAINING" } else { "serving" },
                    prom_get(&s, "gemm_ld_uptime_seconds", "").unwrap_or(0.0),
                );
                println!(
                    "  queue {:>4}   in-flight {:>4}   conns {:>4}   workers {:>2}",
                    prom_get(&s, "gemm_ld_queue_depth", "").unwrap_or(0.0),
                    prom_get(&s, "gemm_ld_in_flight_requests", "").unwrap_or(0.0),
                    prom_get(&s, "gemm_ld_connections", "").unwrap_or(0.0),
                    prom_get(&s, "gemm_ld_workers", "").unwrap_or(0.0),
                );
                println!(
                    "  accepted {:>8}  ({rps:>7.1}/s)   shed {:>6}  ({shed_rate:>6.1}/s)   \
                     failed {:>4}",
                    accepted,
                    shed,
                    prom_get(&s, "gemm_ld_requests_failed_total", "").unwrap_or(0.0),
                );
                for window in ["10s", "1m", "5m"] {
                    let frag = format!("window=\"{window}\"");
                    let p50 = prom_get(
                        &s,
                        "gemm_ld_request_window_seconds",
                        &format!("{frag},quantile=\"0.5\""),
                    );
                    let p99 = prom_get(
                        &s,
                        "gemm_ld_request_window_seconds",
                        &format!("{frag},quantile=\"0.99\""),
                    );
                    let ok = prom_get(
                        &s,
                        "gemm_ld_request_window_count",
                        &format!("{frag},result=\"ok\""),
                    )
                    .unwrap_or(0.0);
                    let err = prom_get(
                        &s,
                        "gemm_ld_request_window_count",
                        &format!("{frag},result=\"err\""),
                    )
                    .unwrap_or(0.0);
                    let q = |v: Option<f64>| match v {
                        Some(secs) => format!("{:.2}ms", secs * 1e3),
                        None => "   -  ".to_string(),
                    };
                    println!(
                        "  {window:>3} window: p50 {:>9}  p99 {:>9}  ok {ok:>6}  err {err:>4}",
                        q(p50),
                        q(p99),
                    );
                }
                println!(
                    "  panels resident {:>3}   bytes {:.1}/{:.1} MiB",
                    prom_get(&s, "gemm_ld_panels_resident", "").unwrap_or(0.0),
                    prom_get(&s, "gemm_ld_registry_used_bytes", "").unwrap_or(0.0)
                        / (1 << 20) as f64,
                    prom_get(&s, "gemm_ld_registry_budget_bytes", "").unwrap_or(0.0)
                        / (1 << 20) as f64,
                );
            }
            Err(e) if once => return Err(e),
            Err(e) => {
                if prev.is_none() {
                    return Err(e);
                }
                println!("connection lost ({e}); retrying …");
            }
        }
        if once || token.is_cancelled() {
            return Ok(());
        }
        std::thread::sleep(interval);
        if token.is_cancelled() {
            return Ok(());
        }
    }
}

/// `gemm-ld convert`
pub fn convert(args: &Args) -> CmdResult {
    let input = args.require("input")?;
    let output = args.require("output")?;
    let g = load_matrix(input)?;
    save_matrix(output, &g)?;
    println!(
        "converted {input} -> {output} ({} samples x {} SNPs)",
        g.n_samples(),
        g.n_snps()
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir() -> std::path::PathBuf {
        let d = std::env::temp_dir().join(format!("gemm_ld_cli_{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn args(list: &[&str]) -> Args {
        Args::parse(list.iter().map(|s| s.to_string()))
    }

    #[test]
    fn info_runs() {
        info(&args(&[])).unwrap();
    }

    #[test]
    fn simulate_r2_omega_pipeline() {
        let d = tmpdir();
        let ms = d.join("toy.ms");
        let mss = ms.to_str().unwrap();
        simulate(&args(&[
            "--samples",
            "120",
            "--snps",
            "80",
            "--sweep",
            "40",
            "-o",
            mss,
        ]))
        .unwrap();
        let table = d.join("pairs.tsv");
        r2(&args(&[
            "-i",
            mss,
            "--min-r2",
            "0.5",
            "-o",
            table.to_str().unwrap(),
        ]))
        .unwrap();
        let rows = ld_io::text::read_r2_table(BufReader::new(std::fs::File::open(&table).unwrap()))
            .unwrap();
        assert!(!rows.is_empty(), "a sweep must produce r2 >= 0.5 pairs");
        omega(&args(&["-i", mss, "--window", "20", "--step", "10"])).unwrap();
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn convert_round_trip() {
        let d = tmpdir();
        let ms = d.join("x.ms");
        let vcf = d.join("x.vcf");
        let txt = d.join("x.txt");
        simulate(&args(&[
            "--samples",
            "30",
            "--snps",
            "10",
            "-o",
            ms.to_str().unwrap(),
        ]))
        .unwrap();
        convert(&args(&[
            "-i",
            ms.to_str().unwrap(),
            "-o",
            vcf.to_str().unwrap(),
        ]))
        .unwrap();
        convert(&args(&[
            "-i",
            vcf.to_str().unwrap(),
            "-o",
            txt.to_str().unwrap(),
        ]))
        .unwrap();
        let a = load_matrix(ms.to_str().unwrap()).unwrap();
        let b = load_matrix(txt.to_str().unwrap()).unwrap();
        assert_eq!(a, b);
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn tanimoto_on_text_fingerprints() {
        let d = tmpdir();
        let path = d.join("fp.txt");
        let fp = ld_data::fingerprints::clustered_fingerprints(12, 256, 3, 0.1, 0.02, 5);
        save_matrix(path.to_str().unwrap(), &fp).unwrap();
        tanimoto(&args(&["-i", path.to_str().unwrap(), "--top-k", "3"])).unwrap();
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn prune_decay_blocks_pipeline() {
        let d = tmpdir();
        let ms = d.join("panel.ms");
        let mss = ms.to_str().unwrap();
        simulate(&args(&[
            "--samples",
            "200",
            "--snps",
            "120",
            "--founders",
            "8",
            "-o",
            mss,
        ]))
        .unwrap();
        let kept = d.join("kept.txt");
        prune(&args(&[
            "-i",
            mss,
            "--window",
            "40",
            "--step",
            "20",
            "--threshold",
            "0.5",
            "-o",
            kept.to_str().unwrap(),
        ]))
        .unwrap();
        let body = std::fs::read_to_string(&kept).unwrap();
        let n_kept = body.lines().count();
        assert!(
            n_kept > 0 && n_kept < 120,
            "pruning should remove something: {n_kept}"
        );
        decay(&args(&["-i", mss, "--max-dist", "30", "--bin", "5"])).unwrap();
        blocks(&args(&["-i", mss, "--threshold", "0.9"])).unwrap();
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn assoc_subcommand_runs() {
        let d = tmpdir();
        let ms = d.join("cohort.ms");
        let mss = ms.to_str().unwrap();
        simulate(&args(&["--samples", "600", "--snps", "80", "-o", mss])).unwrap();
        assoc(&args(&["-i", mss, "--beta", "1.5", "--p", "0.001"])).unwrap();
        assoc(&args(&["-i", mss, "--causal", "10,20", "--beta", "1.0"])).unwrap();
        assert!(assoc(&args(&["-i", mss, "--causal", "999"])).is_err());
        assert!(assoc(&args(&["-i", mss, "--causal", "x"])).is_err());
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn r2_timeout_checkpoint_resume_cycle() {
        let d = tmpdir();
        let ms = d.join("intr.ms");
        let mss = ms.to_str().unwrap();
        simulate(&args(&["--samples", "80", "--snps", "60", "-o", mss])).unwrap();
        let ckpt = d.join("intr.ckpt");
        let ckpts = ckpt.to_str().unwrap();
        // An already-expired deadline: zero slabs run, but a checkpoint is
        // flushed so the run is resumable; classified as exit 5.
        let err = r2(&args(&["-i", mss, "--timeout", "0", "--checkpoint", ckpts])).unwrap_err();
        assert_eq!(err.exit_code(), 5, "{err}");
        assert!(err.to_string().contains("--resume"), "{err}");
        assert!(ckpt.exists(), "checkpoint must be flushed on cancellation");
        // Resume finishes the run and removes the now-redundant snapshot.
        r2(&args(&["-i", mss, "--checkpoint", ckpts, "--resume"])).unwrap();
        assert!(!ckpt.exists(), "checkpoint removed after a completed run");
        // --resume without a file starts fresh instead of failing.
        r2(&args(&["-i", mss, "--checkpoint", ckpts, "--resume"])).unwrap();
        // usage errors
        assert_eq!(
            r2(&args(&["-i", mss, "--resume"])).unwrap_err().exit_code(),
            2
        );
        assert_eq!(
            r2(&args(&["-i", mss, "--timeout", "-3"]))
                .unwrap_err()
                .exit_code(),
            2
        );
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn r2_checkpointed_pair_table_matches_streamed() {
        let d = tmpdir();
        let ms = d.join("cmp.ms");
        let mss = ms.to_str().unwrap();
        simulate(&args(&["--samples", "100", "--snps", "50", "-o", mss])).unwrap();
        let plain = d.join("plain.tsv");
        let ckpt_tab = d.join("ckpt.tsv");
        let ckpt = d.join("cmp.ckpt");
        r2(&args(&[
            "-i",
            mss,
            "--min-r2",
            "0.1",
            "-o",
            plain.to_str().unwrap(),
        ]))
        .unwrap();
        r2(&args(&[
            "-i",
            mss,
            "--min-r2",
            "0.1",
            "-o",
            ckpt_tab.to_str().unwrap(),
            "--checkpoint",
            ckpt.to_str().unwrap(),
        ]))
        .unwrap();
        let a = std::fs::read_to_string(&plain).unwrap();
        let b = std::fs::read_to_string(&ckpt_tab).unwrap();
        assert_eq!(a, b, "packed-path table must match the streamed table");
        std::fs::remove_dir_all(&d).ok();
    }

    /// Serializes tests that touch the process-global flight recorder
    /// (start/stop pairs from concurrent tests would steal each other's
    /// snapshots).
    fn recorder_lock() -> std::sync::MutexGuard<'static, ()> {
        static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
        LOCK.lock().unwrap_or_else(|p| p.into_inner())
    }

    #[test]
    fn r2_trace_out_and_report_are_emitted() {
        let _g = recorder_lock();
        let d = tmpdir();
        let input = d.join("trace_in.txt");
        simulate(&args(&[
            "--samples",
            "64",
            "--snps",
            "48",
            "-o",
            input.to_str().unwrap(),
        ]))
        .unwrap();
        let trace = d.join("trace.json");
        let report = d.join("trace_report.json");
        r2(&args(&[
            "-i",
            input.to_str().unwrap(),
            "--threads",
            "2",
            "--trace-out",
            trace.to_str().unwrap(),
            "--trace-report",
            report.to_str().unwrap(),
        ]))
        .unwrap();
        let trace_body = std::fs::read_to_string(&trace).unwrap();
        assert!(
            trace_body.starts_with("{\"traceEvents\":["),
            "trace must be a Chrome trace-event document"
        );
        let report_body = std::fs::read_to_string(&report).unwrap();
        for key in [
            "\"schema_version\"",
            "\"per_worker\"",
            "\"layers\"",
            "\"share_sum\"",
        ] {
            assert!(report_body.contains(key), "report missing {key}");
        }
        if cfg!(feature = "metrics") {
            assert!(
                trace_body.contains("\"ph\":\"X\""),
                "metrics build must record complete spans"
            );
            assert!(report_body.contains("\"dropped\": 0"));
        }
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn r2_trace_out_unwritable_is_resource_error() {
        let _g = recorder_lock();
        let d = tmpdir();
        let input = d.join("trace_err_in.txt");
        simulate(&args(&[
            "--samples",
            "32",
            "--snps",
            "16",
            "-o",
            input.to_str().unwrap(),
        ]))
        .unwrap();
        let err = r2(&args(&[
            "-i",
            input.to_str().unwrap(),
            "--trace-out",
            "/nonexistent-dir/trace.json",
        ]))
        .unwrap_err();
        assert!(
            matches!(err, CliError::Resource(_)),
            "unwritable --trace-out must classify as a resource error (exit 4), got {err:?}"
        );
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn resume_error_taxonomy() {
        let d = tmpdir();
        let ms = d.join("tax.ms");
        let mss = ms.to_str().unwrap();
        simulate(&args(&["--samples", "40", "--snps", "30", "-o", mss])).unwrap();
        let ckpt = d.join("tax.ckpt");
        let ckpts = ckpt.to_str().unwrap();
        // Missing checkpoint: --resume starts fresh (exit 0).
        r2(&args(&["-i", mss, "--checkpoint", ckpts, "--resume"])).unwrap();
        // Corrupt checkpoint: --resume is a parse failure (exit 3), not a
        // silent fresh start.
        std::fs::write(&ckpt, b"definitely not a checkpoint").unwrap();
        let err = r2(&args(&["-i", mss, "--checkpoint", ckpts, "--resume"])).unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");
        assert!(
            ckpt.exists(),
            "the damaged snapshot must be left for inspection"
        );
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn unwritable_destinations_fail_before_compute() {
        let d = tmpdir();
        let ms = d.join("probe.ms");
        let mss = ms.to_str().unwrap();
        simulate(&args(&["--samples", "40", "--snps", "30", "-o", mss])).unwrap();
        for flags in [
            &["-i", mss, "-o", "/nonexistent-dir/pairs.tsv"][..],
            &["-i", mss, "--checkpoint", "/nonexistent-dir/x.ckpt"][..],
            &["-i", mss, "--trace-out", "/nonexistent-dir/t.json"][..],
        ] {
            let err = r2(&args(flags)).unwrap_err();
            assert_eq!(err.exit_code(), 4, "{flags:?}: {err}");
        }
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn shard_merge_matches_single_run_bit_for_bit() {
        let d = tmpdir();
        let ms = d.join("shards.ms");
        let mss = ms.to_str().unwrap();
        simulate(&args(&["--samples", "90", "--snps", "70", "-o", mss])).unwrap();
        let one = d.join("one.tsv");
        r2(&args(&[
            "-i",
            mss,
            "--min-r2",
            "0",
            "-o",
            one.to_str().unwrap(),
        ]))
        .unwrap();
        let n_shards = 3usize;
        let mut shard_files = Vec::new();
        for i in 1..=n_shards {
            let f = d.join(format!("s{i}.bin"));
            // --slab-rows 16 gives the 70-SNP panel enough slabs to cut 3
            // ways; the single-run panel above keeps its default slab to
            // prove the merged bytes don't depend on grid choice.
            r2(&args(&[
                "-i",
                mss,
                "--shard",
                &format!("{i}/{n_shards}"),
                "--slab-rows",
                "16",
                "-o",
                f.to_str().unwrap(),
            ]))
            .unwrap();
            shard_files.push(f.to_str().unwrap().to_owned());
        }
        let merged = d.join("merged.tsv");
        let mut argv: Vec<&str> = shard_files.iter().map(String::as_str).collect();
        argv.extend(["--min-r2", "0", "-i", mss, "-o", merged.to_str().unwrap()]);
        merge(&args(&argv)).unwrap();
        let a = std::fs::read(&one).unwrap();
        let b = std::fs::read(&merged).unwrap();
        assert_eq!(
            a, b,
            "merged panel must be byte-identical to the one-shot run"
        );
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn merge_rejects_gaps_overlaps_and_foreign_inputs() {
        let d = tmpdir();
        let ms = d.join("gaps.ms");
        let mss = ms.to_str().unwrap();
        simulate(&args(&["--samples", "60", "--snps", "50", "-o", mss])).unwrap();
        let s1 = d.join("g1.bin");
        let s2 = d.join("g2.bin");
        for (i, f) in [(1, &s1), (2, &s2)] {
            r2(&args(&[
                "-i",
                mss,
                "--shard",
                &format!("{i}/2"),
                "--slab-rows",
                "16",
                "-o",
                f.to_str().unwrap(),
            ]))
            .unwrap();
        }
        let out = d.join("gap_out.tsv");
        let outs = out.to_str().unwrap();
        // Gap: one shard missing → exit 3, gap report, no output file.
        let err = merge(&args(&[s1.to_str().unwrap(), "--shards", "2", "-o", outs])).unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");
        assert!(err.to_string().contains("missing"), "{err}");
        assert!(!out.exists(), "an incomplete merge must never write output");
        // Overlap: the same shard twice → exit 3 naming the collision.
        let err = merge(&args(&[
            s1.to_str().unwrap(),
            s1.to_str().unwrap(),
            s2.to_str().unwrap(),
            "-o",
            outs,
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");
        assert!(err.to_string().contains("overlap"), "{err}");
        assert!(!out.exists());
        // Corrupt shard file: CRC/structure failure → exit 3.
        let bad = d.join("bad.bin");
        let mut bytes = std::fs::read(&s1).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
        std::fs::write(&bad, &bytes).unwrap();
        let err = merge(&args(&[
            bad.to_str().unwrap(),
            s2.to_str().unwrap(),
            "-o",
            outs,
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");
        assert!(!out.exists());
        // Fingerprint check against a different input matrix → exit 3.
        let other = d.join("other.ms");
        simulate(&args(&[
            "--samples",
            "60",
            "--snps",
            "50",
            "--seed",
            "777",
            "-o",
            other.to_str().unwrap(),
        ]))
        .unwrap();
        let err = merge(&args(&[
            s1.to_str().unwrap(),
            s2.to_str().unwrap(),
            "-i",
            other.to_str().unwrap(),
            "-o",
            outs,
        ]))
        .unwrap_err();
        assert_eq!(err.exit_code(), 3, "{err}");
        assert!(err.to_string().contains("fingerprint"), "{err}");
        // The complete, untampered set merges fine.
        merge(&args(&[
            s1.to_str().unwrap(),
            s2.to_str().unwrap(),
            "-i",
            mss,
            "-o",
            outs,
        ]))
        .unwrap();
        assert!(out.exists());
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn shard_flag_validation() {
        assert!(parse_shard(&args(&[])).unwrap().is_none());
        assert_eq!(
            parse_shard(&args(&["--shard", "2/4"])).unwrap(),
            Some((2, 4))
        );
        for bad in ["4", "0/4", "5/4", "a/b", "1/0", "/"] {
            assert!(parse_shard(&args(&["--shard", bad])).is_err(), "{bad}");
        }
        let d = tmpdir();
        let ms = d.join("sv.ms");
        let mss = ms.to_str().unwrap();
        simulate(&args(&["--samples", "30", "--snps", "20", "-o", mss])).unwrap();
        // --shard without -o is a usage error
        let err = r2(&args(&["-i", mss, "--shard", "1/2"])).unwrap_err();
        assert_eq!(err.exit_code(), 2, "{err}");
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn shard_exit_classification_and_backoff() {
        assert_eq!(classify_shard_exit(Some(0), true), ShardExit::Success);
        assert_eq!(
            classify_shard_exit(Some(0), false),
            ShardExit::CorruptOutput
        );
        assert_eq!(classify_shard_exit(Some(5), false), ShardExit::Resumable);
        assert_eq!(classify_shard_exit(Some(3), false), ShardExit::CorruptState);
        assert_eq!(classify_shard_exit(Some(1), false), ShardExit::Crash);
        assert_eq!(classify_shard_exit(None, false), ShardExit::Crash);
        // jittered: every delay lands in [envelope/2, envelope] of the
        // legacy capped exponential, and shards get distinct schedules
        for (attempts, env_ms) in [(1u64, 500u64), (2, 1000), (3, 2000), (20, 10_000)] {
            let d = retry_backoff(500, attempts as usize, 1);
            assert!(d >= Duration::from_millis(env_ms / 2), "{attempts}: {d:?}");
            assert!(d <= Duration::from_millis(env_ms), "{attempts}: {d:?}");
        }
        assert!(retry_backoff(u64::MAX, 20, 1) <= Duration::from_millis(10_000));
        assert_eq!(
            retry_backoff(500, 3, 7),
            retry_backoff(500, 3, 7),
            "deterministic per shard seed"
        );
        assert!(
            (1..=24).any(|n| retry_backoff(500, n, 1) != retry_backoff(500, n, 2)),
            "shard seeds must decorrelate the schedules"
        );
    }

    #[test]
    fn manifest_is_schema_shaped() {
        let d = tmpdir();
        let path = d.join("manifest.json");
        let shards = vec![
            ShardSlot {
                idx: 1,
                out: "s1.bin".into(),
                ckpt: "s1.ckpt".into(),
                log: "s1.log".into(),
                attempts: 2,
                state: "done",
                classifications: vec!["crash", "success"],
                child: None,
                spawned_at: None,
                not_before: std::time::Instant::now(),
            },
            ShardSlot {
                idx: 2,
                out: "s2.bin".into(),
                ckpt: "s2.ckpt".into(),
                log: "s2.log".into(),
                attempts: 1,
                state: "failed",
                classifications: vec!["corrupt-output"],
                child: None,
                spawned_at: None,
                not_before: std::time::Instant::now(),
            },
        ];
        write_manifest(
            path.to_str().unwrap(),
            "in \"quoted\".ms",
            "out.tsv",
            2,
            500,
            false,
            &shards,
        )
        .unwrap();
        let body = std::fs::read_to_string(&path).unwrap();
        for key in [
            "\"schema_version\": 1",
            "\"shards\": 2",
            "\"interrupted\": false",
            "\"shard_states\"",
            "\"classifications\": [\"crash\", \"success\"]",
            "\"state\": \"failed\"",
            "in \\\"quoted\\\".ms",
        ] {
            assert!(body.contains(key), "manifest missing {key}:\n{body}");
        }
        std::fs::remove_dir_all(&d).ok();
    }

    #[test]
    fn errors_are_reported() {
        assert!(r2(&args(&[])).is_err()); // missing input
        assert!(load_matrix("/nonexistent/x.ms").is_err());
        assert!(load_matrix("/nonexistent/x.weird").is_err());
        assert!(parse_kernel(&args(&["--kernel", "bogus"])).is_err());
        let d = tmpdir();
        let p = d.join("small.txt");
        std::fs::write(&p, "0101\n1010\n").unwrap();
        assert!(omega(&args(&["-i", p.to_str().unwrap(), "--window", "50"])).is_err());
        std::fs::remove_dir_all(&d).ok();
    }
}
