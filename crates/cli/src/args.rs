//! A dependency-free flag parser (`--key value`, `--flag`, `-i`, `-o`).

use std::collections::HashMap;

/// Parsed command-line arguments: flags with optional values plus
/// positional arguments.
#[derive(Debug, Default)]
pub struct Args {
    flags: HashMap<String, String>,
    positional: Vec<String>,
}

impl Args {
    /// Parses an argument iterator. `-i`/`-o` are aliases for
    /// `--input`/`--output`; a flag followed by another flag (or nothing)
    /// gets an empty value (boolean flag). `--key=value` binds inline
    /// (needed for optional-value flags like `--profile=json`, where
    /// `--profile json` would be ambiguous against a positional).
    pub fn parse<I: IntoIterator<Item = String>>(args: I) -> Self {
        let mut out = Args::default();
        let mut it = args.into_iter().peekable();
        while let Some(arg) = it.next() {
            if let Some(body) = arg.strip_prefix("--") {
                if let Some((k, v)) = body.split_once('=') {
                    out.flags.insert(k.to_string(), v.to_string());
                    continue;
                }
            }
            let key = match arg.as_str() {
                "-i" => Some("input".to_string()),
                "-o" => Some("output".to_string()),
                s if s.starts_with("--") => Some(s[2..].to_string()),
                _ => None,
            };
            match key {
                Some(k) => {
                    let val = match it.peek() {
                        Some(v) if !v.starts_with('-') || v.parse::<f64>().is_ok() => {
                            it.next().unwrap_or_default()
                        }
                        _ => String::new(),
                    };
                    out.flags.insert(k, val);
                }
                None => out.positional.push(arg),
            }
        }
        out
    }

    /// Raw flag value.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// Presence test (boolean flags).
    pub fn has(&self, key: &str) -> bool {
        self.flags.contains_key(key)
    }

    /// Parsed flag value with a default; errors mention the flag name.
    pub fn get_parsed<T: std::str::FromStr>(&self, key: &str, default: T) -> Result<T, String> {
        match self.get(key) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value '{v}' for --{key}")),
        }
    }

    /// Required string flag.
    pub fn require(&self, key: &str) -> Result<&str, String> {
        self.get(key)
            .filter(|s| !s.is_empty())
            .ok_or_else(|| format!("missing required --{key}"))
    }

    /// Positional arguments.
    #[allow(dead_code)] // used by tests; kept for subcommands that take paths positionally
    pub fn positional(&self) -> &[String] {
        &self.positional
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &[&str]) -> Args {
        Args::parse(s.iter().map(|s| s.to_string()))
    }

    #[test]
    fn flags_and_aliases() {
        let a = parse(&["-i", "in.ms", "--threads", "4", "--full", "-o", "out.tsv"]);
        assert_eq!(a.get("input"), Some("in.ms"));
        assert_eq!(a.get("output"), Some("out.tsv"));
        assert_eq!(a.get_parsed("threads", 1usize).unwrap(), 4);
        assert!(a.has("full"));
        assert!(!a.has("missing"));
    }

    #[test]
    fn boolean_flag_before_flag() {
        let a = parse(&["--full", "--scale", "3"]);
        assert_eq!(a.get("full"), Some(""));
        assert_eq!(a.get_parsed("scale", 1usize).unwrap(), 3);
    }

    #[test]
    fn equals_binds_inline_values() {
        let a = parse(&["--profile=json", "--threads=4", "--empty=", "-i", "x.ms"]);
        assert_eq!(a.get("profile"), Some("json"));
        assert_eq!(a.get_parsed("threads", 1usize).unwrap(), 4);
        assert_eq!(a.get("empty"), Some(""));
        assert_eq!(a.get("input"), Some("x.ms"));
    }

    #[test]
    fn negative_numbers_are_values() {
        let a = parse(&["--min-r2", "-0.5"]);
        assert_eq!(a.get_parsed("min-r2", 0.0f64).unwrap(), -0.5);
    }

    #[test]
    fn require_and_errors() {
        let a = parse(&["--x", "1"]);
        assert!(a.require("input").is_err());
        assert!(a.get_parsed::<usize>("x", 0).is_ok());
        let b = parse(&["--x", "abc"]);
        assert!(b.get_parsed::<usize>("x", 0).is_err());
    }

    #[test]
    fn positionals_collected() {
        let a = parse(&["file1", "--k", "v", "file2"]);
        assert_eq!(a.positional(), &["file1".to_string(), "file2".to_string()]);
    }
}
